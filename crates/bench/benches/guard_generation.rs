//! Criterion bench: guarded-expression generation cost vs. policy count
//! (the microbenchmark behind Figure 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minidb::value::{DataType, Value};
use minidb::{Database, DbProfile, TableSchema};
use sieve_core::cost::CostModel;
use sieve_core::guard::{generate_guarded_expression, GuardSelectionStrategy};
use sieve_core::policy::{CondPredicate, ObjectCondition, Policy, QuerierSpec};

fn build_db(rows: i64) -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert(
            "wifi_dataset",
            vec![
                Value::Int(i),
                Value::Int(i % 300),
                Value::Int(1000 + i % 64),
                Value::Time(((i * 211) % 86_400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index("wifi_dataset", col).unwrap();
    }
    db.analyze("wifi_dataset").unwrap();
    db
}

fn policies(n: usize) -> Vec<Policy> {
    (0..n)
        .map(|i| {
            let start = ((i * 1800) % (16 * 3600)) as u32 + 6 * 3600;
            let mut p = Policy::new(
                (i % 120) as i64,
                "wifi_dataset",
                QuerierSpec::User(1),
                "Any",
                vec![
                    ObjectCondition::new(
                        "ts_time",
                        CondPredicate::between(
                            Value::Time(start),
                            Value::Time((start + 2 * 3600).min(86_399)),
                        ),
                    ),
                    ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1000 + (i % 16) as i64)),
                    ),
                ],
            );
            p.id = i as u64 + 1;
            p
        })
        .collect()
}

fn bench_guard_generation(c: &mut Criterion) {
    let db = build_db(50_000);
    let entry = db.table("wifi_dataset").unwrap();
    let cost = CostModel::default();
    let mut group = c.benchmark_group("guard_generation");
    for &n in &[50usize, 100, 200, 400, 800] {
        let ps = policies(n);
        let refs: Vec<&Policy> = ps.iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &refs, |b, refs| {
            b.iter(|| {
                generate_guarded_expression(
                    refs,
                    entry,
                    &cost,
                    GuardSelectionStrategy::CostOptimal,
                    1,
                    "Any",
                    "wifi_dataset",
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_guard_generation
}
criterion_main!(benches);
