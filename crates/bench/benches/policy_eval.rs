//! Criterion bench: Guard&Inlining vs Guard&∆ per-query wall time
//! (the microbenchmark behind Figure 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minidb::value::{DataType, Value};
use minidb::{Database, DbProfile, SelectQuery, TableSchema};
use sieve_core::middleware::Enforcement;
use sieve_core::policy::{CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata};
use sieve_core::rewrite::DeltaMode;
use sieve_core::{Sieve, SieveOptions};

fn sieve_with(n_policies: usize, mode: DeltaMode) -> Sieve {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..20_000i64 {
        db.insert(
            "wifi_dataset",
            vec![
                Value::Int(i),
                Value::Int(i % 200),
                Value::Int(if i % 2 == 0 { 1200 } else { 1300 }),
                Value::Time(((i * 151) % 86_400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap"] {
        db.create_index("wifi_dataset", col).unwrap();
    }
    db.analyze("wifi_dataset").unwrap();
    let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
    sieve.options_mut().rewrite.delta_mode = mode;
    for i in 0..n_policies {
        let start = ((i % 12) as u32) * 2 * 3600;
        sieve
            .add_policy(Policy::new(
                (i % 100) as i64,
                "wifi_dataset",
                QuerierSpec::User(9),
                "Any",
                vec![
                    ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1200))),
                    ObjectCondition::new(
                        "ts_time",
                        CondPredicate::between(
                            Value::Time(start),
                            Value::Time((start + 7200).min(86_399)),
                        ),
                    ),
                ],
            ))
            .unwrap();
    }
    sieve
}

fn bench_inline_vs_delta(c: &mut Criterion) {
    let qm = QueryMetadata::new(9, "Any");
    let query = SelectQuery::star_from("wifi_dataset");
    let mut group = c.benchmark_group("policy_eval");
    for &n in &[40usize, 120, 240] {
        for (label, mode) in [("inline", DeltaMode::Never), ("delta", DeltaMode::Always)] {
            let mut sieve = sieve_with(n, mode);
            // Warm the guard cache so only execution is measured.
            let _ = sieve.run_timed(Enforcement::Sieve, &query, &qm);
            group.bench_with_input(BenchmarkId::new(label, n), &(), |b, _| {
                b.iter(|| {
                    let (res, _) = sieve.run_timed(Enforcement::Sieve, &query, &qm);
                    res.unwrap().len()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_inline_vs_delta
}
criterion_main!(benches);
