//! Criterion bench: SIEVE vs the baselines on the campus workload
//! (the microbenchmark behind Table 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minidb::DbProfile;
use sieve_bench::harness::{build_campus, pick_queriers, EnvConfig};
use sieve_core::baselines::Baseline;
use sieve_core::middleware::Enforcement;
use sieve_core::policy::QueryMetadata;
use sieve_workload::query_gen::generate_query;
use sieve_workload::{QueryClass, Selectivity, UserProfile};
use std::time::Duration;

fn bench_query_eval(c: &mut Criterion) {
    let env = EnvConfig {
        scale: 0.01,
        days: 60,
        timeout: Duration::from_secs(20),
    };
    let mut campus = build_campus(DbProfile::MySqlLike, &env);
    let querier = pick_queriers(&campus, UserProfile::Faculty, "Analytics", 1)[0];
    let qm = QueryMetadata::new(querier, "Analytics");

    let mut group = c.benchmark_group("query_eval");
    for (class, sel) in [
        (QueryClass::Q1, Selectivity::Low),
        (QueryClass::Q1, Selectivity::Mid),
        (QueryClass::Q2, Selectivity::Low),
    ] {
        let query = generate_query(&campus.dataset, class, sel, 42);
        for (name, mech) in [
            ("SIEVE", Enforcement::Sieve),
            ("BaselineP", Enforcement::Baseline(Baseline::P)),
            ("BaselineI", Enforcement::Baseline(Baseline::I)),
        ] {
            // Warm-up (guard generation excluded from the measurement).
            let _ = campus.sieve.run_timed(mech, &query, &qm);
            group.bench_with_input(
                BenchmarkId::new(name, format!("{}-{}", class.name(), sel.name())),
                &(),
                |b, _| {
                    b.iter(|| {
                        let (res, _) = campus.sieve.run_timed(mech, &query, &qm);
                        res.map(|r| r.len()).unwrap_or(0)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_query_eval
}
criterion_main!(benches);
