//! `bench_analyze` — prices the static soundness verifier
//! ([`sieve_core::analyze`]) on the query path.
//!
//! Two questions, answered on the campus workload:
//!
//! 1. **What does `verify_rewrites` cost when guards are warm?** The
//!    verifier runs only at cold guard generation; a warm repeat query
//!    never re-verifies. So the warm rewrite path with verification on
//!    must cost the same as with it off. Gated in `--quick` CI runs:
//!    the warm overhead must stay under [`WARM_VERIFY_GATE_PCT`] (or
//!    inside the absolute timer-noise floor).
//! 2. **What does one cold verification cost?** Cold prepare (empty
//!    cache → generation + no-widening proof + compilation) with the
//!    verifier on vs off, reported for context — this is the one-time
//!    price of a machine-checked guard.
//!
//! Results go to stdout, `results/bench_analyze.txt`, and
//! `results/BENCH_analyze.json` (the CI artifact).

use sieve_bench::harness::{build_campus, emit, queriers_with_policies, EnvConfig};
use sieve_bench::table::render;
use sieve_core::policy::QueryMetadata;
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    quick: bool,
    env: EnvConfig,
    warm_reps: usize,
    blocks: usize,
    cold_reps: usize,
}

impl Config {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let mut env = EnvConfig::from_env();
        if quick {
            env.scale = 0.004;
            env.days = 20;
        }
        Config {
            quick,
            env,
            warm_reps: if quick { 30 } else { 100 },
            blocks: if quick { 5 } else { 10 },
            cold_reps: if quick { 5 } else { 15 },
        }
    }
}

/// `--quick` CI gate: warm prepares with `verify_rewrites` on must cost
/// less than this much over warm prepares with it off, or the build
/// fails (the verifier must never touch the warm path).
const WARM_VERIFY_GATE_PCT: f64 = 5.0;

/// Absolute escape hatch: overhead below this many ms is inside the
/// timer's resolution on a noisy shared container (the warm baseline is
/// tens of µs). A real regression — verification on a warm hit — costs
/// orders of magnitude more and still trips the gate.
const WARM_VERIFY_GATE_FLOOR_MS: f64 = 0.01;

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best block-mean over `blocks` blocks of `reps` calls, in ms/call
/// (same estimator as `bench_faults`: transient stalls only slow a
/// block down, so the minimum converges on the true cost).
fn best_block_ms(reps: usize, blocks: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..blocks {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(ms(t.elapsed()) / reps as f64);
    }
    best
}

fn main() {
    let cfg = Config::from_args();
    let purpose = "Analytics";
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== bench_analyze: soundness-verifier overhead (scale={}, days={}, quick={}) ===\n",
        cfg.env.scale, cfg.env.days, cfg.quick
    );

    let mut campus = build_campus(minidb::DbProfile::MySqlLike, &cfg.env);
    let querier = queriers_with_policies(&campus, purpose, 1)
        .first()
        .map(|&(q, _)| q)
        .expect("campus must contain a covered querier");
    let qm = QueryMetadata::new(querier, purpose);
    let q = sieve_workload::query_gen::generate_query(
        &campus.dataset,
        sieve_workload::QueryClass::Q1,
        sieve_workload::Selectivity::Low,
        7,
    );

    // ---- Cold prepare cost, verifier off vs on.
    let mut cold = [Vec::new(), Vec::new()];
    for (i, verify) in [false, true].into_iter().enumerate() {
        campus.sieve.options_mut().verify_rewrites = verify;
        for _ in 0..cfg.cold_reps {
            campus.sieve.invalidate_all();
            let t = Instant::now();
            campus.sieve.rewrite(&q, &qm).expect("cold rewrite");
            cold[i].push(ms(t.elapsed()));
        }
    }
    let cold_off_ms = cold[0].iter().copied().fold(f64::INFINITY, f64::min);
    let cold_on_ms = cold[1].iter().copied().fold(f64::INFINITY, f64::min);

    // ---- Warm prepare cost, verifier off vs on. The generation under
    // each configuration happened above; these loops never miss the
    // guard cache, so any delta is verifier work leaking onto the warm
    // path.
    campus.sieve.options_mut().verify_rewrites = false;
    campus.sieve.invalidate_all();
    campus.sieve.rewrite(&q, &qm).expect("warm-up rewrite");
    let warm_off_ms = best_block_ms(cfg.warm_reps, cfg.blocks, || {
        campus.sieve.rewrite(&q, &qm).expect("warm rewrite");
    });

    campus.sieve.options_mut().verify_rewrites = true;
    campus.sieve.invalidate_all();
    campus.sieve.rewrite(&q, &qm).expect("warm-up rewrite");
    let warm_on_ms = best_block_ms(cfg.warm_reps, cfg.blocks, || {
        campus.sieve.rewrite(&q, &qm).expect("warm rewrite");
    });

    let overhead_ms = warm_on_ms - warm_off_ms;
    let overhead_pct = 100.0 * overhead_ms / warm_off_ms.max(f64::EPSILON);
    let cold_delta_ms = cold_on_ms - cold_off_ms;

    let rows = vec![
        vec!["cold prepare, verify off".into(), format!("{cold_off_ms:.4} ms")],
        vec!["cold prepare, verify on".into(), format!("{cold_on_ms:.4} ms")],
        vec![
            "cold verification cost".into(),
            format!("{cold_delta_ms:.4} ms"),
        ],
        vec!["warm prepare, verify off".into(), format!("{warm_off_ms:.5} ms")],
        vec!["warm prepare, verify on".into(), format!("{warm_on_ms:.5} ms")],
        vec![
            "warm overhead".into(),
            format!("{overhead_ms:.5} ms ({overhead_pct:.1}%)"),
        ],
    ];
    let _ = writeln!(out, "{}", render(&["metric", "value"], &rows));

    let gate_pass = overhead_pct < WARM_VERIFY_GATE_PCT || overhead_ms < WARM_VERIFY_GATE_FLOOR_MS;
    if cfg.quick {
        assert!(
            gate_pass,
            "SOUNDNESS-VERIFIER GATE: warm prepare overhead {overhead_ms:.4} ms \
             ({overhead_pct:.1}%) breaches the {WARM_VERIFY_GATE_PCT}% / \
             {WARM_VERIFY_GATE_FLOOR_MS} ms gate — verification is leaking onto the warm path"
        );
        let _ = writeln!(
            out,
            "[gate PASS: warm overhead {overhead_ms:.4} ms ({overhead_pct:.1}%) within the \
             {WARM_VERIFY_GATE_PCT}% / {WARM_VERIFY_GATE_FLOOR_MS} ms gate]"
        );
    }
    emit("bench_analyze", &out);

    let json = format!(
        "{{\n  \
           \"bench\": \"analyze\",\n  \
           \"quick\": {quick},\n  \
           \"scale\": {scale},\n  \
           \"days\": {days},\n  \
           \"cold_off_ms\": {cold_off_ms:.5},\n  \
           \"cold_on_ms\": {cold_on_ms:.5},\n  \
           \"cold_verify_ms\": {cold_delta_ms:.5},\n  \
           \"warm_off_ms\": {warm_off_ms:.5},\n  \
           \"warm_on_ms\": {warm_on_ms:.5},\n  \
           \"warm_overhead_ms\": {overhead_ms:.5},\n  \
           \"warm_overhead_pct\": {overhead_pct:.2},\n  \
           \"warm_gate_pct\": {WARM_VERIFY_GATE_PCT},\n  \
           \"warm_gate_floor_ms\": {WARM_VERIFY_GATE_FLOOR_MS},\n  \
           \"warm_gate_pass\": {gate_pass}\n\
         }}\n",
        quick = cfg.quick,
        scale = cfg.env.scale,
        days = cfg.env.days,
    );
    let _ = std::fs::create_dir_all("results");
    let path = std::path::Path::new("results").join("BENCH_analyze.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[saved {}]", path.display());
    }
}
