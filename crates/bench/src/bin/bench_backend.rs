//! `bench_backend` — in-process vs wire-SQL per-query dispatch overhead.
//!
//! The execution-backend abstraction puts a seam between the middleware
//! and the engine; this bench prices that seam. Same campus, same
//! querier, same warm guard cache, two backends:
//!
//! * `MinidbBackend` — rewritten query AST handed straight to the
//!   executor (the pre-refactor behaviour; the zero-overhead baseline);
//! * `WireSqlBackend` — the rewritten query rendered to SQL text,
//!   shipped across a simulated wire, re-parsed, then executed (the path
//!   a network backend takes, minus the network).
//!
//! Emits a text table and `results/BENCH_backend.json`. The warm-prepare
//! number is backend-independent (the guard cache sits above the seam)
//! and must stay within noise of `BENCH_hotpath.json`'s — the refactor
//! may not tax the hot path. `--quick` shrinks the dataset for CI.

use minidb::{Database, SelectQuery};
use sieve_bench::harness::{build_campus, emit, queriers_with_policies, EnvConfig};
use sieve_bench::table::{mean, render};
use sieve_core::policy::QueryMetadata;
use sieve_core::{MinidbBackend, Sieve, SieveOptions, SqlBackend};
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    quick: bool,
    env: EnvConfig,
    warm_reps: usize,
    /// Render+parse reps for the dispatch microbench (wire path only).
    #[cfg_attr(not(feature = "wire-sql"), allow(dead_code))]
    dispatch_reps: usize,
}

impl Config {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let mut env = EnvConfig::from_env();
        if quick {
            env.scale = 0.004;
            env.days = 20;
        }
        Config {
            quick,
            env,
            warm_reps: if quick { 30 } else { 100 },
            dispatch_reps: if quick { 200 } else { 1000 },
        }
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Warm measurements for one backend: (warm prepare ms, warm exec ms,
/// result rows).
fn measure<B: SqlBackend>(
    sieve: &mut Sieve<B>,
    q: &SelectQuery,
    qm: &QueryMetadata,
    reps: usize,
) -> (f64, f64, usize) {
    // Warm-up: populate the guard cache and the engine's own state.
    let rows = sieve.execute(q, qm).expect("warm-up query").len();
    let mut prep = Vec::with_capacity(reps);
    let mut exec = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        sieve.rewrite(q, qm).expect("warm rewrite");
        prep.push(ms(t.elapsed()));
        let t = Instant::now();
        sieve.execute(q, qm).expect("warm execute");
        exec.push(ms(t.elapsed()));
    }
    (
        mean(&prep).unwrap_or(f64::NAN),
        mean(&exec).unwrap_or(f64::NAN),
        rows,
    )
}

fn main() {
    let cfg = Config::from_args();
    let purpose = "Analytics";
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== bench_backend (scale={}, days={}, quick={}) ===\n",
        cfg.env.scale, cfg.env.days, cfg.quick
    );

    let campus = build_campus(minidb::DbProfile::MySqlLike, &cfg.env);
    let (querier, policy_count) = {
        let mut floor = 100usize;
        loop {
            let qs = queriers_with_policies(&campus, purpose, floor);
            if let Some(&(q, c)) = qs.first() {
                break (q, c);
            }
            if floor <= 10 {
                panic!("campus has no queriers with policies");
            }
            floor -= 10;
        }
    };
    let qm = QueryMetadata::new(querier, purpose);
    let q = sieve_workload::query_gen::generate_query(
        &campus.dataset,
        sieve_workload::QueryClass::Q1,
        sieve_workload::Selectivity::Low,
        7,
    );
    let base_db: Database = campus.sieve.db().clone();
    let base_db = &base_db;
    let options = SieveOptions::default();

    // ---- In-process baseline.
    let mut minidb_sieve =
        Sieve::with_backend(MinidbBackend::new(base_db.clone()), options.clone())
            .expect("minidb backend init");
    *minidb_sieve.groups_mut() = campus.dataset.groups.clone();
    minidb_sieve
        .add_policies(campus.policies.iter().cloned())
        .expect("policies");
    let (mini_prep, mini_exec, mini_rows) =
        measure(&mut minidb_sieve, &q, &qm, cfg.warm_reps);

    // ---- Wire-SQL backend over the same data.
    #[cfg(feature = "wire-sql")]
    let wire = {
        use sieve_core::WireSqlBackend;
        let mut wire_sieve =
            Sieve::with_backend(WireSqlBackend::new(base_db.clone()), options.clone())
                .expect("wire backend init");
        *wire_sieve.groups_mut() = campus.dataset.groups.clone();
        wire_sieve
            .add_policies(campus.policies.iter().cloned())
            .expect("policies");
        let (wire_prep, wire_exec, wire_rows) =
            measure(&mut wire_sieve, &q, &qm, cfg.warm_reps);
        assert_eq!(
            mini_rows, wire_rows,
            "backends must return identical result sets"
        );
        let trips = wire_sieve.backend().round_trips();
        assert!(trips as usize >= cfg.warm_reps, "wire path must be exercised");

        // Isolate the dispatch itself: render + parse of the *rewritten*
        // query, which is all the wire adds over the in-process call.
        let rewritten = wire_sieve.rewrite(&q, &qm).expect("rewrite").query;
        let sql = minidb::sql::render_query(&rewritten);
        let t = Instant::now();
        for _ in 0..cfg.dispatch_reps {
            let parsed = minidb::sql::parse(&sql).expect("reparse");
            std::hint::black_box(&parsed);
        }
        let parse_ms = ms(t.elapsed()) / cfg.dispatch_reps as f64;
        let t = Instant::now();
        for _ in 0..cfg.dispatch_reps {
            std::hint::black_box(minidb::sql::render_query(&rewritten));
        }
        let render_ms = ms(t.elapsed()) / cfg.dispatch_reps as f64;
        Some((wire_prep, wire_exec, sql.len(), render_ms, parse_ms, trips))
    };
    #[cfg(not(feature = "wire-sql"))]
    let wire: Option<(f64, f64, usize, f64, f64, u64)> = None;

    let mut rows_out = vec![
        vec!["querier".into(), format!("{querier} ({policy_count} policies)")],
        vec!["result rows".into(), mini_rows.to_string()],
        vec!["minidb warm prepare ms".into(), format!("{mini_prep:.4}")],
        vec!["minidb warm exec ms".into(), format!("{mini_exec:.4}")],
    ];
    if let Some((wire_prep, wire_exec, sql_bytes, render_ms, parse_ms, trips)) = wire {
        let overhead_ms = wire_exec - mini_exec;
        let overhead_pct = 100.0 * overhead_ms / mini_exec.max(f64::EPSILON);
        rows_out.extend([
            vec!["wire warm prepare ms".into(), format!("{wire_prep:.4}")],
            vec!["wire warm exec ms".into(), format!("{wire_exec:.4}")],
            vec!["dispatch overhead ms/query".into(), format!("{overhead_ms:.4}")],
            vec!["dispatch overhead %".into(), format!("{overhead_pct:.1}%")],
            vec!["render ms/query".into(), format!("{render_ms:.4}")],
            vec!["parse ms/query".into(), format!("{parse_ms:.4}")],
            vec!["rewritten SQL bytes".into(), sql_bytes.to_string()],
            vec!["wire round trips".into(), trips.to_string()],
        ]);
        let _ = writeln!(out, "{}", render(&["metric", "value"], &rows_out));
        let _ = writeln!(
            out,
            "(dispatch overhead = warm wire exec − warm in-process exec; the guard\n\
             cache sits above the backend seam, so warm prepare must match\n\
             BENCH_hotpath.json's warm number on both backends)"
        );
        emit("bench_backend", &out);
        let json = format!(
            "{{\n  \
               \"bench\": \"backend\",\n  \
               \"quick\": {quick},\n  \
               \"scale\": {scale},\n  \
               \"days\": {days},\n  \
               \"querier_policies\": {policy_count},\n  \
               \"result_rows\": {mini_rows},\n  \
               \"warm_reps\": {reps},\n  \
               \"minidb\": {{\n    \
                 \"warm_prepare_ms\": {mini_prep:.4},\n    \
                 \"warm_exec_ms\": {mini_exec:.4}\n  \
               }},\n  \
               \"wire_sql\": {{\n    \
                 \"warm_prepare_ms\": {wire_prep:.4},\n    \
                 \"warm_exec_ms\": {wire_exec:.4},\n    \
                 \"rewritten_sql_bytes\": {sql_bytes},\n    \
                 \"render_ms_per_query\": {render_ms:.4},\n    \
                 \"parse_ms_per_query\": {parse_ms:.4}\n  \
               }},\n  \
               \"dispatch_overhead_ms\": {overhead_ms:.4},\n  \
               \"dispatch_overhead_pct\": {overhead_pct:.2}\n\
             }}\n",
            quick = cfg.quick,
            scale = cfg.env.scale,
            days = cfg.env.days,
            reps = cfg.warm_reps,
        );
        let _ = std::fs::create_dir_all("results");
        let path = std::path::Path::new("results").join("BENCH_backend.json");
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("[saved {}]", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    } else {
        let _ = writeln!(out, "{}", render(&["metric", "value"], &rows_out));
        let _ = writeln!(out, "(wire-sql feature disabled: in-process numbers only)");
        emit("bench_backend", &out);
    }
}
