//! `bench_backend` — in-process vs wire-SQL per-query dispatch overhead.
//!
//! The execution-backend abstraction puts a seam between the middleware
//! and the engine; this bench prices that seam. Same campus, same
//! querier, same warm guard cache, two backends:
//!
//! * `MinidbBackend` — rewritten query AST handed straight to the
//!   executor (the pre-refactor behaviour; the zero-overhead baseline);
//! * `WireSqlBackend` — the rewritten query rendered to SQL text,
//!   shipped across a simulated wire, re-parsed, then executed (the path
//!   a network backend takes, minus the network).
//!
//! Emits a text table and `results/BENCH_backend.json`. The warm-prepare
//! number is backend-independent (the guard cache sits above the seam)
//! and must stay within noise of `BENCH_hotpath.json`'s — the refactor
//! may not tax the hot path. `--quick` shrinks the dataset for CI.

use minidb::{Database, SelectQuery};
use sieve_bench::harness::{build_campus, emit, queriers_with_policies, EnvConfig};
use sieve_bench::table::{mean, render};
use sieve_core::policy::QueryMetadata;
use sieve_core::{MinidbBackend, Sieve, SieveOptions, SqlBackend};
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    quick: bool,
    env: EnvConfig,
    warm_reps: usize,
    /// Render+parse reps for the dispatch microbench (wire path only).
    #[cfg_attr(not(feature = "wire-sql"), allow(dead_code))]
    dispatch_reps: usize,
}

impl Config {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let mut env = EnvConfig::from_env();
        if quick {
            env.scale = 0.004;
            env.days = 20;
        }
        Config {
            quick,
            env,
            warm_reps: if quick { 30 } else { 100 },
            dispatch_reps: if quick { 200 } else { 1000 },
        }
    }
}

/// `--quick` CI gate: warm prepared-wire dispatch overhead (vs the
/// in-process baseline) must stay under this percentage, or the build
/// fails. The text path sat at ~62% before server-side statements.
const PREPARED_OVERHEAD_GATE_PCT: f64 = 10.0;

/// Absolute escape hatch for the gate: overhead below this many ms is
/// inside the timer's resolution on a noisy shared container and passes
/// regardless of percentage (the quick-scale baseline is ~40 µs, so a
/// few µs of scheduler jitter can read as >10%). Any real return of the
/// tax costs at least one render+parse — ~40 µs at quick scale — and
/// still trips the gate.
const PREPARED_OVERHEAD_GATE_FLOOR_MS: f64 = 0.01;

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best block-mean over `blocks` blocks of `reps` calls, in ms/call.
/// The prepared-path gate compares two ~tens-of-µs figures on a shared
/// CI container; a single mean drifts with scheduler noise, while the
/// best block is stable run to run (transient stalls only ever slow a
/// block down, so the minimum converges on the true cost).
fn best_block_ms(reps: usize, blocks: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..blocks {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(ms(t.elapsed()) / reps as f64);
    }
    best
}

/// Everything measured on the wire backend (text path + prepared path).
#[cfg_attr(not(feature = "wire-sql"), allow(dead_code))]
struct WireNumbers {
    warm_prepare_ms: f64,
    warm_exec_ms: f64,
    sql_bytes: usize,
    render_ms: f64,
    parse_ms: f64,
    round_trips: u64,
    /// Warm execute-by-statement-id (no SQL text on the wire).
    prepared_exec_ms: f64,
    /// The in-process pinned-plan baseline, measured in blocks
    /// interleaved with `prepared_exec_ms` so both sides of the gate
    /// comparison see the same noise environment.
    mini_prepared_exec_ms: f64,
    stmt_prepares: u64,
    stmt_template_hits: u64,
    stmt_executions: u64,
}

/// Warm measurements for one backend: (warm prepare ms, warm exec ms,
/// result rows).
fn measure<B: SqlBackend>(
    sieve: &mut Sieve<B>,
    q: &SelectQuery,
    qm: &QueryMetadata,
    reps: usize,
) -> (f64, f64, usize) {
    // Warm-up: populate the guard cache and the engine's own state.
    let rows = sieve.execute(q, qm).expect("warm-up query").len();
    let mut prep = Vec::with_capacity(reps);
    let mut exec = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        sieve.rewrite(q, qm).expect("warm rewrite");
        prep.push(ms(t.elapsed()));
        let t = Instant::now();
        sieve.execute(q, qm).expect("warm execute");
        exec.push(ms(t.elapsed()));
    }
    (
        mean(&prep).unwrap_or(f64::NAN),
        mean(&exec).unwrap_or(f64::NAN),
        rows,
    )
}

fn main() {
    let cfg = Config::from_args();
    let purpose = "Analytics";
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== bench_backend (scale={}, days={}, quick={}) ===\n",
        cfg.env.scale, cfg.env.days, cfg.quick
    );

    let campus = build_campus(minidb::DbProfile::MySqlLike, &cfg.env);
    let (querier, policy_count) = {
        let mut floor = 100usize;
        loop {
            let qs = queriers_with_policies(&campus, purpose, floor);
            if let Some(&(q, c)) = qs.first() {
                break (q, c);
            }
            if floor <= 10 {
                panic!("campus has no queriers with policies");
            }
            floor -= 10;
        }
    };
    let qm = QueryMetadata::new(querier, purpose);
    let q = sieve_workload::query_gen::generate_query(
        &campus.dataset,
        sieve_workload::QueryClass::Q1,
        sieve_workload::Selectivity::Low,
        7,
    );
    let base_db: Database = campus.sieve.db().clone();
    let base_db = &base_db;
    let options = SieveOptions::default();

    // ---- In-process baseline.
    let mut minidb_sieve =
        Sieve::with_backend(MinidbBackend::new(base_db.clone()), options.clone())
            .expect("minidb backend init");
    *minidb_sieve.groups_mut() = campus.dataset.groups.clone();
    minidb_sieve
        .add_policies(campus.policies.iter().cloned())
        .expect("policies");
    let (mini_prep, mini_exec, mini_rows) =
        measure(&mut minidb_sieve, &q, &qm, cfg.warm_reps);
    // In-process `Prepared` handle: the pinned-plan execute both backends'
    // prepared paths are compared against (no rewrite in the loop on
    // either side). Timed inside the wire block, interleaved with the
    // wire prepared loop; standalone only when wire-sql is off.
    let mini_service = minidb_sieve.service().clone();
    let mini_prepared = mini_service
        .session(qm.clone())
        .prepare(q.clone())
        .expect("minidb prepare");
    mini_prepared.execute().expect("prepared warm-up");

    // ---- Wire-SQL backend over the same data.
    #[cfg(feature = "wire-sql")]
    let wire = {
        use sieve_core::WireSqlBackend;
        let mut wire_sieve =
            Sieve::with_backend(WireSqlBackend::new(base_db.clone()), options.clone())
                .expect("wire backend init");
        *wire_sieve.groups_mut() = campus.dataset.groups.clone();
        wire_sieve
            .add_policies(campus.policies.iter().cloned())
            .expect("policies");
        let (wire_prep, wire_exec, wire_rows) =
            measure(&mut wire_sieve, &q, &qm, cfg.warm_reps);
        assert_eq!(
            mini_rows, wire_rows,
            "backends must return identical result sets"
        );
        let trips = wire_sieve.backend().round_trips();
        assert!(trips as usize >= cfg.warm_reps, "wire path must be exercised");

        // Isolate the dispatch itself: render + parse of the *rewritten*
        // query, which is all the wire adds over the in-process call.
        let rewritten = wire_sieve.rewrite(&q, &qm).expect("rewrite").query;
        let sql = minidb::sql::render_query(&rewritten);
        let t = Instant::now();
        for _ in 0..cfg.dispatch_reps {
            let parsed = minidb::sql::parse(&sql).expect("reparse");
            std::hint::black_box(&parsed);
        }
        let parse_ms = ms(t.elapsed()) / cfg.dispatch_reps as f64;
        let t = Instant::now();
        for _ in 0..cfg.dispatch_reps {
            std::hint::black_box(minidb::sql::render_query(&rewritten));
        }
        let render_ms = ms(t.elapsed()) / cfg.dispatch_reps as f64;

        // ---- Server-side prepared path: render + parse once at prepare
        // time, every warm execute goes by statement id with bound
        // parameters. Four session handles model a small connection pool
        // preparing the same statement — the template intern cache parses
        // the shared text once.
        let service = wire_sieve.service().clone();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                service
                    .session(qm.clone())
                    .prepare(q.clone())
                    .expect("wire prepare")
            })
            .collect();
        let prepared = &handles[0];
        let prepared_rows = prepared.execute().expect("prepared warm-up").len();
        assert_eq!(
            prepared_rows, mini_rows,
            "prepared path must return identical rows"
        );
        // Interleave the two pinned-plan loops block by block: the gate
        // compares figures in the tens of µs, and measuring them in
        // separate time windows lets scheduler/frequency drift between
        // the windows masquerade as dispatch overhead. Paired blocks see
        // the same environment; the best block on each side is the cost.
        let mut mini_prepared_exec_ms = f64::INFINITY;
        let mut prepared_exec_ms = f64::INFINITY;
        for _ in 0..6 {
            mini_prepared_exec_ms = mini_prepared_exec_ms.min(best_block_ms(
                cfg.warm_reps,
                1,
                || {
                    mini_prepared.execute().expect("prepared execute");
                },
            ));
            prepared_exec_ms = prepared_exec_ms.min(best_block_ms(cfg.warm_reps, 1, || {
                prepared.execute().expect("prepared execute");
            }));
        }
        let backend = wire_sieve.backend();
        let numbers = WireNumbers {
            warm_prepare_ms: wire_prep,
            warm_exec_ms: wire_exec,
            sql_bytes: sql.len(),
            render_ms,
            parse_ms,
            round_trips: trips,
            prepared_exec_ms,
            mini_prepared_exec_ms,
            stmt_prepares: backend.prepares(),
            stmt_template_hits: backend.template_hits(),
            stmt_executions: backend.prepared_execs(),
        };
        drop(backend);
        drop(handles);
        Some(numbers)
    };
    #[cfg(not(feature = "wire-sql"))]
    let wire: Option<WireNumbers> = None;

    let mini_prepared_ms = wire
        .as_ref()
        .map(|w| w.mini_prepared_exec_ms)
        .unwrap_or_else(|| {
            best_block_ms(cfg.warm_reps, 6, || {
                mini_prepared.execute().expect("prepared execute");
            })
        });

    let mut rows_out = vec![
        vec!["querier".into(), format!("{querier} ({policy_count} policies)")],
        vec!["result rows".into(), mini_rows.to_string()],
        vec!["minidb warm prepare ms".into(), format!("{mini_prep:.4}")],
        vec!["minidb warm exec ms".into(), format!("{mini_exec:.4}")],
        vec![
            "minidb warm exec ms (prepared)".into(),
            format!("{mini_prepared_ms:.4}"),
        ],
    ];
    if let Some(w) = wire {
        let overhead_ms = w.warm_exec_ms - mini_exec;
        let overhead_pct = 100.0 * overhead_ms / mini_exec.max(f64::EPSILON);
        // Prepared-vs-prepared: both sides execute a pinned plan, so the
        // difference is pure statement dispatch. Clamped at zero — with
        // text off the wire it can land inside measurement noise.
        let prep_overhead_ms = (w.prepared_exec_ms - mini_prepared_ms).max(0.0);
        let prep_overhead_pct = 100.0 * prep_overhead_ms / mini_prepared_ms.max(f64::EPSILON);
        let hit_rate = w.stmt_template_hits as f64 / (w.stmt_prepares as f64).max(1.0);
        rows_out.extend([
            vec!["wire warm prepare ms".into(), format!("{:.4}", w.warm_prepare_ms)],
            vec!["wire warm exec ms (text)".into(), format!("{:.4}", w.warm_exec_ms)],
            vec!["dispatch overhead ms/query (text)".into(), format!("{overhead_ms:.4}")],
            vec!["dispatch overhead % (text)".into(), format!("{overhead_pct:.1}%")],
            vec![
                "wire warm exec ms (prepared)".into(),
                format!("{:.4}", w.prepared_exec_ms),
            ],
            vec![
                "dispatch overhead ms/query (prepared)".into(),
                format!("{prep_overhead_ms:.4}"),
            ],
            vec![
                "dispatch overhead % (prepared)".into(),
                format!("{prep_overhead_pct:.1}%"),
            ],
            vec![
                "statement cache hit rate".into(),
                format!("{hit_rate:.2} ({}/{} prepares)", w.stmt_template_hits, w.stmt_prepares),
            ],
            vec!["prepared executions".into(), w.stmt_executions.to_string()],
            vec!["render ms/query".into(), format!("{:.4}", w.render_ms)],
            vec!["parse ms/query".into(), format!("{:.4}", w.parse_ms)],
            vec!["rewritten SQL bytes".into(), w.sql_bytes.to_string()],
            vec!["wire round trips".into(), w.round_trips.to_string()],
        ]);
        let _ = writeln!(out, "{}", render(&["metric", "value"], &rows_out));
        let _ = writeln!(
            out,
            "(dispatch overhead = warm wire exec − warm in-process exec; the guard\n\
             cache sits above the backend seam, so warm prepare must match\n\
             BENCH_hotpath.json's warm number on both backends. The prepared rows\n\
             execute by statement id — render+parse paid once at prepare time —\n\
             and are timed as the best block-mean of 6 blocks on both sides, so\n\
             the overhead gate compares true costs, not scheduler noise.)"
        );
        emit("bench_backend", &out);
        let json = format!(
            "{{\n  \
               \"bench\": \"backend\",\n  \
               \"quick\": {quick},\n  \
               \"scale\": {scale},\n  \
               \"days\": {days},\n  \
               \"querier_policies\": {policy_count},\n  \
               \"result_rows\": {mini_rows},\n  \
               \"warm_reps\": {reps},\n  \
               \"minidb\": {{\n    \
                 \"warm_prepare_ms\": {mini_prep:.4},\n    \
                 \"warm_exec_ms\": {mini_exec:.4},\n    \
                 \"prepared_exec_ms\": {mini_prepared_ms:.4}\n  \
               }},\n  \
               \"wire_sql\": {{\n    \
                 \"warm_prepare_ms\": {wire_prep:.4},\n    \
                 \"warm_exec_ms\": {wire_exec:.4},\n    \
                 \"rewritten_sql_bytes\": {sql_bytes},\n    \
                 \"render_ms_per_query\": {render_ms:.4},\n    \
                 \"parse_ms_per_query\": {parse_ms:.4}\n  \
               }},\n  \
               \"wire_prepared\": {{\n    \
                 \"warm_exec_ms\": {prep_exec:.4},\n    \
                 \"dispatch_overhead_ms\": {prep_overhead_ms:.4},\n    \
                 \"dispatch_overhead_pct\": {prep_overhead_pct:.2},\n    \
                 \"statement_prepares\": {stmt_prepares},\n    \
                 \"template_cache_hits\": {stmt_hits},\n    \
                 \"template_cache_hit_rate\": {hit_rate:.2},\n    \
                 \"prepared_executions\": {stmt_execs}\n  \
               }},\n  \
               \"dispatch_overhead_ms\": {overhead_ms:.4},\n  \
               \"dispatch_overhead_pct\": {overhead_pct:.2}\n\
             }}\n",
            quick = cfg.quick,
            scale = cfg.env.scale,
            days = cfg.env.days,
            reps = cfg.warm_reps,
            wire_prep = w.warm_prepare_ms,
            wire_exec = w.warm_exec_ms,
            sql_bytes = w.sql_bytes,
            render_ms = w.render_ms,
            parse_ms = w.parse_ms,
            prep_exec = w.prepared_exec_ms,
            stmt_prepares = w.stmt_prepares,
            stmt_hits = w.stmt_template_hits,
            stmt_execs = w.stmt_executions,
        );
        let _ = std::fs::create_dir_all("results");
        let path = std::path::Path::new("results").join("BENCH_backend.json");
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("[saved {}]", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        // CI gate: the prepared path is the product of this seam — if its
        // warm dispatch overhead regresses past the threshold, fail loudly
        // rather than letting the tax creep back in.
        if cfg.quick {
            assert!(
                prep_overhead_pct < PREPARED_OVERHEAD_GATE_PCT
                    || prep_overhead_ms < PREPARED_OVERHEAD_GATE_FLOOR_MS,
                "prepared-wire dispatch overhead {prep_overhead_ms:.4} ms \
                 ({prep_overhead_pct:.1}%) breaches the {PREPARED_OVERHEAD_GATE_PCT}% / \
                 {PREPARED_OVERHEAD_GATE_FLOOR_MS} ms gate (text path: {overhead_pct:.1}%)"
            );
            eprintln!(
                "[gate ok: prepared dispatch overhead {prep_overhead_ms:.4} ms \
                 ({prep_overhead_pct:.1}%) within the {PREPARED_OVERHEAD_GATE_PCT}% / \
                 {PREPARED_OVERHEAD_GATE_FLOOR_MS} ms gate]"
            );
        }
    } else {
        let _ = writeln!(out, "{}", render(&["metric", "value"], &rows_out));
        let _ = writeln!(out, "(wire-sql feature disabled: in-process numbers only)");
        emit("bench_backend", &out);
    }
}
