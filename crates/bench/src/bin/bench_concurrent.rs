//! `bench_concurrent` — the first concurrency numbers for the middleware.
//!
//! Three scenarios against ONE shared `SieveService` over the campus
//! workload:
//!
//! 1. **Warm-path throughput scaling** — every querier's query is wrapped
//!    in a `Prepared` handle (guard cache warm, fragments pinned), then
//!    1/2/4/8 threads replay the handles for a fixed wall-clock window.
//!    Reported as queries/second per thread count; on a multi-core host
//!    the `&self` hot path should scale near-linearly because warm
//!    replays share only read locks and atomics.
//! 2. **Mixed read/write contention** — 4 reader threads replay prepared
//!    statements while a writer inserts policies (each insert bumps the
//!    revision, forcing every prepared statement through one transparent
//!    re-prepare). Reports reader throughput under churn and the
//!    writer's per-`add_policy` latency.
//! 3. **Batched prepare, sequential vs parallel per-querier phase** —
//!    the PR 3 scenario (cold multi-querier batch) with the set-cover
//!    phase on 1 thread vs `available_parallelism`; results are asserted
//!    row-identical to the sequential schedule.
//!
//! Results go to stdout, `results/bench_concurrent.txt`, and
//! `results/BENCH_concurrent.json` (the CI artifact). `--quick` shrinks
//! the dataset and measurement windows for CI smoke runs. The JSON
//! records `cores`: scaling claims are only meaningful when the host
//! actually has the cores (a 1-core container caps every thread count at
//! 1x by construction).

use sieve_bench::harness::{build_campus, emit, EnvConfig};
use sieve_bench::table::render;
use sieve_core::policy::{ObjectCondition, Policy, QuerierSpec};
use sieve_core::{CondPredicate, Prepared, SieveService};
use sieve_workload::traffic::{multi_querier_traffic, TrafficConfig};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Config {
    quick: bool,
    env: EnvConfig,
    queriers: usize,
    window: Duration,
    writer_policies: usize,
}

impl Config {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let mut env = EnvConfig::from_env();
        if quick {
            env.scale = 0.004;
            env.days = 20;
        }
        Config {
            quick,
            env,
            queriers: if quick { 100 } else { 150 },
            window: Duration::from_millis(if quick { 250 } else { 1000 }),
            writer_policies: if quick { 8 } else { 24 },
        }
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Replay the shared prepared handles from `threads` threads for a fixed
/// window; returns (total executions, wall). Thread `t` starts at a
/// different offset so the threads don't march in lockstep over the same
/// cache shards.
fn replay_window(
    prepared: &Arc<Vec<Prepared>>,
    threads: usize,
    window: Duration,
) -> (u64, Duration) {
    let total = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let prepared = Arc::clone(prepared);
            let total = &total;
            s.spawn(move || {
                let n = prepared.len();
                let mut i = (t * 17) % n;
                let mut local = 0u64;
                while t0.elapsed() < window {
                    let rows = prepared[i].execute().expect("replay").len();
                    assert!(rows < usize::MAX); // keep the result observable
                    local += 1;
                    i = (i + 1) % n;
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    (total.load(Ordering::Relaxed), t0.elapsed())
}

fn main() {
    let cfg = Config::from_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== bench_concurrent (scale={}, days={}, quick={}, cores={}) ===\n",
        cfg.env.scale, cfg.env.days, cfg.quick, cores
    );

    let campus = build_campus(minidb::DbProfile::MySqlLike, &cfg.env);
    let requests = multi_querier_traffic(
        &campus.dataset,
        &TrafficConfig {
            queriers: cfg.queriers,
            purpose: "Analytics".into(),
            seed: 11,
        },
    );
    let policies = campus.policies.len();
    let service: SieveService = campus.sieve.into_service();

    // ---- 3 (measured first: it wants a cold cache). Batched prepare:
    // sequential per-querier phase vs parallel.
    service.invalidate_all();
    let t0 = Instant::now();
    for (qm, q) in &requests {
        service.rewrite(q, qm).expect("sequential rewrite");
    }
    let seq_prepare_ms = ms(t0.elapsed());
    let mut seq_rows: Vec<Vec<minidb::Row>> = Vec::with_capacity(requests.len());
    for (qm, q) in &requests {
        let mut rows = service.execute(q, qm).expect("sequential execute").rows;
        rows.sort();
        seq_rows.push(rows);
    }

    service.invalidate_all();
    let t0 = Instant::now();
    service
        .prepare_batch_with_threads(&requests, 1)
        .expect("batch threads=1");
    for (qm, q) in &requests {
        service.rewrite(q, qm).expect("batched rewrite");
    }
    let batch1_prepare_ms = ms(t0.elapsed());

    service.invalidate_all();
    let batch_threads = cores.clamp(2, 8);
    let t0 = Instant::now();
    service
        .prepare_batch_with_threads(&requests, batch_threads)
        .expect("batch threads=N");
    for (qm, q) in &requests {
        service.rewrite(q, qm).expect("parallel-batched rewrite");
    }
    let batchn_prepare_ms = ms(t0.elapsed());
    // The parallel schedule must not change a single row.
    for ((qm, q), expect) in requests.iter().zip(&seq_rows) {
        let mut rows = service.execute(q, qm).expect("parallel execute").rows;
        rows.sort();
        assert_eq!(&rows, expect, "parallel batch diverged for {}", qm.querier);
    }

    // ---- 1. Warm-path throughput scaling over prepared statements.
    let prepared: Arc<Vec<Prepared>> = Arc::new(
        requests
            .iter()
            .map(|(qm, q)| {
                service
                    .session(qm.clone())
                    .prepare(q.clone())
                    .expect("prepare")
            })
            .collect(),
    );
    // Warm everything once.
    for p in prepared.iter() {
        p.execute().expect("warm");
    }
    let thread_counts = [1usize, 2, 4, 8];
    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for &threads in &thread_counts {
        let (execs, wall) = replay_window(&prepared, threads, cfg.window);
        let qps = execs as f64 / wall.as_secs_f64();
        throughputs.push((threads, qps));
    }
    let qps_1 = throughputs[0].1;
    let qps_8 = throughputs.last().unwrap().1;
    let scaling = qps_8 / qps_1.max(f64::EPSILON);

    // ---- 2. Mixed read/write contention: 4 readers + a policy writer.
    let stop = AtomicBool::new(false);
    let writer_latencies: std::sync::Mutex<Vec<f64>> = std::sync::Mutex::new(Vec::new());
    let reader_total = AtomicU64::new(0);
    let t0 = Instant::now();
    let mixed_window = cfg.window.max(Duration::from_millis(200));
    std::thread::scope(|s| {
        for t in 0..4usize {
            let prepared = Arc::clone(&prepared);
            let (stop, reader_total) = (&stop, &reader_total);
            s.spawn(move || {
                let n = prepared.len();
                let mut i = (t * 31) % n;
                let mut local = 0u64;
                while !stop.load(Ordering::SeqCst) && t0.elapsed() < mixed_window * 4 {
                    prepared[i].execute().expect("mixed replay");
                    local += 1;
                    i = (i + 1) % n;
                }
                reader_total.fetch_add(local, Ordering::Relaxed);
            });
        }
        // Writer on the main thread: spread the inserts over the window.
        let gap = mixed_window / (cfg.writer_policies as u32 + 1);
        for k in 0..cfg.writer_policies {
            std::thread::sleep(gap);
            let w0 = Instant::now();
            service
                .add_policy(Policy::new(
                    (k % 80) as i64,
                    sieve_workload::WIFI_TABLE,
                    QuerierSpec::User(9_000_000 + k as i64),
                    "Analytics",
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Ne(minidb::Value::Int(-1)),
                    )],
                ))
                .expect("writer add_policy");
            writer_latencies.lock().unwrap().push(ms(w0.elapsed()));
        }
        stop.store(true, Ordering::SeqCst);
    });
    let mixed_wall = t0.elapsed();
    let mixed_qps = reader_total.load(Ordering::Relaxed) as f64 / mixed_wall.as_secs_f64();
    let lat = writer_latencies.into_inner().unwrap();
    let writer_avg_ms = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
    let writer_max_ms = lat.iter().cloned().fold(0.0f64, f64::max);

    // ---- Report.
    let mut rows_out: Vec<Vec<String>> = vec![
        vec!["cores".into(), cores.to_string()],
        vec!["queriers".into(), requests.len().to_string()],
        vec!["policies".into(), policies.to_string()],
        vec!["seq prepare ms".into(), format!("{seq_prepare_ms:.2}")],
        vec![
            "batch prepare ms (1 thread)".into(),
            format!("{batch1_prepare_ms:.2}"),
        ],
        vec![
            format!("batch prepare ms ({batch_threads} threads)"),
            format!("{batchn_prepare_ms:.2}"),
        ],
    ];
    for (threads, qps) in &throughputs {
        rows_out.push(vec![
            format!("warm throughput, {threads} thread(s)"),
            format!("{qps:.0} q/s"),
        ]);
    }
    rows_out.push(vec![
        "scaling 1 -> 8 threads".into(),
        format!("{scaling:.2}x"),
    ]);
    rows_out.push(vec![
        "mixed readers q/s (4 readers + writer)".into(),
        format!("{mixed_qps:.0}"),
    ]);
    rows_out.push(vec![
        "writer add_policy avg/max ms".into(),
        format!("{writer_avg_ms:.2} / {writer_max_ms:.2}"),
    ]);
    let _ = writeln!(out, "{}", render(&["metric", "value"], &rows_out));
    if cores == 1 {
        let _ = writeln!(
            out,
            "\nNOTE: single-core host — thread scaling is capped at ~1x by the\n\
             hardware; the numbers above measure contention overhead, not\n\
             parallel speedup. Re-run on a multi-core host for scaling."
        );
    }
    emit("bench_concurrent", &out);

    let thr_json: Vec<String> = throughputs
        .iter()
        .map(|(t, q)| format!("{{\"threads\": {t}, \"qps\": {q:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \
           \"bench\": \"concurrent\",\n  \
           \"quick\": {quick},\n  \
           \"scale\": {scale},\n  \
           \"days\": {days},\n  \
           \"cores\": {cores},\n  \
           \"queriers\": {queriers},\n  \
           \"policies\": {policies},\n  \
           \"seq_prepare_ms\": {seq_prepare_ms:.3},\n  \
           \"batch1_prepare_ms\": {batch1_prepare_ms:.3},\n  \
           \"batchn_prepare_ms\": {batchn_prepare_ms:.3},\n  \
           \"batch_threads\": {batch_threads},\n  \
           \"warm_throughput\": [{thr}],\n  \
           \"scaling_1_to_8\": {scaling:.3},\n  \
           \"mixed_reader_qps\": {mixed_qps:.1},\n  \
           \"writer_policies\": {wp},\n  \
           \"writer_add_policy_avg_ms\": {writer_avg_ms:.3},\n  \
           \"writer_add_policy_max_ms\": {writer_max_ms:.3}\n\
         }}\n",
        quick = cfg.quick,
        scale = cfg.env.scale,
        days = cfg.env.days,
        queriers = requests.len(),
        thr = thr_json.join(", "),
        wp = cfg.writer_policies,
    );
    let _ = std::fs::create_dir_all("results");
    let path = std::path::Path::new("results").join("BENCH_concurrent.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
