//! `bench_faults` — prices the fault-tolerance machinery.
//!
//! Three questions, answered against the campus workload:
//!
//! 1. **What does the retry plumbing cost when nothing fails?** A warm
//!    `Prepared` replay over a raw `MinidbBackend` vs the same backend
//!    wrapped in `FaultInjectingBackend` at fault rate 0 — a transparent
//!    pass-through, so the delta is exactly the injection bookkeeping
//!    plus the service retry loop. Gated in `--quick` CI runs: the warm
//!    no-fault overhead must stay under `WARM_FAULT_OVERHEAD_GATE_PCT`
//!    (or inside the absolute timer-noise floor).
//! 2. **How long does one connection drop take to heal?** A scripted
//!    `Fault::ConnectionDrop` immediately before a warm prepared
//!    execute: the service retries through `ConnectionLost`, and on the
//!    wire backend the wiped statement registry then surfaces
//!    `UnknownStatement`, which the session re-prepares transparently.
//!    Reported as mean/max time-to-recover next to the warm execute.
//! 3. **Re-prepare latency under a 4-session storm** (wire-sql only):
//!    four warm `Prepared` handles, one drop wipes every server-side
//!    statement, four threads execute concurrently. Wall time until all
//!    four recover; asserts exactly 4 re-prepares per round (one per
//!    handle — the single-flight plan rebuild admits no re-prepare
//!    storm).
//!
//! Results go to stdout, `results/bench_faults.txt`, and
//! `results/BENCH_faults.json` (the CI artifact).

use sieve_bench::harness::{build_campus, emit, queriers_with_policies, Campus, EnvConfig};
use sieve_bench::table::{mean, render};
use sieve_core::policy::QueryMetadata;
use sieve_core::{
    Fault, FaultConfig, FaultInjectingBackend, MinidbBackend, Sieve, SieveOptions, SieveService,
    SqlBackend,
};
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    quick: bool,
    env: EnvConfig,
    warm_reps: usize,
    drop_rounds: usize,
    #[cfg_attr(not(feature = "wire-sql"), allow(dead_code))]
    storm_rounds: usize,
}

impl Config {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let mut env = EnvConfig::from_env();
        if quick {
            env.scale = 0.004;
            env.days = 20;
        }
        Config {
            quick,
            env,
            warm_reps: if quick { 30 } else { 100 },
            drop_rounds: if quick { 10 } else { 30 },
            storm_rounds: if quick { 5 } else { 15 },
        }
    }
}

/// `--quick` CI gate: the warm no-fault prepared path through the
/// fault-injection wrapper + retry loop must cost less than this much
/// over the raw backend, or the build fails.
const WARM_FAULT_OVERHEAD_GATE_PCT: f64 = 5.0;

/// Absolute escape hatch for the gate: overhead below this many ms is
/// inside the timer's resolution on a noisy shared container and passes
/// regardless of percentage (the quick-scale baseline is tens of µs, so
/// a few µs of scheduler jitter can read as >5%). Any real regression —
/// an extra lock, an allocation per attempt — costs more than this and
/// still trips the gate.
const WARM_FAULT_OVERHEAD_GATE_FLOOR_MS: f64 = 0.01;

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best block-mean over `blocks` blocks of `reps` calls, in ms/call
/// (same estimator as `bench_backend`: transient stalls only ever slow
/// a block down, so the minimum converges on the true cost).
fn best_block_ms(reps: usize, blocks: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..blocks {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(ms(t.elapsed()) / reps as f64);
    }
    best
}

/// Stand up a service over `backend` with the campus policy corpus.
fn service_over<B: SqlBackend>(backend: B, campus: &Campus) -> SieveService<B> {
    let mut sieve = Sieve::with_backend(backend, SieveOptions::default()).expect("backend init");
    *sieve.groups_mut() = campus.dataset.groups.clone();
    sieve
        .add_policies(campus.policies.iter().cloned())
        .expect("policies");
    sieve.into_service()
}

struct DropNumbers {
    backend: &'static str,
    warm_ms: f64,
    recover_mean_ms: f64,
    recover_max_ms: f64,
    rounds: usize,
    reconnects: u64,
    reprepares: u64,
}

/// Time-to-recover after a scripted connection drop, on whichever
/// backend the build has (wire-sql when available, else in-process).
fn drop_recovery<B: SqlBackend>(
    inner: B,
    backend: &'static str,
    campus: &Campus,
    qm: &QueryMetadata,
    q: &minidb::SelectQuery,
    warm_reps: usize,
    rounds: usize,
) -> DropNumbers {
    let service = service_over(FaultInjectingBackend::new(inner, FaultConfig::default()), campus);
    let prepared = service
        .session(qm.clone())
        .prepare(q.clone())
        .expect("prepare");
    prepared.execute().expect("warm-up");
    let warm_ms = best_block_ms(warm_reps, 3, || {
        prepared.execute().expect("warm exec");
    });
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        service.backend().script([Fault::ConnectionDrop]);
        let t = Instant::now();
        prepared.execute().expect("recovery exec");
        samples.push(ms(t.elapsed()));
    }
    let stats = service.recovery_stats();
    DropNumbers {
        backend,
        warm_ms,
        recover_mean_ms: mean(&samples).unwrap_or(0.0),
        recover_max_ms: samples.iter().copied().fold(0.0, f64::max),
        rounds,
        reconnects: stats.reconnects,
        reprepares: stats.reprepares,
    }
}

#[cfg(feature = "wire-sql")]
struct StormNumbers {
    recover_mean_ms: f64,
    recover_max_ms: f64,
    rounds: usize,
    reprepares_per_round: u64,
}

fn main() {
    let cfg = Config::from_args();
    let purpose = "Analytics";
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== bench_faults (scale={}, days={}, quick={}) ===\n",
        cfg.env.scale, cfg.env.days, cfg.quick
    );

    let campus = build_campus(minidb::DbProfile::MySqlLike, &cfg.env);
    let (querier, policy_count) = {
        let mut floor = 100usize;
        loop {
            let qs = queriers_with_policies(&campus, purpose, floor);
            if let Some(&(q, c)) = qs.first() {
                break (q, c);
            }
            assert!(floor > 10, "campus has no queriers with policies");
            floor -= 10;
        }
    };
    let qm = QueryMetadata::new(querier, purpose);
    let q = sieve_workload::query_gen::generate_query(
        &campus.dataset,
        sieve_workload::QueryClass::Q1,
        sieve_workload::Selectivity::Low,
        7,
    );
    let base_db: minidb::Database = campus.sieve.db().clone();

    // ---- 1. Warm no-fault overhead: raw backend vs rate-0 wrapper.
    let raw_service = service_over(MinidbBackend::new(base_db.clone()), &campus);
    let faulty_service = service_over(
        FaultInjectingBackend::new(MinidbBackend::new(base_db.clone()), FaultConfig::default()),
        &campus,
    );
    let raw_prepared = raw_service
        .session(qm.clone())
        .prepare(q.clone())
        .expect("raw prepare");
    let faulty_prepared = faulty_service
        .session(qm.clone())
        .prepare(q.clone())
        .expect("faulty prepare");
    let raw_rows = raw_prepared.execute().expect("raw warm-up").len();
    let faulty_rows = faulty_prepared.execute().expect("faulty warm-up").len();
    assert_eq!(
        raw_rows, faulty_rows,
        "rate-0 fault wrapper must not change results"
    );
    // Interleaved blocks so both sides of the gate comparison see the
    // same noise environment.
    let (mut raw_ms, mut faulty_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..6 {
        raw_ms = raw_ms.min(best_block_ms(cfg.warm_reps, 1, || {
            raw_prepared.execute().expect("raw exec");
        }));
        faulty_ms = faulty_ms.min(best_block_ms(cfg.warm_reps, 1, || {
            faulty_prepared.execute().expect("faulty exec");
        }));
    }
    let overhead_ms = faulty_ms - raw_ms;
    let overhead_pct = overhead_ms / raw_ms.max(f64::EPSILON) * 100.0;
    // Rate-0 sanity: nothing injected, nothing retried on the warm path.
    assert_eq!(faulty_service.backend().fault_counts().total(), 0);
    let warm_stats = faulty_service.recovery_stats();
    assert_eq!((warm_stats.retries, warm_stats.exhausted), (0, 0));

    // ---- 2. Time-to-recover after a connection drop.
    #[cfg(feature = "wire-sql")]
    let drop = drop_recovery(
        sieve_core::WireSqlBackend::new(base_db.clone()),
        "wire-sql",
        &campus,
        &qm,
        &q,
        cfg.warm_reps,
        cfg.drop_rounds,
    );
    #[cfg(not(feature = "wire-sql"))]
    let drop = drop_recovery(
        MinidbBackend::new(base_db.clone()),
        "minidb",
        &campus,
        &qm,
        &q,
        cfg.warm_reps,
        cfg.drop_rounds,
    );

    // ---- 3. Re-prepare under a 4-session storm (wire-sql only).
    #[cfg(feature = "wire-sql")]
    let storm = {
        let service = service_over(
            FaultInjectingBackend::new(
                sieve_core::WireSqlBackend::new(base_db.clone()),
                FaultConfig::default(),
            ),
            &campus,
        );
        let handles: Vec<_> = (0..4)
            .map(|_| {
                service
                    .session(qm.clone())
                    .prepare(q.clone())
                    .expect("storm prepare")
            })
            .collect();
        for p in &handles {
            p.execute().expect("storm warm-up");
        }
        let mut walls = Vec::with_capacity(cfg.storm_rounds);
        let mut before = service.recovery_stats().reprepares;
        let mut per_round = 0u64;
        for _ in 0..cfg.storm_rounds {
            service.backend().script([Fault::ConnectionDrop]);
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for p in &handles {
                    s.spawn(move || {
                        p.execute().expect("storm recover");
                    });
                }
            });
            walls.push(ms(t0.elapsed()));
            let after = service.recovery_stats().reprepares;
            per_round = after - before;
            assert_eq!(
                per_round,
                handles.len() as u64,
                "expected exactly one re-prepare per handle per round"
            );
            before = after;
        }
        StormNumbers {
            recover_mean_ms: mean(&walls).unwrap_or(0.0),
            recover_max_ms: walls.iter().copied().fold(0.0, f64::max),
            rounds: cfg.storm_rounds,
            reprepares_per_round: per_round,
        }
    };

    // ---- Report.
    #[cfg_attr(not(feature = "wire-sql"), allow(unused_mut))]
    let mut rows_out: Vec<Vec<String>> = vec![
        vec!["querier policies".into(), policy_count.to_string()],
        vec!["result rows".into(), raw_rows.to_string()],
        vec!["warm exec, raw backend".into(), format!("{raw_ms:.4} ms")],
        vec![
            "warm exec, rate-0 fault wrapper".into(),
            format!("{faulty_ms:.4} ms"),
        ],
        vec![
            "warm no-fault overhead".into(),
            format!("{overhead_ms:.4} ms ({overhead_pct:.1}%)"),
        ],
        vec![
            format!("[{}] warm prepared exec", drop.backend),
            format!("{:.4} ms", drop.warm_ms),
        ],
        vec![
            format!("[{}] recover after drop, mean/max", drop.backend),
            format!("{:.3} / {:.3} ms", drop.recover_mean_ms, drop.recover_max_ms),
        ],
        vec![
            format!("[{}] drops healed (reconnects)", drop.backend),
            format!("{} over {} rounds", drop.reconnects, drop.rounds),
        ],
        vec![
            format!("[{}] re-prepares", drop.backend),
            drop.reprepares.to_string(),
        ],
    ];
    #[cfg(feature = "wire-sql")]
    {
        rows_out.push(vec![
            "[wire-sql] 4-session storm recover, mean/max".into(),
            format!(
                "{:.3} / {:.3} ms",
                storm.recover_mean_ms, storm.recover_max_ms
            ),
        ]);
        rows_out.push(vec![
            "[wire-sql] storm re-prepares per round".into(),
            storm.reprepares_per_round.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", render(&["metric", "value"], &rows_out));

    let gate_pass =
        overhead_pct < WARM_FAULT_OVERHEAD_GATE_PCT || overhead_ms < WARM_FAULT_OVERHEAD_GATE_FLOOR_MS;
    if cfg.quick {
        assert!(
            gate_pass,
            "FAULT-TOLERANCE GATE: warm no-fault overhead {overhead_ms:.4} ms \
             ({overhead_pct:.1}%) breaches the {WARM_FAULT_OVERHEAD_GATE_PCT}% / \
             {WARM_FAULT_OVERHEAD_GATE_FLOOR_MS} ms gate"
        );
        let _ = writeln!(
            out,
            "[gate PASS: warm no-fault overhead {overhead_ms:.4} ms \
             ({overhead_pct:.1}%) within the {WARM_FAULT_OVERHEAD_GATE_PCT}% / \
             {WARM_FAULT_OVERHEAD_GATE_FLOOR_MS} ms gate]"
        );
    }
    emit("bench_faults", &out);

    #[cfg(feature = "wire-sql")]
    let storm_json = format!(
        "{{\"recover_mean_ms\": {:.4}, \"recover_max_ms\": {:.4}, \
         \"rounds\": {}, \"reprepares_per_round\": {}}}",
        storm.recover_mean_ms, storm.recover_max_ms, storm.rounds, storm.reprepares_per_round
    );
    #[cfg(not(feature = "wire-sql"))]
    let storm_json = "null".to_string();
    let json = format!(
        "{{\n  \
           \"bench\": \"faults\",\n  \
           \"quick\": {quick},\n  \
           \"scale\": {scale},\n  \
           \"days\": {days},\n  \
           \"warm_raw_ms\": {raw_ms:.5},\n  \
           \"warm_faulty_ms\": {faulty_ms:.5},\n  \
           \"warm_overhead_ms\": {overhead_ms:.5},\n  \
           \"warm_overhead_pct\": {overhead_pct:.2},\n  \
           \"warm_gate_pct\": {WARM_FAULT_OVERHEAD_GATE_PCT},\n  \
           \"warm_gate_floor_ms\": {WARM_FAULT_OVERHEAD_GATE_FLOOR_MS},\n  \
           \"warm_gate_pass\": {gate_pass},\n  \
           \"drop\": {{\"backend\": \"{dbackend}\", \"warm_ms\": {dwarm:.5}, \
             \"recover_mean_ms\": {dmean:.4}, \"recover_max_ms\": {dmax:.4}, \
             \"rounds\": {drounds}, \"reconnects\": {dreconn}, \"reprepares\": {dreprep}}},\n  \
           \"storm\": {storm_json}\n\
         }}\n",
        quick = cfg.quick,
        scale = cfg.env.scale,
        days = cfg.env.days,
        dbackend = drop.backend,
        dwarm = drop.warm_ms,
        dmean = drop.recover_mean_ms,
        dmax = drop.recover_max_ms,
        drounds = drop.rounds,
        dreconn = drop.reconnects,
        dreprep = drop.reprepares,
    );
    let _ = std::fs::create_dir_all("results");
    let path = std::path::Path::new("results").join("BENCH_faults.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
