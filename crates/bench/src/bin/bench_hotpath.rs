//! `bench_hotpath` — the perf-trajectory baseline for the
//! middleware→minidb hot path.
//!
//! Two measurements, emitted as a text table and as
//! `results/BENCH_hotpath.json` (the machine-readable perf trajectory
//! every PR appends a data point to via CI):
//!
//! 1. **Cold vs warm repeat-query latency.** A querier's first query pays
//!    guard generation + fragment compilation + rewrite + execution; a
//!    repeat query is served from the guard cache and pays only the cheap
//!    per-query assembly + execution. The ratio is the guard cache's win.
//! 2. **Filter-loop throughput.** Rows/second through the engine's
//!    batched, non-cloning predicate evaluator on a forced sequential
//!    scan with a policy-shaped OR predicate.
//! 3. **Morsel-parallel scan scaling.** The same forced scan at 1/2/4/8
//!    worker threads, with the machine's core count recorded so the
//!    trajectory stays interpretable across hosts.
//! 4. **Index-union vs full scan.** The selective guard-shaped OR
//!    predicate routed through per-disjunct index probes
//!    (`IndexUnion(col=owner, …)`) against the sequential scan baseline.
//!
//! `--quick` shrinks the dataset and repetition counts for CI smoke runs
//! and gates the data plane: the index union must beat the full scan on
//! the selective workload, parallel scans must return exactly the
//! sequential row counts, and EXPLAIN must report the union access path.
//! The usual `SIEVE_SCALE`/`SIEVE_DAYS` env knobs are honoured otherwise.

use minidb::exec::ExecOptions;
use minidb::expr::{ColumnRef, Expr};
use minidb::plan::{IndexHint, TableRef};
use minidb::{SelectQuery, Value};
use sieve_bench::harness::{build_campus, emit, queriers_with_policies, EnvConfig};
use sieve_bench::table::{mean, render};
use sieve_core::policy::QueryMetadata;
use sieve_workload::WIFI_TABLE;
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    quick: bool,
    env: EnvConfig,
    queriers: usize,
    warm_reps: usize,
    filter_reps: usize,
}

impl Config {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let mut env = EnvConfig::from_env();
        if quick {
            env.scale = 0.004;
            env.days = 20;
        }
        Config {
            quick,
            env,
            queriers: if quick { 3 } else { 5 },
            warm_reps: if quick { 5 } else { 10 },
            filter_reps: if quick { 3 } else { 6 },
        }
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let cfg = Config::from_args();
    let purpose = "Analytics";
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== bench_hotpath (scale={}, days={}, quick={}) ===\n",
        cfg.env.scale, cfg.env.days, cfg.quick
    );

    let mut campus = build_campus(minidb::DbProfile::MySqlLike, &cfg.env);

    // Queriers with the largest relevant policy sets: the paper's heavy
    // case, and the one where generation dominates cold latency.
    let queriers: Vec<i64> = {
        let mut floor = 100usize;
        loop {
            let qs = queriers_with_policies(&campus, purpose, floor);
            if qs.len() >= cfg.queriers || floor <= 10 {
                break qs.into_iter().take(cfg.queriers).map(|(q, _)| q).collect();
            }
            floor -= 10;
        }
    };
    assert!(!queriers.is_empty(), "campus must contain queriers");

    // ---- 1. Cold vs warm repeat-query latency through the middleware.
    // A selective Q1-style query (the paper's location-surveillance
    // template): execution is a few milliseconds, so the cold query is
    // dominated by exactly what the guard cache amortizes — guard
    // generation and fragment compilation.
    let q = sieve_workload::query_gen::generate_query(
        &campus.dataset,
        sieve_workload::QueryClass::Q1,
        sieve_workload::Selectivity::Low,
        7,
    );
    let mut cold_prepare = Vec::new();
    let mut warm_prepare = Vec::new();
    let mut cold_e2e = Vec::new();
    let mut warm_e2e = Vec::new();
    let mut result_rows = 0usize;
    for &querier in &queriers {
        let qm = QueryMetadata::new(querier, purpose);
        // Cold prepare: empty cache → guard generation + fragment
        // compilation + per-query assembly. This is the latency the guard
        // cache exists to amortize.
        campus.sieve.invalidate_all();
        let t0 = Instant::now();
        campus.sieve.rewrite(&q, &qm).expect("cold rewrite");
        cold_prepare.push(ms(t0.elapsed()));
        // Cold end-to-end for context (fresh cache again).
        campus.sieve.invalidate_all();
        let t0 = Instant::now();
        let res = campus.sieve.execute(&q, &qm).expect("cold query");
        cold_e2e.push(ms(t0.elapsed()));
        result_rows = res.len();
        // Warm: repeat queries served from the guard cache.
        let mut prep = Vec::with_capacity(cfg.warm_reps);
        let mut e2e = Vec::with_capacity(cfg.warm_reps);
        for _ in 0..cfg.warm_reps {
            let t = Instant::now();
            campus.sieve.rewrite(&q, &qm).expect("warm rewrite");
            prep.push(ms(t.elapsed()));
            let t = Instant::now();
            campus.sieve.execute(&q, &qm).expect("warm query");
            e2e.push(ms(t.elapsed()));
        }
        warm_prepare.push(mean(&prep).unwrap_or(f64::NAN));
        warm_e2e.push(mean(&e2e).unwrap_or(f64::NAN));
    }
    let cold_prepare_ms = mean(&cold_prepare).unwrap_or(f64::NAN);
    let warm_prepare_ms = mean(&warm_prepare).unwrap_or(f64::NAN);
    let cold_e2e_ms = mean(&cold_e2e).unwrap_or(f64::NAN);
    let warm_e2e_ms = mean(&warm_e2e).unwrap_or(f64::NAN);
    let prepare_speedup = cold_prepare_ms / warm_prepare_ms.max(f64::EPSILON);
    let e2e_speedup = cold_e2e_ms / warm_e2e_ms.max(f64::EPSILON);
    let stats = campus.sieve.cache_stats();

    let _ = writeln!(out, "--- cold vs warm repeat-query latency ---");
    let _ = writeln!(
        out,
        "{}",
        render(
            &["metric", "value"],
            &[
                vec!["queriers".into(), queriers.len().to_string()],
                vec![
                    "cold prepare ms (gen+compile+rewrite)".into(),
                    format!("{cold_prepare_ms:.3}")
                ],
                vec![
                    "warm prepare ms (cached)".into(),
                    format!("{warm_prepare_ms:.4}")
                ],
                vec![
                    "prepare speedup".into(),
                    format!("{prepare_speedup:.1}x")
                ],
                vec!["cold e2e ms".into(), format!("{cold_e2e_ms:.3}")],
                vec!["warm e2e ms".into(), format!("{warm_e2e_ms:.3}")],
                vec!["e2e speedup".into(), format!("{e2e_speedup:.2}x")],
                vec!["cache hits".into(), stats.hits.to_string()],
                vec!["cache misses".into(), stats.misses.to_string()],
                vec![
                    "fragment builds".into(),
                    stats.fragment_builds.to_string()
                ],
                vec!["fragment hits".into(), stats.fragment_hits.to_string()],
            ]
        )
    );

    // ---- 2. Filter-loop throughput: forced sequential scan with a
    // policy-shaped OR predicate through the batched evaluator.
    let table_rows = campus
        .sieve
        .db()
        .table(WIFI_TABLE)
        .expect("wifi table")
        .table
        .len();
    let owners: Vec<i64> = campus
        .dataset
        .devices
        .iter()
        .take(8)
        .map(|d| d.id)
        .collect();
    let pred = Expr::any(
        owners
            .iter()
            .map(|&o| Expr::col_eq(ColumnRef::bare("owner"), Value::Int(o)))
            .collect(),
    );
    let scan_q = SelectQuery {
        from: vec![TableRef::named(WIFI_TABLE).with_hint(IndexHint::IgnoreAll)],
        ..SelectQuery::star_from(WIFI_TABLE)
    }
    .filter(pred.clone());
    // Warm-up, then timed passes.
    let _ = campus.sieve.db().run_query(&scan_q).expect("scan warm-up");
    let t0 = Instant::now();
    let mut filter_out_rows = 0usize;
    for _ in 0..cfg.filter_reps {
        filter_out_rows = campus.sieve.db().run_query(&scan_q).expect("scan").len();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let scanned = (table_rows * cfg.filter_reps) as f64;
    let filter_rows_per_sec = scanned / elapsed.max(f64::EPSILON);

    let _ = writeln!(out, "--- batched filter loop (forced SeqScan) ---");
    let _ = writeln!(
        out,
        "{}",
        render(
            &["metric", "value"],
            &[
                vec!["table rows".into(), table_rows.to_string()],
                vec!["passes".into(), cfg.filter_reps.to_string()],
                vec!["output rows/pass".into(), filter_out_rows.to_string()],
                vec![
                    "rows/sec".into(),
                    format!("{:.0}", filter_rows_per_sec)
                ],
            ]
        )
    );

    // ---- 3. Morsel-parallel scan scaling: the same forced sequential
    // scan pushed through the thread knob. Thread counts beyond what the
    // morsel count supports clamp inside the planner, so 8 threads on a
    // small table degrades gracefully rather than oversubscribing.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let db = campus.sieve.db();
    let mut par_rows: Vec<(usize, f64, usize, String)> = Vec::new();
    let mut parallel_rows_ok = true;
    for &t in &[1usize, 2, 4, 8] {
        let opts = ExecOptions::with_threads(t);
        let access = db
            .explain_opts(&scan_q, &opts)
            .expect("explain scan")
            .relations[0]
            .access_desc
            .clone();
        let _ = db.run_query_opts(&scan_q, &opts).expect("parallel warm-up");
        let t0 = Instant::now();
        let mut out_rows = 0usize;
        for _ in 0..cfg.filter_reps {
            out_rows = db.run_query_opts(&scan_q, &opts).expect("parallel scan").len();
        }
        let rps = (table_rows * cfg.filter_reps) as f64
            / t0.elapsed().as_secs_f64().max(f64::EPSILON);
        parallel_rows_ok &= out_rows == filter_out_rows;
        par_rows.push((t, rps, out_rows, access));
    }
    let _ = writeln!(out, "--- morsel-parallel scan ({cores} cores) ---");
    let _ = writeln!(
        out,
        "{}",
        render(
            &["threads", "rows/sec", "output rows", "access"],
            &par_rows
                .iter()
                .map(|(t, rps, rows, access)| vec![
                    t.to_string(),
                    format!("{rps:.0}"),
                    rows.to_string(),
                    access.clone(),
                ])
                .collect::<Vec<_>>()
        )
    );

    // ---- 4. Index-union vs full scan on the selective guard workload:
    // the same 8-owner OR predicate, this time allowed to take
    // per-disjunct index probes. Both sides are re-timed at the same rep
    // count; `--quick` raises the reps so the gate is noise-robust on the
    // tiny CI dataset.
    let union_q = SelectQuery {
        from: vec![TableRef::named(WIFI_TABLE)
            .with_hint(IndexHint::Force(vec!["owner".into()]))],
        ..SelectQuery::star_from(WIFI_TABLE)
    }
    .filter(pred);
    let union_access = db.explain(&union_q).expect("explain union").relations[0]
        .access_desc
        .clone();
    let union_reps = if cfg.quick { 25 } else { cfg.filter_reps };
    let _ = db.run_query(&union_q).expect("union warm-up");
    let t0 = Instant::now();
    let mut union_rows = 0usize;
    for _ in 0..union_reps {
        union_rows = db.run_query(&union_q).expect("index union").len();
    }
    let union_ms_per_pass = ms(t0.elapsed()) / union_reps as f64;
    let t0 = Instant::now();
    for _ in 0..union_reps {
        let _ = db.run_query(&scan_q).expect("scan baseline");
    }
    let scan_ms_per_pass = ms(t0.elapsed()) / union_reps as f64;
    let union_speedup = scan_ms_per_pass / union_ms_per_pass.max(f64::EPSILON);
    drop(db);

    let _ = writeln!(out, "--- index union vs full scan (selective OR) ---");
    let _ = writeln!(
        out,
        "{}",
        render(
            &["metric", "value"],
            &[
                vec!["access path".into(), union_access.clone()],
                vec!["scan ms/pass".into(), format!("{scan_ms_per_pass:.3}")],
                vec!["union ms/pass".into(), format!("{union_ms_per_pass:.3}")],
                vec!["union speedup".into(), format!("{union_speedup:.1}x")],
                vec!["output rows".into(), union_rows.to_string()],
            ]
        )
    );

    if prepare_speedup < 5.0 {
        let _ = writeln!(
            out,
            "\nWARNING: warm prepare speedup {prepare_speedup:.1}x below the 5x target"
        );
    }
    if cfg.quick {
        assert!(
            parallel_rows_ok,
            "parallel scans must return the sequential row counts"
        );
        assert!(
            union_access.starts_with("IndexUnion"),
            "forced guard-shaped OR must plan as an index union, got {union_access}"
        );
        assert!(
            union_rows == filter_out_rows,
            "index union must return the scan's rows ({union_rows} vs {filter_out_rows})"
        );
        assert!(
            union_ms_per_pass < scan_ms_per_pass,
            "index union ({union_ms_per_pass:.3} ms) must beat the full scan \
             ({scan_ms_per_pass:.3} ms) on the selective workload"
        );
    }
    emit("bench_hotpath", &out);

    // Machine-readable trajectory point.
    let json = format!(
        "{{\n  \
           \"bench\": \"hotpath\",\n  \
           \"quick\": {quick},\n  \
           \"scale\": {scale},\n  \
           \"days\": {days},\n  \
           \"queriers\": {queriers},\n  \
           \"result_rows\": {result_rows},\n  \
           \"cold_prepare_ms_mean\": {cold_prepare_ms:.4},\n  \
           \"warm_prepare_ms_mean\": {warm_prepare_ms:.4},\n  \
           \"prepare_speedup\": {prepare_speedup:.2},\n  \
           \"cold_e2e_ms_mean\": {cold_e2e_ms:.3},\n  \
           \"warm_e2e_ms_mean\": {warm_e2e_ms:.3},\n  \
           \"e2e_speedup\": {e2e_speedup:.2},\n  \
           \"filter_table_rows\": {table_rows},\n  \
           \"filter_passes\": {passes},\n  \
           \"filter_output_rows\": {filter_out_rows},\n  \
           \"filter_rows_per_sec\": {filter_rows_per_sec:.0},\n  \
           \"cores\": {cores},\n  \
           \"parallel_scan\": [\n{par_json}  ],\n  \
           \"index_union\": {{\n    \
             \"access\": \"{union_access}\",\n    \
             \"scan_ms_per_pass\": {scan_ms_per_pass:.4},\n    \
             \"union_ms_per_pass\": {union_ms_per_pass:.4},\n    \
             \"speedup\": {union_speedup:.2},\n    \
             \"output_rows\": {union_rows}\n  \
           }},\n  \
           \"cache\": {{\n    \
             \"hits\": {hits},\n    \
             \"misses\": {misses},\n    \
             \"fragment_builds\": {fb},\n    \
             \"fragment_hits\": {fh}\n  \
           }}\n\
         }}\n",
        quick = cfg.quick,
        scale = cfg.env.scale,
        days = cfg.env.days,
        queriers = queriers.len(),
        passes = cfg.filter_reps,
        par_json = par_rows
            .iter()
            .map(|(t, rps, rows, access)| format!(
                "    {{\"threads\": {t}, \"rows_per_sec\": {rps:.0}, \
                 \"output_rows\": {rows}, \"access\": \"{access}\"}}"
            ))
            .collect::<Vec<_>>()
            .join(",\n")
            + "\n",
        hits = stats.hits,
        misses = stats.misses,
        fb = stats.fragment_builds,
        fh = stats.fragment_hits,
    );
    let _ = std::fs::create_dir_all("results");
    let path = std::path::Path::new("results").join("BENCH_hotpath.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
