//! `bench_multiquerier` — batched multi-querier preparation vs the
//! per-querier loop.
//!
//! The scenario the ROADMAP's batched-evaluation item targets: ≥ 100
//! distinct queriers hit the same protected relation concurrently with
//! cold guard caches. Two schedules prepare the identical request batch:
//!
//! 1. **Sequential** — `Sieve::rewrite` per request; every querier pays
//!    its own policy-store scan and candidate generation.
//! 2. **Batched** — `Sieve::prepare_batch` runs the shared phase (store
//!    scan, candidate generation, histogram estimates) once per
//!    `(purpose, relation)` group, then per-request `rewrite` hits the
//!    warm cache and pays only fragment compilation + assembly.
//!
//! Both schedules then execute every request and the row sets are
//! asserted identical — batching must change the schedule, never the
//! semantics. Results go to stdout, `results/bench_multiquerier.txt`,
//! and `results/BENCH_multiquerier.json` (the CI artifact).
//!
//! `--quick` shrinks the dataset for CI smoke runs while keeping the
//! querier count at the 100-querier scenario; `SIEVE_SCALE`/`SIEVE_DAYS`
//! are honoured otherwise.

use sieve_bench::harness::{build_campus, emit, EnvConfig};
use sieve_bench::table::render;
use sieve_workload::traffic::{multi_querier_traffic, TrafficConfig};
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    quick: bool,
    env: EnvConfig,
    queriers: usize,
}

impl Config {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let mut env = EnvConfig::from_env();
        if quick {
            env.scale = 0.004;
            env.days = 20;
        }
        Config {
            quick,
            env,
            queriers: if quick { 100 } else { 150 },
        }
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let cfg = Config::from_args();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== bench_multiquerier (scale={}, days={}, quick={}) ===\n",
        cfg.env.scale, cfg.env.days, cfg.quick
    );

    let mut campus = build_campus(minidb::DbProfile::MySqlLike, &cfg.env);
    let requests = multi_querier_traffic(
        &campus.dataset,
        &TrafficConfig {
            queriers: cfg.queriers,
            purpose: "Analytics".into(),
            seed: 11,
        },
    );
    assert!(
        requests.len() >= 100,
        "scenario needs >= 100 distinct queriers, got {}",
        requests.len()
    );
    let policies = campus.policies.len();

    // ---- 1. Sequential per-querier preparation (cold cache).
    campus.sieve.invalidate_all();
    let seq_gens_before = campus.sieve.generations();
    let t0 = Instant::now();
    for (qm, q) in &requests {
        campus.sieve.rewrite(q, qm).expect("sequential rewrite");
    }
    let seq_prepare_ms = ms(t0.elapsed());
    let seq_generations = campus.sieve.generations() - seq_gens_before;
    let mut seq_rows: Vec<Vec<minidb::Row>> = Vec::with_capacity(requests.len());
    for (qm, q) in &requests {
        let mut rows = campus.sieve.execute(q, qm).expect("sequential execute").rows;
        rows.sort();
        seq_rows.push(rows);
    }

    // ---- 2. Batched preparation of the identical requests (cold cache).
    campus.sieve.invalidate_all();
    let gens_before = campus.sieve.generations();
    let t0 = Instant::now();
    let report = campus.sieve.prepare_batch(&requests).expect("prepare_batch");
    let batch_gen_ms = ms(t0.elapsed());
    let t0 = Instant::now();
    for (qm, q) in &requests {
        campus.sieve.rewrite(q, qm).expect("batched rewrite");
    }
    let batch_rewrite_ms = ms(t0.elapsed());
    let batch_prepare_ms = batch_gen_ms + batch_rewrite_ms;
    let batch_generations = campus.sieve.generations() - gens_before;

    let mut equal = true;
    for ((qm, q), expect) in requests.iter().zip(&seq_rows) {
        let mut rows = campus.sieve.execute(q, qm).expect("batched execute").rows;
        rows.sort();
        if &rows != expect {
            equal = false;
            eprintln!("MISMATCH for querier {}", qm.querier);
        }
    }
    assert!(equal, "batched results diverged from sequential execution");

    let speedup = seq_prepare_ms / batch_prepare_ms.max(f64::EPSILON);
    let groups = report.groups.len();
    let slice_policies: usize = report.groups.iter().map(|g| g.slice_policies).sum();
    let shared_candidates: usize = report.groups.iter().map(|g| g.shared_candidates).sum();

    let _ = writeln!(out, "--- batched vs sequential preparation ---");
    let _ = writeln!(
        out,
        "{}",
        render(
            &["metric", "value"],
            &[
                vec!["queriers".into(), requests.len().to_string()],
                vec!["policies".into(), policies.to_string()],
                vec!["groups".into(), groups.to_string()],
                vec!["group slice policies".into(), slice_policies.to_string()],
                vec!["shared candidates".into(), shared_candidates.to_string()],
                vec![
                    "sequential prepare ms".into(),
                    format!("{seq_prepare_ms:.2}")
                ],
                vec![
                    "batch generation ms".into(),
                    format!("{batch_gen_ms:.2}")
                ],
                vec![
                    "batch rewrite ms".into(),
                    format!("{batch_rewrite_ms:.2}")
                ],
                vec![
                    "batch prepare ms (total)".into(),
                    format!("{batch_prepare_ms:.2}")
                ],
                vec!["speedup".into(), format!("{speedup:.2}x")],
                vec![
                    "generations seq/batch".into(),
                    format!("{seq_generations}/{batch_generations}")
                ],
                vec!["results identical".into(), equal.to_string()],
            ]
        )
    );
    if speedup < 1.1 {
        let _ = writeln!(
            out,
            "\nWARNING: batched prepare speedup {speedup:.2}x below the 1.1x floor"
        );
    }
    emit("bench_multiquerier", &out);

    let json = format!(
        "{{\n  \
           \"bench\": \"multiquerier\",\n  \
           \"quick\": {quick},\n  \
           \"scale\": {scale},\n  \
           \"days\": {days},\n  \
           \"queriers\": {queriers},\n  \
           \"policies\": {policies},\n  \
           \"groups\": {groups},\n  \
           \"group_slice_policies\": {slice_policies},\n  \
           \"shared_candidates\": {shared_candidates},\n  \
           \"seq_prepare_ms\": {seq_prepare_ms:.3},\n  \
           \"batch_generation_ms\": {batch_gen_ms:.3},\n  \
           \"batch_rewrite_ms\": {batch_rewrite_ms:.3},\n  \
           \"batch_prepare_ms\": {batch_prepare_ms:.3},\n  \
           \"speedup\": {speedup:.3},\n  \
           \"generations_sequential\": {seq_generations},\n  \
           \"generations_batched\": {batch_generations},\n  \
           \"results_identical\": {equal}\n\
         }}\n",
        quick = cfg.quick,
        scale = cfg.env.scale,
        days = cfg.env.days,
        queriers = requests.len(),
    );
    let _ = std::fs::create_dir_all("results");
    let path = std::path::Path::new("results").join("BENCH_multiquerier.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
