//! `bench_server` — the wire front under session-scale load.
//!
//! One `SieveServer` over the in-process loopback transport, driven by
//! MANY concurrent remote sessions (default 1200, `--quick` 1000 — the
//! acceptance floor), each on its own connection with its own client
//! thread, while a writer storms `add_policy` in the background (every
//! insert bumps the service revision, forcing prepared plans through a
//! transparent re-prepare). Every response is checked row-identical to
//! the in-process oracle — the bench doubles as an enforcement test at
//! scale.
//!
//! Reported:
//!
//! * **connection setup** — avg/p50/p99 of connect + handshake + auth
//!   per connection;
//! * **per-session memory** — VmRSS delta across session establishment,
//!   divided by session count (Linux `/proc/self/status`);
//! * **query latency** — p50/p99 over every remote execute (one-shot
//!   and prepared), measured client-side across the full round trip;
//! * **single-flight** — sessions share queriers, so the cold storm
//!   exercises the guard cache's in-flight claim: generations must equal
//!   distinct keys, never sessions.
//!
//! Results go to stdout, `results/bench_server.txt`, and
//! `results/BENCH_server.json` (the CI artifact).

use sieve_bench::table::render;
use sieve_client::RemoteConnection;
use sieve_core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve_core::{SieveOptions, SieveService};
use sieve_server::{loopback, SieveServer, TokenAuthenticator};
use minidb::value::DataType;
use minidb::{Database, DbProfile, Row, TableSchema, Value};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const REL: &str = "wifi_dataset";
const QUERY: &str = "SELECT * FROM wifi_dataset";

struct Config {
    quick: bool,
    sessions: usize,
    queriers: usize,
    rows: i64,
    ops_per_session: usize,
    writer_policies: usize,
}

impl Config {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Config {
            quick,
            // 1000 concurrent sessions is the floor the server must
            // sustain; the full run pushes past it.
            sessions: if quick { 1000 } else { 2000 },
            queriers: 50,
            rows: if quick { 2000 } else { 6000 },
            ops_per_session: if quick { 4 } else { 8 },
            writer_policies: if quick { 10 } else { 30 },
        }
    }
}

fn loaded_db(rows: i64) -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert(
            REL,
            vec![Value::Int(i), Value::Int(i % 80), Value::Int(1000 + i % 64)],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap"] {
        db.create_index(REL, col).unwrap();
    }
    db.analyze(REL).unwrap();
    db
}

/// Querier `500 + k` reads owners 0..12 at AP `1000 + k % 64`.
fn corpus(queriers: usize) -> Vec<Policy> {
    let mut out = Vec::new();
    for k in 0..queriers {
        for owner in 0..12i64 {
            out.push(Policy::new(
                owner,
                REL,
                QuerierSpec::User(500 + k as i64),
                "Analytics",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Eq(Value::Int(1000 + (k % 64) as i64)),
                )],
            ));
        }
    }
    out
}

fn qm(querier: i64) -> QueryMetadata {
    QueryMetadata::new(querier, "Analytics")
}

fn sorted_rows(res: minidb::QueryResult) -> Vec<Row> {
    let mut rows = res.rows;
    rows.sort();
    rows
}

/// Resident set size in KiB from `/proc/self/status` (0 where absent).
fn vm_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmRSS:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse().ok())
            })
        })
        .unwrap_or(0)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let cfg = Config::from_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== bench_server (sessions={}, queriers={}, rows={}, quick={}, cores={}) ===\n",
        cfg.sessions, cfg.queriers, cfg.rows, cfg.quick, cores
    );

    // ---- Service, policies, oracle, server.
    let service = SieveService::new(loaded_db(cfg.rows), SieveOptions::default()).unwrap();
    let policies = corpus(cfg.queriers);
    let n_policies = policies.len();
    for p in policies {
        service.add_policy(p).unwrap();
    }
    let oracles: Arc<Vec<Vec<Row>>> = Arc::new(
        (0..cfg.queriers)
            .map(|k| {
                sorted_rows(
                    service
                        .session(qm(500 + k as i64))
                        .execute_sql(QUERY)
                        .expect("oracle"),
                )
            })
            .collect(),
    );
    assert!(oracles.iter().any(|r| !r.is_empty()), "oracle all-empty");
    // The execute storm below must start cold so the session stampede
    // exercises single-flight generation, not a warm cache. The
    // generation counter is monotonic (the oracle pass above already
    // spent one generation per querier), so single-flight accounting is
    // done on deltas from this baseline.
    service.invalidate_all();
    let gen_baseline = service.generations();

    let mut auth = TokenAuthenticator::new();
    for k in 0..cfg.queriers {
        auth.insert(format!("token-{k}"), 500 + k as i64);
    }
    let server = SieveServer::new(service.clone(), auth);
    let (listener, connector) = loopback();
    let handle = server.serve(listener);

    // ---- Connection setup cost + per-session memory.
    let rss_before = vm_rss_kib();
    let t0 = Instant::now();
    let mut setup_ms: Vec<f64> = Vec::with_capacity(cfg.sessions);
    let conns: Vec<RemoteConnection> = (0..cfg.sessions)
        .map(|s| {
            let k = s % cfg.queriers;
            let c0 = Instant::now();
            let conn = RemoteConnection::establish(
                connector.connect().expect("connect"),
                &format!("token-{k}"),
            )
            .expect("establish");
            setup_ms.push(ms(c0.elapsed()));
            conn
        })
        .collect();
    let setup_wall = t0.elapsed();
    let rss_after = vm_rss_kib();
    let per_session_kib =
        (rss_after.saturating_sub(rss_before)) as f64 / cfg.sessions as f64;
    setup_ms.sort_by(|a, b| a.total_cmp(b));
    let setup_avg = setup_ms.iter().sum::<f64>() / setup_ms.len().max(1) as f64;

    // ---- Execute storm: every session concurrently, one-shot + prepared,
    // with an add_policy writer running through the middle of it.
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let mismatches = AtomicU64::new(0);
    let total_ops = AtomicU64::new(0);
    // Two sync points: `start` releases the cold stampede (every session
    // cold-misses its querier's key at once — the single-flight case),
    // `mid` lets the main thread read the generation counter before any
    // writer-driven regeneration muddies it.
    let start = Barrier::new(cfg.sessions + 1);
    let mid = Barrier::new(cfg.sessions + 1);
    let cold_generations = AtomicU64::new(0);
    let storm_done = AtomicBool::new(false);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (sid, conn) in conns.iter().enumerate() {
            let k = sid % cfg.queriers;
            let oracles = Arc::clone(&oracles);
            let (latencies, mismatches, total_ops) = (&latencies, &mismatches, &total_ops);
            let (start, mid) = (&start, &mid);
            s.spawn(move || {
                let session = conn.session(qm(500 + k as i64));
                let mut local: Vec<f64> = Vec::with_capacity(cfg.ops_per_session + 1);
                start.wait();
                // Cold stampede: sessions_per_querier threads miss the
                // same key together; single-flight must make this one
                // generation per key.
                let q0 = Instant::now();
                let res = session.execute_sql(QUERY).expect("remote execute");
                local.push(ms(q0.elapsed()));
                if sorted_rows(res) != oracles[k] {
                    mismatches.fetch_add(1, Ordering::Relaxed);
                }
                mid.wait();
                // Warm one-shot executes under the writer storm.
                for _ in 1..cfg.ops_per_session {
                    let q0 = Instant::now();
                    let res = session.execute_sql(QUERY).expect("remote execute");
                    local.push(ms(q0.elapsed()));
                    if sorted_rows(res) != oracles[k] {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Prepared path: pin once, execute once more.
                let prepared = session.prepare_sql(QUERY).expect("remote prepare");
                let q0 = Instant::now();
                let res = prepared.execute().expect("prepared execute");
                local.push(ms(q0.elapsed()));
                if sorted_rows(res) != oracles[k] {
                    mismatches.fetch_add(1, Ordering::Relaxed);
                }
                prepared.close().expect("close prepared");
                total_ops.fetch_add(local.len() as u64, Ordering::Relaxed);
                latencies
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend_from_slice(&local);
            });
        }
        start.wait();
        mid.wait();
        // Every session has completed its cold execute; the counter now
        // reflects the stampede alone.
        cold_generations.store(service.generations() - gen_baseline, Ordering::SeqCst);
        // Writer storm on the main thread: policies for out-of-corpus
        // queriers — every insert bumps the revision (forcing prepared
        // plans and cache entries through refresh) without changing what
        // the bench queriers may see.
        for w in 0..cfg.writer_policies {
            std::thread::sleep(Duration::from_millis(2));
            service
                .add_policy(Policy::new(
                    (w % 80) as i64,
                    REL,
                    QuerierSpec::User(9_000_000 + w as i64),
                    "Analytics",
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Ne(Value::Int(-1)),
                    )],
                ))
                .expect("writer add_policy");
        }
        storm_done.store(true, Ordering::SeqCst);
    });
    let storm_wall = t0.elapsed();
    assert!(storm_done.load(Ordering::SeqCst));
    let ops = total_ops.load(Ordering::Relaxed);
    let bad = mismatches.load(Ordering::Relaxed);
    assert_eq!(bad, 0, "{bad} remote responses diverged from the oracle");
    let cold_generations = cold_generations.load(Ordering::SeqCst);

    let mut lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    lat.sort_by(|a, b| a.total_cmp(b));
    let (lat_p50, lat_p99) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
    let qps = ops as f64 / storm_wall.as_secs_f64();

    // ---- Single-flight accounting across the cold session storm.
    let generations = service.generations() - gen_baseline;
    let cache = service.cache_stats();

    // ---- Teardown.
    for conn in conns {
        conn.close().expect("close");
    }
    drop(connector);
    handle.join();
    let stats = server.stats();
    let served = stats.requests.load(Ordering::Relaxed);
    assert_eq!(
        stats.identity_rejections.load(Ordering::Relaxed),
        0,
        "bench sent no mismatched identities"
    );

    // ---- Report.
    let rows_out: Vec<Vec<String>> = vec![
        vec!["sessions (concurrent)".into(), cfg.sessions.to_string()],
        vec!["queriers".into(), cfg.queriers.to_string()],
        vec!["policies".into(), n_policies.to_string()],
        vec!["requests served".into(), served.to_string()],
        vec![
            "conn setup avg/p50/p99 ms".into(),
            format!(
                "{setup_avg:.3} / {:.3} / {:.3}",
                percentile(&setup_ms, 0.50),
                percentile(&setup_ms, 0.99)
            ),
        ],
        vec![
            "all-session setup wall ms".into(),
            format!("{:.1}", ms(setup_wall)),
        ],
        vec![
            "per-session memory KiB".into(),
            format!("{per_session_kib:.1}"),
        ],
        vec![
            "query latency p50/p99 ms".into(),
            format!("{lat_p50:.3} / {lat_p99:.3}"),
        ],
        vec!["remote ops".into(), ops.to_string()],
        vec!["throughput q/s".into(), format!("{qps:.0}")],
        vec![
            "cold-storm generations / keys".into(),
            format!("{cold_generations} / {}", cfg.queriers),
        ],
        vec![
            "total generations (incl. writer-forced)".into(),
            generations.to_string(),
        ],
        vec!["stampedes coalesced".into(), cache.coalesced.to_string()],
        vec!["row mismatches".into(), bad.to_string()],
    ];
    let _ = writeln!(out, "{}", render(&["metric", "value"], &rows_out));
    assert!(
        cold_generations <= cfg.queriers as u64,
        "single-flight broke: {cold_generations} cold generations for {} keys",
        cfg.queriers
    );
    sieve_bench::harness::emit("bench_server", &out);

    let json = format!(
        "{{\n  \
           \"bench\": \"server\",\n  \
           \"quick\": {quick},\n  \
           \"cores\": {cores},\n  \
           \"sessions\": {sessions},\n  \
           \"queriers\": {queriers},\n  \
           \"policies\": {n_policies},\n  \
           \"requests_served\": {served},\n  \
           \"conn_setup_avg_ms\": {setup_avg:.4},\n  \
           \"conn_setup_p50_ms\": {sp50:.4},\n  \
           \"conn_setup_p99_ms\": {sp99:.4},\n  \
           \"setup_wall_ms\": {sw:.2},\n  \
           \"per_session_rss_kib\": {per_session_kib:.2},\n  \
           \"latency_p50_ms\": {lat_p50:.4},\n  \
           \"latency_p99_ms\": {lat_p99:.4},\n  \
           \"remote_ops\": {ops},\n  \
           \"throughput_qps\": {qps:.1},\n  \
           \"writer_policies\": {wp},\n  \
           \"cold_generations\": {cold_generations},\n  \
           \"total_generations\": {generations},\n  \
           \"coalesced\": {coalesced},\n  \
           \"row_mismatches\": {bad}\n\
         }}\n",
        quick = cfg.quick,
        sessions = cfg.sessions,
        queriers = cfg.queriers,
        sp50 = percentile(&setup_ms, 0.50),
        sp99 = percentile(&setup_ms, 0.99),
        sw = ms(setup_wall),
        wp = cfg.writer_policies,
        coalesced = cache.coalesced,
    );
    let _ = std::fs::create_dir_all("results");
    let path = std::path::Path::new("results").join("BENCH_server.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
