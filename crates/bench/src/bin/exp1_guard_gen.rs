//! Experiment 1 (paper Section 7.2): guard-generation cost and guard
//! quality — regenerates **Figure 2**, **Table 6**, and **Table 7**.
//!
//! * Figure 2: guarded-expression generation time vs. number of policies
//!   (per-querier, averaged in buckets of queriers sorted by policy
//!   count). The paper reports linear growth, ~150 ms at 160 policies.
//! * Table 6: per-querier statistics — relevant policies `|p_uk|`, guard
//!   count `|G|`, partition size `|p_Gi|`, guard cardinality `ρ(G_i)`,
//!   and *savings*: the fraction of policy evaluations eliminated by
//!   guarding (paper: ≈0.99).
//! * Table 7: query evaluation time bucketed by `|G|` (low/high) ×
//!   `ρ(G)` (low/high).
//!
//! `--no-merge` ablates Theorem 1's candidate merging (DESIGN.md §5).

use minidb::DbProfile;
use sieve_bench::harness::{build_campus, emit, EnvConfig};
use sieve_bench::table::{mean, ms, render, std_dev};
use sieve_core::cost::CostModel;
use sieve_core::filter::relevant_policies;
use sieve_core::guard::{generate_guarded_expression, GuardSelectionStrategy};
use sieve_core::policy::QueryMetadata;
use sieve_core::semantics::eval_policies;
use sieve_workload::WIFI_TABLE;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let no_merge = std::env::args().any(|a| a == "--no-merge");
    let env = EnvConfig::from_env();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Experiment 1: guard generation (scale={}, days={}{}) ===\n",
        env.scale,
        env.days,
        if no_merge { ", NO-MERGE ablation" } else { "" }
    );

    let campus = build_campus(DbProfile::MySqlLike, &env);
    let db = campus.sieve.db().clone();
    let entry = db.table(WIFI_TABLE).expect("wifi table");
    let table_rows = entry.table.len() as f64;

    let cost = if no_merge {
        // cr = 0 makes Theorem 1's threshold 1.0: no merge ever fires.
        CostModel {
            cr: 0.0,
            ..CostModel::default()
        }
    } else {
        CostModel::default()
    };

    // Per-querier guard generation over every non-visitor device.
    struct PerQuerier {
        querier: i64,
        policies: usize,
        guards: usize,
        partition_sizes: Vec<usize>,
        guard_fractions: Vec<f64>,
        total_guard_rows: f64,
        savings: f64,
    }
    let purpose = "Analytics";
    let sample_rows: Vec<minidb::Row> = entry
        .table
        .rows()
        .iter()
        .step_by((entry.table.len() / 400).max(1))
        .cloned()
        .collect();
    let schema = entry.schema();

    let mut per_querier: Vec<PerQuerier> = Vec::new();
    for device in campus
        .dataset
        .devices
        .iter()
        .filter(|d| d.profile != sieve_workload::UserProfile::Visitor)
    {
        let qm = QueryMetadata::new(device.id, purpose);
        let relevant = relevant_policies(
            campus.policies.iter(),
            WIFI_TABLE,
            &qm,
            &campus.sieve.groups(),
        );
        if relevant.is_empty() {
            continue;
        }
        let ge = generate_guarded_expression(
            &relevant,
            entry,
            &cost,
            GuardSelectionStrategy::CostOptimal,
            device.id,
            purpose,
            WIFI_TABLE,
        );

        // Savings: policy evaluations without guards vs with guards, on a
        // row sample. Without guards every row is checked against the
        // whole relevant list (short-circuit); with guards only rows
        // passing some guard are checked, against that partition only.
        let mut evals_plain = 0usize;
        let mut evals_guarded = 0usize;
        for row in &sample_rows {
            evals_plain += eval_policies(&relevant, schema, row, None).policies_checked;
            for g in &ge.guards {
                if sieve_core::semantics::eval_condition(&g.condition, schema, row, None) {
                    let part: Vec<&sieve_core::Policy> = g
                        .policies
                        .iter()
                        .filter_map(|id| relevant.iter().find(|p| p.id == *id).copied())
                        .collect();
                    evals_guarded +=
                        eval_policies(&part, schema, row, None).policies_checked;
                }
            }
        }
        let savings = if evals_plain > 0 {
            1.0 - evals_guarded as f64 / evals_plain as f64
        } else {
            0.0
        };

        per_querier.push(PerQuerier {
            querier: device.id,
            policies: relevant.len(),
            guards: ge.guards.len(),
            partition_sizes: ge.guards.iter().map(|g| g.partition_size()).collect(),
            guard_fractions: ge
                .guards
                .iter()
                .map(|g| g.est_rows / table_rows)
                .collect(),
            total_guard_rows: ge.total_guard_rows(),
            savings,
        });
    }
    per_querier.sort_by_key(|p| p.policies);

    // ---- Figure 2: generation time vs #policies. The x-axis sweeps the
    // policy-set size by subsampling each querier's relevant set (the
    // paper's spread comes from queriers naturally having 31..359
    // policies; subsampling gives the same curve deterministically).
    let _ = writeln!(out, "--- Figure 2: guard generation cost ---");
    let fig2_queriers: Vec<i64> = per_querier
        .iter()
        .rev()
        .take(8)
        .map(|p| p.querier)
        .collect();
    let max_policies = per_querier.last().map(|p| p.policies).unwrap_or(0);
    let mut rows = Vec::new();
    let step = (max_policies / 10).max(10);
    let mut size = step;
    while size <= max_policies {
        let mut times = Vec::new();
        for &querier in &fig2_queriers {
            let qm = QueryMetadata::new(querier, purpose);
            let relevant = relevant_policies(
                campus.policies.iter(),
                WIFI_TABLE,
                &qm,
                &campus.sieve.groups(),
            );
            if relevant.len() < size {
                continue;
            }
            let subset = &relevant[..size];
            let start = Instant::now();
            let _ = generate_guarded_expression(
                subset,
                entry,
                &cost,
                GuardSelectionStrategy::CostOptimal,
                querier,
                purpose,
                WIFI_TABLE,
            );
            times.push(start.elapsed().as_secs_f64() * 1e3);
        }
        if let Some(t) = mean(&times) {
            rows.push(vec![size.to_string(), format!("{t:.2}")]);
        }
        size += step;
    }
    let _ = writeln!(out, "{}", render(&["policies", "gen_ms"], &rows));

    // ---- Table 6: guard statistics.
    let _ = writeln!(out, "--- Table 6: policies and generated guards ---");
    let stats_row = |name: &str, xs: &[f64], pct: bool| -> Vec<String> {
        let fmt = |v: f64| {
            if pct {
                format!("{:.2}%", v * 100.0)
            } else if v.abs() < 10.0 && v.fract() != 0.0 {
                format!("{v:.2}")
            } else {
                format!("{v:.0}")
            }
        };
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        vec![
            name.to_string(),
            fmt(min),
            fmt(mean(xs).unwrap_or(0.0)),
            fmt(max),
            fmt(std_dev(xs)),
        ]
    };
    let pol: Vec<f64> = per_querier.iter().map(|p| p.policies as f64).collect();
    let gct: Vec<f64> = per_querier.iter().map(|p| p.guards as f64).collect();
    let parts: Vec<f64> = per_querier
        .iter()
        .flat_map(|p| p.partition_sizes.iter().map(|&s| s as f64))
        .collect();
    let fracs: Vec<f64> = per_querier
        .iter()
        .flat_map(|p| p.guard_fractions.iter().copied())
        .collect();
    let savings: Vec<f64> = per_querier.iter().map(|p| p.savings).collect();
    let t6 = render(
        &["metric", "min", "avg", "max", "SD"],
        &[
            stats_row("|p_uk| (policies/querier)", &pol, false),
            stats_row("|G| (guards)", &gct, false),
            stats_row("|p_Gi| (partition size)", &parts, false),
            stats_row("rho(Gi) (guard fraction)", &fracs, true),
            stats_row("savings", &savings, false),
        ],
    );
    let _ = writeln!(out, "{t6}");

    // ---- Table 7: |G| × ρ(G) buckets, measured query time (SELECT *).
    let _ = writeln!(out, "--- Table 7: eval time by #guards x cardinality ---");
    let mut campus = campus;
    let med = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let g_med = med(gct.clone());
    let rho_med = med(
        per_querier
            .iter()
            .map(|p| p.total_guard_rows / table_rows)
            .collect(),
    );
    let mut cells: [[Vec<f64>; 2]; 2] = Default::default();
    let q = minidb::SelectQuery::star_from(WIFI_TABLE);
    for pq in per_querier.iter() {
        let qm = QueryMetadata::new(pq.querier, purpose);
        let gi = usize::from(pq.guards as f64 > g_med);
        let ri = usize::from(pq.total_guard_rows / table_rows > rho_med);
        if cells[gi][ri].len() >= 12 {
            continue; // 12 queriers per bucket keeps the runtime sane
        }
        let t = sieve_bench::harness::time_enforcement(
            &mut campus.sieve,
            sieve_core::middleware::Enforcement::Sieve,
            &q,
            &qm,
            2,
        );
        if let Some(w) = t.sim_kcost {
            cells[gi][ri].push(w);
        }
    }
    let t7 = render(
        &["", "rho(G) low", "rho(G) high"],
        &[
            vec![
                "|G| low".into(),
                ms(mean(&cells[0][0])),
                ms(mean(&cells[0][1])),
            ],
            vec![
                "|G| high".into(),
                ms(mean(&cells[1][0])),
                ms(mean(&cells[1][1])),
            ],
        ],
    );
    let _ = writeln!(out, "{t7}");
    let _ = writeln!(
        out,
        "(cells: simulated kilocost of SELECT * under SIEVE, avg per bucket)"
    );

    let name = if no_merge {
        "exp1_guard_gen_no_merge"
    } else {
        "exp1_guard_gen"
    };
    emit(name, &out);
}
