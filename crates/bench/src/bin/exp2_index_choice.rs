//! Experiment 2.2 (paper Section 7.2): IndexQuery vs. IndexGuards —
//! regenerates **Figure 4**.
//!
//! Sweeps the query predicate's cardinality (by widening its time window)
//! at three guard-cardinality classes (low/medium/high) and compares the
//! cost of driving the read with the query-predicate index versus the
//! guard indexes. The paper finds IndexQuery wins at low query
//! cardinality and IndexGuards from ≈0.07 upward.

use minidb::expr::{ColumnRef, Expr};
use minidb::value::{DataType, Value};
use minidb::{Database, DbProfile, SelectQuery, TableSchema};
use sieve_bench::harness::{emit, time_enforcement, EnvConfig};
use sieve_bench::table::{mean, ms, render};
use sieve_core::cost::AccessStrategy;
use sieve_core::middleware::Enforcement;
use sieve_core::policy::{CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata};
use sieve_core::{Sieve, SieveOptions};
use std::fmt::Write as _;

fn build_db(rows: i64) -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert(
            "wifi_dataset",
            vec![
                Value::Int(i),
                Value::Int(i % 500),
                Value::Int(1000 + i % 64),
                Value::Time(((i * 173) % 86_400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index("wifi_dataset", col).unwrap();
    }
    db.analyze("wifi_dataset").unwrap();
    db
}

/// Guard class: policies for `n_owners` owners at `n_aps` APs — guard
/// cardinality grows with both.
fn policies_for(n_owners: i64, n_aps: i64) -> Vec<Policy> {
    let mut out = Vec::new();
    for o in 0..n_owners {
        for ap in 0..n_aps {
            out.push(Policy::new(
                o,
                "wifi_dataset",
                QuerierSpec::User(9_999),
                "Analytics",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Eq(Value::Int(1000 + ap)),
                )],
            ));
        }
    }
    out
}

fn main() {
    let env = EnvConfig::from_env();
    let rows = (60_000.0 * (env.scale / 0.05).max(0.1)) as i64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Experiment 2.2: IndexQuery vs IndexGuards (Figure 4; {rows} rows) ===\n"
    );

    let qm = QueryMetadata::new(9_999, "Analytics");
    // Query-cardinality sweep: ts_time window width as fraction of a day.
    let widths: [(f64, &str); 7] = [
        (0.01, "0.01"),
        (0.03, "0.03"),
        (0.05, "0.05"),
        (0.07, "0.07"),
        (0.10, "0.10"),
        (0.20, "0.20"),
        (0.40, "0.40"),
    ];
    // Guard coverage ≈ owners/500 of the table: 2.4% / 6% / 12% — the
    // low/medium/high guard-cardinality classes of Figure 4.
    let guard_classes: [(&str, i64, i64); 3] =
        [("low", 12, 2), ("mid", 30, 3), ("high", 60, 4)];

    let mut rows_out = Vec::new();
    let mut crossovers = Vec::new();
    for (frac, label) in widths {
        let window = (86_400.0 * frac) as u32;
        let qpred = Expr::Between {
            expr: Box::new(Expr::Column(ColumnRef::bare("ts_time"))),
            low: Box::new(Expr::Literal(Value::Time(8 * 3600))),
            high: Box::new(Expr::Literal(Value::Time(8 * 3600 + window))),
            negated: false,
        };
        let query = SelectQuery::star_from("wifi_dataset").filter(qpred);

        let mut iq_all = Vec::new();
        let mut ig_all = Vec::new();
        let mut auto_pick = String::new();
        for (_, owners, aps) in guard_classes {
            let run = |strategy: Option<AccessStrategy>| -> (Option<f64>, AccessStrategy) {
                let db = build_db(rows);
                let mut sieve = Sieve::new(
                    db,
                    SieveOptions {
                        timeout: Some(env.timeout),
                        ..Default::default()
                    },
                )
                .unwrap();
                sieve.options_mut().rewrite.forced_strategy = strategy;
                sieve
                    .add_policies(policies_for(owners, aps))
                    .unwrap();
                let picked = sieve
                    .rewrite(&query, &qm)
                    .map(|r| r.relations[0].strategy)
                    .unwrap_or(AccessStrategy::LinearScan);
                let t = time_enforcement(&mut sieve, Enforcement::Sieve, &query, &qm, 2);
                (t.sim_kcost, picked)
            };
            let (iq, _) = run(Some(AccessStrategy::IndexQuery));
            let (ig, _) = run(Some(AccessStrategy::IndexGuards));
            let (_, picked) = run(None);
            if let Some(v) = iq {
                iq_all.push(v);
            }
            if let Some(v) = ig {
                ig_all.push(v);
            }
            auto_pick = format!("{picked:?}");
        }
        let iq = mean(&iq_all);
        let ig = mean(&ig_all);
        if let (Some(a), Some(b)) = (iq, ig) {
            if b < a && crossovers.is_empty() {
                crossovers.push(frac);
            }
        }
        rows_out.push(vec![
            label.to_string(),
            ms(iq),
            ms(ig),
            auto_pick,
        ]);
    }

    let _ = writeln!(
        out,
        "{}",
        render(
            &["query_frac", "IndexQuery_kcost", "IndexGuards_kcost", "auto(high)"],
            &rows_out
        )
    );
    let _ = writeln!(
        out,
        "crossover: IndexGuards wins from query fraction ≈ {} (paper: ≈0.07)",
        crossovers
            .first()
            .map_or("n/a".into(), |f| format!("{f}"))
    );
    let _ = writeln!(
        out,
        "(kcost averaged over guard-cardinality classes low/mid/high, as in Figure 4)"
    );
    emit("exp2_index_choice", &out);
}
