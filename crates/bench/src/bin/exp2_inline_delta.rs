//! Experiment 2.1 (paper Section 7.2): Inline vs. the ∆ operator —
//! regenerates **Figure 3**.
//!
//! A *single fixed guard* (`wifi_ap = 1200`) carries a partition that
//! grows from a handful of policies to several hundred; at each size the
//! same query runs once with the partition inlined (`Guard&Inlining`) and
//! once routed through ∆ (`Guard&∆`). Constructing the guard directly —
//! rather than letting Algorithm 1 choose — isolates exactly the decision
//! the paper's Figure 3 studies. The paper finds the crossover at ≈120
//! policies: below it the UDF invocation overhead dominates; above it ∆'s
//! owner-keyed filtering wins.

use minidb::value::{DataType, Value};
use minidb::{Database, DbProfile, SelectQuery, TableSchema};
use sieve_bench::harness::{emit, EnvConfig};
use sieve_bench::table::{ms, render};
use sieve_core::delta::DeltaRegistry;
use sieve_core::guard::{Guard, GuardedExpression};
use sieve_core::policy::{
    CondPredicate, ObjectCondition, Policy, PolicyId, QuerierSpec,
};
use sieve_core::rewrite::{compile_relations, rewrite_query, DeltaMode, RewriteOptions};
use sieve_core::CostModel;
use std::collections::HashMap;
use std::fmt::Write as _;

fn build_db(rows: i64, owners: i64) -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert(
            "wifi_dataset",
            vec![
                Value::Int(i),
                Value::Int(i % owners),
                // Half the rows at the guarded AP.
                Value::Int(if i % 2 == 0 { 1200 } else { 1300 }),
                Value::Time(((i * 131) % 86_400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index("wifi_dataset", col).unwrap();
    }
    db.analyze("wifi_dataset").unwrap();
    db
}

/// `n` policies sharing the guarded `wifi_ap = 1200` condition, spread
/// over `owners` owners with varying time windows.
fn partition_policies(n: usize, owners: i64) -> Vec<Policy> {
    (0..n)
        .map(|i| {
            let start = ((i % 12) as u32) * 2 * 3600;
            let mut p = Policy::new(
                (i as i64) % owners,
                "wifi_dataset",
                QuerierSpec::User(9_999),
                "Analytics",
                vec![
                    ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1200))),
                    ObjectCondition::new(
                        "ts_time",
                        CondPredicate::between(
                            Value::Time(start),
                            Value::Time((start + 2 * 3600).min(86_399)),
                        ),
                    ),
                ],
            );
            p.id = i as PolicyId + 1;
            p
        })
        .collect()
}

/// Run `SELECT *` through a manually-built single-guard expression.
fn run_single_guard(
    db: &Database,
    policies: &[Policy],
    mode: DeltaMode,
    cost: &CostModel,
) -> (Option<f64>, Option<f64>) {
    let entry = db.table("wifi_dataset").unwrap();
    let guard = Guard {
        condition: ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1200))),
        policies: policies.iter().map(|p| p.id).collect(),
        est_rows: entry
            .histogram("wifi_ap")
            .map(|h| h.estimate_eq(&Value::Int(1200)))
            .unwrap_or(0.0),
    };
    let ge = GuardedExpression {
        relation: "wifi_dataset".into(),
        querier: 9_999,
        purpose: "Analytics".into(),
        guards: vec![guard],
    };
    let mut guarded = HashMap::new();
    guarded.insert("wifi_dataset".to_string(), ge);
    let by_id: HashMap<PolicyId, &Policy> = policies.iter().map(|p| (p.id, p)).collect();
    let delta = DeltaRegistry::new();
    let query = SelectQuery::star_from("wifi_dataset");
    let opts = RewriteOptions {
        delta_mode: mode,
        ..Default::default()
    };
    let compiled = match compile_relations(db, &delta, &guarded, &by_id, cost, mode) {
        Ok(c) => c,
        Err(_) => return (None, None),
    };
    let rewritten = match rewrite_query(db, &query, &compiled, cost, &opts) {
        Ok(r) => r.query,
        Err(_) => return (None, None),
    };
    // The ∆ partitions live in `delta`, which must back the installed UDF:
    // run on a clone with this registry installed.
    let mut db2 = db.clone();
    delta.install(&mut db2);
    // Warm-up, then three timed runs.
    let _ = db2.run_query(&rewritten);
    let mut sims = Vec::new();
    let mut walls = Vec::new();
    for _ in 0..3 {
        let (res, stats) = db2.run_timed(&rewritten, &Default::default());
        if res.is_err() {
            return (None, None);
        }
        sims.push(stats.simulated_cost / 1e3);
        walls.push(stats.wall_ms());
    }
    (
        sieve_bench::table::mean(&sims),
        sieve_bench::table::mean(&walls),
    )
}

fn main() {
    let env = EnvConfig::from_env();
    let rows = (40_000.0 * (env.scale / 0.05).max(0.1)) as i64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Experiment 2.1: Guard&Inlining vs Guard&Delta (Figure 3; {rows} rows, one fixed guard) ===\n"
    );

    let cost = CostModel::default();
    let mut table = Vec::new();
    let mut crossover: Option<usize> = None;
    let mut model_threshold = 0;

    for &n in &[10usize, 20, 40, 60, 80, 100, 120, 140, 160, 200, 240, 320, 400] {
        let owners = (n as i64 / 2).max(4);
        let policies = partition_policies(n, owners);
        let db = build_db(rows, owners);

        let (inline_sim, inline_wall) =
            run_single_guard(&db, &policies, DeltaMode::Never, &cost);
        let (delta_sim, delta_wall) =
            run_single_guard(&db, &policies, DeltaMode::Always, &cost);
        if crossover.is_none() {
            if let (Some(i), Some(d)) = (inline_sim, delta_sim) {
                if d < i {
                    crossover = Some(n);
                }
            }
        }
        // What the cost model itself would decide at this size.
        if !cost.prefer_delta(n, owners as usize) {
            model_threshold = n;
        }
        table.push(vec![
            n.to_string(),
            ms(inline_sim),
            ms(delta_sim),
            ms(inline_wall),
            ms(delta_wall),
        ]);
    }

    let _ = writeln!(
        out,
        "{}",
        render(
            &[
                "|P_Gi|",
                "inline_kcost",
                "delta_kcost",
                "inline_ms",
                "delta_ms"
            ],
            &table
        )
    );
    let _ = writeln!(
        out,
        "measured crossover (simulated clock): delta wins from ~{} policies",
        crossover.map_or("n/a".into(), |c| c.to_string())
    );
    let _ = writeln!(
        out,
        "cost-model crossover: last inline-preferred size ≈ {model_threshold} \
         (paper: ≈120 on MySQL)"
    );
    emit("exp2_inline_delta", &out);
}
