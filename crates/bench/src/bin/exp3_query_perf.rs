//! Experiment 3 (paper Section 7.2): query evaluation performance —
//! regenerates **Table 8** (overall) and **Tables 9/10/11** (per-profile
//! breakdowns for Q1/Q2/Q3).
//!
//! For each query template (Q1, Q2, Q3) × selectivity class (low, mid,
//! high), queriers from four profiles (Faculty, Grad, Undergrad, Staff)
//! run the query under BaselineP, BaselineI, BaselineU and SIEVE, with the
//! paper's 30 s timeout. Cells report the average warm execution; `TO`
//! marks strategies that timed out on every query of the group.

use minidb::DbProfile;
use sieve_bench::harness::{build_campus, emit, pick_queriers, time_enforcement, EnvConfig};
use sieve_bench::table::{mean, ms, render};
use sieve_core::baselines::Baseline;
use sieve_core::middleware::Enforcement;
use sieve_core::policy::QueryMetadata;
use sieve_workload::query_gen::generate_query;
use sieve_workload::{QueryClass, Selectivity, UserProfile};
use std::collections::BTreeMap;
use std::fmt::Write as _;

const MECHS: [(&str, Enforcement); 4] = [
    ("BaselineP", Enforcement::Baseline(Baseline::P)),
    ("BaselineI", Enforcement::Baseline(Baseline::I)),
    ("BaselineU", Enforcement::Baseline(Baseline::U)),
    ("SIEVE", Enforcement::Sieve),
];

const PROFILES: [UserProfile; 4] = [
    UserProfile::Faculty,
    UserProfile::Grad,
    UserProfile::Undergrad,
    UserProfile::Staff,
];

fn main() {
    let env = EnvConfig::from_env();
    let queriers_per_profile: usize = std::env::var("SIEVE_QUERIERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Experiment 3: SIEVE vs baselines (Tables 8-11; scale={}, timeout={:?}) ===\n",
        env.scale, env.timeout
    );

    let mut campus = build_campus(DbProfile::MySqlLike, &env);
    let purpose = "Analytics";

    // (mech, class, sel, profile) → per-run simulated kilocosts.
    let mut sims: BTreeMap<(String, QueryClass, usize, UserProfile), Vec<f64>> = BTreeMap::new();
    let mut walls: BTreeMap<(String, QueryClass, usize, UserProfile), Vec<f64>> = BTreeMap::new();
    let mut timeouts: BTreeMap<(String, QueryClass, usize, UserProfile), usize> = BTreeMap::new();
    let mut attempts: BTreeMap<(String, QueryClass, usize, UserProfile), usize> = BTreeMap::new();

    for profile in PROFILES {
        let queriers = pick_queriers(&campus, profile, purpose, queriers_per_profile);
        for &querier in &queriers {
            let qm = QueryMetadata::new(querier, purpose);
            for class in QueryClass::ALL {
                for (si, sel) in Selectivity::ALL.iter().enumerate() {
                    let query =
                        generate_query(&campus.dataset, class, *sel, 31 * querier as u64 + si as u64);
                    for (name, mech) in MECHS {
                        let key = (name.to_string(), class, si, profile);
                        *attempts.entry(key.clone()).or_insert(0) += 1;
                        let t = time_enforcement(&mut campus.sieve, mech, &query, &qm, 2);
                        match (t.sim_kcost, t.wall_ms) {
                            (Some(s), Some(w)) => {
                                sims.entry(key.clone()).or_default().push(s);
                                walls.entry(key).or_default().push(w);
                            }
                            _ => {
                                *timeouts.entry(key).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    let cell = |name: &str, class: QueryClass, si: usize, profiles: &[UserProfile]| -> String {
        let mut vals = Vec::new();
        let mut to = 0usize;
        let mut att = 0usize;
        for p in profiles {
            let key = (name.to_string(), class, si, *p);
            if let Some(v) = sims.get(&key) {
                vals.extend_from_slice(v);
            }
            to += timeouts.get(&key).copied().unwrap_or(0);
            att += attempts.get(&key).copied().unwrap_or(0);
        }
        match mean(&vals) {
            None if att > 0 => "TO".to_string(),
            None => "-".to_string(),
            Some(m) if to > 0 => format!("{}+", ms(Some(m))),
            Some(m) => ms(Some(m)),
        }
    };

    // ---- Table 8: overall.
    let _ = writeln!(
        out,
        "--- Table 8: overall comparison (simulated kilocost; '+' = some runs timed out) ---"
    );
    let mut rows = Vec::new();
    for class in QueryClass::ALL {
        for (si, sel) in Selectivity::ALL.iter().enumerate() {
            let mut row = vec![format!("{} {}", class.name(), sel.name())];
            for (name, _) in MECHS {
                row.push(cell(name, class, si, &PROFILES));
            }
            rows.push(row);
        }
    }
    let _ = writeln!(
        out,
        "{}",
        render(
            &["query", "BaselineP", "BaselineI", "BaselineU", "SIEVE"],
            &rows
        )
    );

    // Wall-clock variant of Table 8 for reference.
    let wall_cell = |name: &str, class: QueryClass, si: usize| -> String {
        let mut vals = Vec::new();
        for p in PROFILES {
            if let Some(v) = walls.get(&(name.to_string(), class, si, p)) {
                vals.extend_from_slice(v);
            }
        }
        ms(mean(&vals))
    };
    let _ = writeln!(out, "--- Table 8 (wall-clock ms, this machine) ---");
    let mut rows = Vec::new();
    for class in QueryClass::ALL {
        for (si, sel) in Selectivity::ALL.iter().enumerate() {
            let mut row = vec![format!("{} {}", class.name(), sel.name())];
            for (name, _) in MECHS {
                row.push(wall_cell(name, class, si));
            }
            rows.push(row);
        }
    }
    let _ = writeln!(
        out,
        "{}",
        render(
            &["query", "BaselineP", "BaselineI", "BaselineU", "SIEVE"],
            &rows
        )
    );

    // ---- Tables 9/10/11: per-profile breakdown per query class.
    for (class, tbl) in [
        (QueryClass::Q1, "Table 9"),
        (QueryClass::Q2, "Table 10"),
        (QueryClass::Q3, "Table 11"),
    ] {
        let _ = writeln!(
            out,
            "--- {tbl}: {} by querier profile (simulated kilocost) ---",
            class.name()
        );
        let mut rows = Vec::new();
        for p in PROFILES {
            for (si, sel) in Selectivity::ALL.iter().enumerate() {
                let mut row = vec![format!("{} {}", p.label(), sel.name())];
                for (name, _) in MECHS {
                    row.push(cell(name, class, si, &[p]));
                }
                rows.push(row);
            }
        }
        let _ = writeln!(
            out,
            "{}",
            render(
                &["profile", "BaselineP", "BaselineI", "BaselineU", "SIEVE"],
                &rows
            )
        );
    }

    emit("exp3_query_perf", &out);
}
