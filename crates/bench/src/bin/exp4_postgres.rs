//! Experiment 4 (paper Section 7.2): SIEVE on PostgreSQL — regenerates
//! **Figure 5**.
//!
//! Queriers with large policy sets run `SELECT *` under growing,
//! randomly-sampled cumulative policy subsets, across four strategy ×
//! optimizer-profile combinations:
//!
//! * `BaselineI(M)` — the best MySQL baseline from Experiment 3;
//! * `BaselineP(P)` — the policy-DNF baseline on the PostgreSQL-like
//!   profile (which can BitmapOr the policy probes);
//! * `SIEVE(M)` and `SIEVE(P)`.
//!
//! The paper's finding: SIEVE beats the baseline on both engines, and the
//! speedup on PostgreSQL grows with the number of policies because the
//! engine ORs many guard index scans through one in-memory bitmap.
//!
//! With the execution-backend abstraction in the tree, a fifth column
//! runs `SIEVE(P)` through the **wire-SQL backend** (`SIEVE(P,wire)`):
//! the rewritten query is rendered to text, re-parsed, and executed —
//! the exact dispatch path of a real PostgreSQL deployment. Its
//! simulated cost must match `SIEVE(P)` (the wire changes dispatch, not
//! the plan).

use minidb::{Database, DbProfile, SelectQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sieve_bench::harness::{
    build_campus, emit, queriers_with_policies, time_enforcement, EnvConfig,
};
use sieve_bench::table::{mean, ms, render};
use sieve_core::baselines::Baseline;
use sieve_core::filter::relevant_policies;
use sieve_core::middleware::Enforcement;
use sieve_core::policy::{Policy, QueryMetadata};
use sieve_core::{MinidbBackend, Sieve, SieveOptions, SqlBackend};
use sieve_workload::WIFI_TABLE;
use std::fmt::Write as _;

/// Time one enforcement run on an arbitrary execution backend.
fn run_subset_on<B: SqlBackend>(
    backend: B,
    groups: &sieve_core::GroupDirectory,
    policies: &[Policy],
    enforcement: Enforcement,
    qm: &QueryMetadata,
    env: &EnvConfig,
) -> Option<f64> {
    let mut sieve = Sieve::with_backend(
        backend,
        SieveOptions {
            timeout: Some(env.timeout),
            ..Default::default()
        },
    )
    .ok()?;
    *sieve.groups_mut() = groups.clone();
    sieve.add_policies(policies.iter().cloned()).ok()?;
    let q = SelectQuery::star_from(WIFI_TABLE);
    let t = time_enforcement(&mut sieve, enforcement, &q, qm, 2);
    t.sim_kcost
}

fn run_subset(
    base_db: &Database,
    groups: &sieve_core::GroupDirectory,
    profile: DbProfile,
    policies: &[Policy],
    enforcement: Enforcement,
    qm: &QueryMetadata,
    env: &EnvConfig,
) -> Option<f64> {
    let mut db = base_db.clone();
    db.set_profile(profile);
    run_subset_on(MinidbBackend::new(db), groups, policies, enforcement, qm, env)
}

/// `SIEVE(P)` through the wire-SQL backend (render → parse → execute).
#[cfg(feature = "wire-sql")]
fn run_subset_wire(
    base_db: &Database,
    groups: &sieve_core::GroupDirectory,
    policies: &[Policy],
    qm: &QueryMetadata,
    env: &EnvConfig,
) -> Option<f64> {
    let mut db = base_db.clone();
    db.set_profile(DbProfile::PostgresLike);
    run_subset_on(
        sieve_core::WireSqlBackend::new(db),
        groups,
        policies,
        Enforcement::Sieve,
        qm,
        env,
    )
}

#[cfg(not(feature = "wire-sql"))]
fn run_subset_wire(
    _base_db: &Database,
    _groups: &sieve_core::GroupDirectory,
    _policies: &[Policy],
    _qm: &QueryMetadata,
    _env: &EnvConfig,
) -> Option<f64> {
    None
}

fn main() {
    let env = EnvConfig::from_env();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Experiment 4: SIEVE on MySQL-like vs PostgreSQL-like (Figure 5; scale={}) ===\n",
        env.scale
    );

    let campus = build_campus(DbProfile::MySqlLike, &env);
    let purpose = "Analytics";
    // The paper picks 5 queriers with ≥300 policies; at small scales fall
    // back to whatever floor keeps ≥3 queriers.
    let mut floor = 300usize;
    let queriers = loop {
        let qs = queriers_with_policies(&campus, purpose, floor);
        if qs.len() >= 3 || floor <= 50 {
            break qs.into_iter().take(5).collect::<Vec<_>>();
        }
        floor -= 50;
    };
    let max_available = queriers.iter().map(|(_, c)| *c).min().unwrap_or(0);
    let _ = writeln!(
        out,
        "queriers: {:?} (policy floor {floor}, min available {max_available})",
        queriers.iter().map(|(q, c)| format!("{q}({c})")).collect::<Vec<_>>()
    );

    // Cumulative sizes: 10 steps from 75 (paper) scaled to what exists.
    let step = (max_available / 10).max(10);
    let sizes: Vec<usize> = (1..=10)
        .map(|i| (i * step).min(max_available))
        .filter(|&s| s >= 10)
        .collect();

    let strategies: [(&str, DbProfile, Enforcement); 4] = [
        ("BaselineI(M)", DbProfile::MySqlLike, Enforcement::Baseline(Baseline::I)),
        ("BaselineP(P)", DbProfile::PostgresLike, Enforcement::Baseline(Baseline::P)),
        ("SIEVE(M)", DbProfile::MySqlLike, Enforcement::Sieve),
        ("SIEVE(P)", DbProfile::PostgresLike, Enforcement::Sieve),
    ];

    // Snapshot engine + groups out of the middleware so the per-subset
    // runs below work from plain owned state.
    let base_db = campus.sieve.db().clone();
    let base_db = &base_db;
    let groups = campus.sieve.groups().clone();
    let mut rows_out = Vec::new();
    for &size in &sizes {
        let mut cells: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
        let mut wire_cells: Vec<f64> = Vec::new();
        for (querier, _) in &queriers {
            let qm = QueryMetadata::new(*querier, purpose);
            let relevant: Vec<&Policy> = relevant_policies(
                campus.policies.iter(),
                WIFI_TABLE,
                &qm,
                &groups,
            );
            // Three random samples per size, as in the paper.
            for sample in 0..3u64 {
                let mut rng = StdRng::seed_from_u64(97 * querier.unsigned_abs() + sample);
                let mut pool: Vec<Policy> =
                    relevant.iter().map(|p| (*p).clone()).collect();
                for i in 0..size.min(pool.len()) {
                    let j = rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                }
                let subset = &pool[..size.min(pool.len())];
                for (si, (_, profile, enforcement)) in strategies.iter().enumerate() {
                    if let Some(v) = run_subset(
                        base_db,
                        &groups,
                        *profile,
                        subset,
                        *enforcement,
                        &qm,
                        &env,
                    ) {
                        cells[si].push(v);
                    }
                }
                if let Some(v) =
                    run_subset_wire(base_db, &groups, subset, &qm, &env)
                {
                    wire_cells.push(v);
                }
            }
        }
        let mut row = vec![size.to_string()];
        for c in &cells {
            row.push(ms(mean(c)));
        }
        row.push(ms(mean(&wire_cells)));
        // Speedup of SIEVE(P) over BaselineP(P).
        let speedup = match (mean(&cells[1]), mean(&cells[3])) {
            (Some(b), Some(s)) if s > 0.0 => format!("{:.1}x", b / s),
            _ => "-".into(),
        };
        row.push(speedup);
        rows_out.push(row);
    }

    let _ = writeln!(
        out,
        "{}",
        render(
            &[
                "policies",
                "BaselineI(M)",
                "BaselineP(P)",
                "SIEVE(M)",
                "SIEVE(P)",
                "SIEVE(P,wire)",
                "PG speedup"
            ],
            &rows_out
        )
    );
    let _ = writeln!(
        out,
        "(simulated kilocost of SELECT *; PG speedup = BaselineP(P) / SIEVE(P);\n\
         paper: speedup grows with policies thanks to bitmap OR of guard scans;\n\
         SIEVE(P,wire) runs the same rewrite through the wire-SQL backend —\n\
         render → parse → execute — and must match SIEVE(P)'s simulated cost)"
    );
    emit("exp4_postgres", &out);
}
