//! Experiment 5 (paper Section 7.2): scalability on the Mall dataset —
//! regenerates **Figure 6**.
//!
//! On the PostgreSQL-like profile, shop queriers with the largest policy
//! sets run `SELECT *` under growing cumulative policy subsets; the
//! figure reports SIEVE's speedup over the baseline. The paper measures
//! the speedup growing linearly from 1.6× at 100 policies to 5.6× at
//! 1,200 policies.
//!
//! Scale the corpus with `SIEVE_MALL_SCALE` (default 0.4; 1.0 ≈ paper's
//! 2,651 customers / ~19K policies, which reaches the ~550 policies per
//! shop the paper reports; 2.0 reaches the 1,200-policy x-axis end).

use minidb::{Database, DbProfile, SelectQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sieve_bench::harness::{emit, time_enforcement, EnvConfig};
use sieve_bench::table::{mean, ms, render};
use sieve_core::baselines::Baseline;
use sieve_core::filter::relevant_policies;
use sieve_core::middleware::Enforcement;
use sieve_core::policy::{Policy, QueryMetadata};
use sieve_core::{Sieve, SieveOptions};
use sieve_workload::mall::{generate as generate_mall, MallConfig, MallDataset};
use sieve_workload::MALL_TABLE;
use std::fmt::Write as _;

fn main() {
    let env = EnvConfig::from_env();
    let mall_scale: f64 = std::env::var("SIEVE_MALL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Experiment 5: scalability on Mall, PostgreSQL-like (Figure 6; mall_scale={mall_scale}) ===\n"
    );

    let mut db = Database::new(DbProfile::PostgresLike);
    let ds = generate_mall(
        &mut db,
        &MallConfig {
            seed: 11,
            scale: mall_scale,
            shops: 35,
            days: 60,
        },
    )
    .expect("mall generation");
    let _ = writeln!(
        out,
        "mall: {} customers, {} events, {} policies ({} per shop avg)",
        ds.customers.len(),
        ds.events,
        ds.policies.len(),
        ds.policies.len() / 35
    );

    // Shop queriers ranked by relevant-policy count.
    let purpose_any = |shop: i64| {
        // Shops query for whichever purpose their grants use most; use the
        // dominant group purposes by trying each and keeping the max.
        let q = MallDataset::shop_querier(shop);
        ["Promotions", "Sales", "Lightning"]
            .into_iter()
            .map(|p| {
                let qm = QueryMetadata::new(q, p);
                (
                    relevant_policies(ds.policies.iter(), MALL_TABLE, &qm, &ds.groups).len(),
                    p,
                )
            })
            .max()
            .unwrap()
    };
    let mut shops: Vec<(usize, &str, i64)> = ds
        .shops
        .iter()
        .map(|&s| {
            let (n, p) = purpose_any(s);
            (n, p, s)
        })
        .collect();
    shops.sort_by_key(|s| std::cmp::Reverse(s.0));
    let top: Vec<(usize, &str, i64)> = shops.into_iter().take(5).collect();
    let max_avail = top.iter().map(|(n, _, _)| *n).min().unwrap_or(0);
    let _ = writeln!(
        out,
        "top shop queriers: {:?} (min available {max_avail})",
        top.iter().map(|(n, _, s)| format!("shop{s}({n})")).collect::<Vec<_>>()
    );

    let step = (max_avail / 12).max(10);
    let sizes: Vec<usize> = (1..=12)
        .map(|i| (i * step).min(max_avail))
        .filter(|&s| s >= 10)
        .collect();

    let query = SelectQuery::star_from(MALL_TABLE);
    let mut rows_out = Vec::new();
    for &size in &sizes {
        let mut base_cost = Vec::new();
        let mut sieve_cost = Vec::new();
        for &(_, purpose, shop) in &top {
            let querier = MallDataset::shop_querier(shop);
            let qm = QueryMetadata::new(querier, purpose);
            let relevant: Vec<&Policy> =
                relevant_policies(ds.policies.iter(), MALL_TABLE, &qm, &ds.groups);
            let mut rng = StdRng::seed_from_u64(13 * shop as u64 + size as u64);
            let mut pool: Vec<Policy> = relevant.iter().map(|p| (*p).clone()).collect();
            for i in 0..size.min(pool.len()) {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            let subset = &pool[..size.min(pool.len())];
            for (enforcement, sink) in [
                (Enforcement::Baseline(Baseline::P), &mut base_cost),
                (Enforcement::Sieve, &mut sieve_cost),
            ] {
                let mut sieve = Sieve::new(
                    db.clone(),
                    SieveOptions {
                        timeout: Some(env.timeout),
                        ..Default::default()
                    },
                )
                .unwrap();
                *sieve.groups_mut() = ds.groups.clone();
                sieve.add_policies(subset.iter().cloned()).unwrap();
                let t = time_enforcement(&mut sieve, enforcement, &query, &qm, 2);
                if let Some(v) = t.sim_kcost {
                    sink.push(v);
                }
            }
        }
        let speedup = match (mean(&base_cost), mean(&sieve_cost)) {
            (Some(b), Some(s)) if s > 0.0 => format!("{:.1}x", b / s),
            _ => "-".into(),
        };
        rows_out.push(vec![
            size.to_string(),
            ms(mean(&base_cost)),
            ms(mean(&sieve_cost)),
            speedup,
        ]);
    }

    let _ = writeln!(
        out,
        "{}",
        render(
            &["policies", "Baseline(P)_kcost", "SIEVE(P)_kcost", "speedup"],
            &rows_out
        )
    );
    let _ = writeln!(
        out,
        "(paper: speedup grows ~linearly, 1.6x @100 → 5.6x @1200 policies)"
    );
    emit("exp5_scalability", &out);
}
