//! Ablation study (DESIGN.md §5, not in the paper): how much each of
//! SIEVE's design choices contributes.
//!
//! * **Guard selection**: Algorithm 1 (`CostOptimal`) vs the trivially
//!   correct `OwnerOnly` baseline (one guard per owner, the strawman
//!   Section 4.1 argues against).
//! * **Candidate merging** (Theorem 1): on vs off.
//! * **Query-predicate pushdown** (Section 5.5): on vs off.
//! * **Inline/∆ choice**: cost-model `Auto` vs `Never` vs `Always`.

use minidb::DbProfile;
use sieve_bench::harness::{build_campus, emit, pick_queriers, time_enforcement, EnvConfig};
use sieve_bench::table::{mean, ms, render};
use sieve_core::guard::GuardSelectionStrategy;
use sieve_core::middleware::Enforcement;
use sieve_core::policy::QueryMetadata;
use sieve_core::rewrite::DeltaMode;
use sieve_workload::query_gen::generate_query;
use sieve_workload::{QueryClass, Selectivity, UserProfile};
use std::fmt::Write as _;

fn main() {
    let env = EnvConfig::from_env();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Ablation: contribution of SIEVE's design choices (scale={}) ===\n",
        env.scale
    );

    struct Variant {
        name: &'static str,
        selection: GuardSelectionStrategy,
        delta: DeltaMode,
        no_push: bool,
    }
    let variants = [
        Variant {
            name: "full SIEVE (Algorithm 1, auto-delta, pushdown)",
            selection: GuardSelectionStrategy::CostOptimal,
            delta: DeltaMode::Auto,
            no_push: false,
        },
        Variant {
            name: "owner-only guards",
            selection: GuardSelectionStrategy::OwnerOnly,
            delta: DeltaMode::Auto,
            no_push: false,
        },
        Variant {
            name: "no predicate pushdown",
            selection: GuardSelectionStrategy::CostOptimal,
            delta: DeltaMode::Auto,
            no_push: true,
        },
        Variant {
            name: "always inline (no delta)",
            selection: GuardSelectionStrategy::CostOptimal,
            delta: DeltaMode::Never,
            no_push: false,
        },
        Variant {
            name: "always delta",
            selection: GuardSelectionStrategy::CostOptimal,
            delta: DeltaMode::Always,
            no_push: false,
        },
    ];

    let cells: Vec<(QueryClass, Selectivity)> = vec![
        (QueryClass::Q1, Selectivity::Low),
        (QueryClass::Q1, Selectivity::High),
        (QueryClass::Q2, Selectivity::Mid),
    ];

    let mut rows_out = Vec::new();
    for v in &variants {
        let mut campus = build_campus(DbProfile::MySqlLike, &env);
        campus.sieve.options_mut().selection = v.selection;
        campus.sieve.options_mut().rewrite.delta_mode = v.delta;
        campus.sieve.options_mut().rewrite.no_predicate_pushdown = v.no_push;
        let queriers = pick_queriers(&campus, UserProfile::Faculty, "Analytics", 2);
        let mut row = vec![v.name.to_string()];
        for (class, sel) in &cells {
            let mut vals = Vec::new();
            for &querier in &queriers {
                let qm = QueryMetadata::new(querier, "Analytics");
                let q = generate_query(&campus.dataset, *class, *sel, 5 + querier as u64);
                let t = time_enforcement(&mut campus.sieve, Enforcement::Sieve, &q, &qm, 2);
                if let Some(s) = t.sim_kcost {
                    vals.push(s);
                }
            }
            row.push(ms(mean(&vals)));
        }
        rows_out.push(row);
    }

    let headers: Vec<String> = std::iter::once("variant".to_string())
        .chain(
            cells
                .iter()
                .map(|(c, s)| format!("{} {} (kcost)", c.name(), s.name())),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let _ = writeln!(out, "{}", render(&header_refs, &rows_out));

    // Merging ablation is structural (affects candidate generation), so
    // report guard counts instead of times.
    let campus = build_campus(DbProfile::MySqlLike, &env);
    let querier = pick_queriers(&campus, UserProfile::Faculty, "Analytics", 1)[0];
    let qm = QueryMetadata::new(querier, "Analytics");
    let relevant = sieve_core::filter::relevant_policies(
        campus.policies.iter(),
        sieve_workload::WIFI_TABLE,
        &qm,
        &campus.sieve.groups(),
    );
    let db = campus.sieve.db();
    let entry = db.table(sieve_workload::WIFI_TABLE).unwrap();
    let with_merge = sieve_core::guard::generate_guarded_expression(
        &relevant,
        entry,
        &sieve_core::CostModel::default(),
        GuardSelectionStrategy::CostOptimal,
        querier,
        "Analytics",
        sieve_workload::WIFI_TABLE,
    );
    let no_merge_cost = sieve_core::CostModel {
        cr: 0.0, // Theorem 1 threshold becomes 1.0: merging never fires
        ..Default::default()
    };
    let without_merge = sieve_core::guard::generate_guarded_expression(
        &relevant,
        entry,
        &no_merge_cost,
        GuardSelectionStrategy::CostOptimal,
        querier,
        "Analytics",
        sieve_workload::WIFI_TABLE,
    );
    let _ = writeln!(
        out,
        "Theorem-1 merging: {} policies → {} guards (Σρ={:.0} rows) with merging, \
         {} guards (Σρ={:.0} rows) without",
        relevant.len(),
        with_merge.guards.len(),
        with_merge.total_guard_rows(),
        without_merge.guards.len(),
        without_merge.total_guard_rows(),
    );

    emit("exp6_ablation", &out);
}
