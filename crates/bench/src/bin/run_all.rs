//! Regenerate every table and figure of the paper's evaluation in one go
//! by invoking the per-experiment binaries as child processes. Outputs
//! land in `results/`.

use std::process::Command;

const EXPERIMENTS: [&str; 6] = [
    "exp1_guard_gen",
    "exp2_inline_delta",
    "exp2_index_choice",
    "exp3_query_perf",
    "exp4_postgres",
    "exp5_scalability",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        eprintln!("==> running {name}");
        let status = Command::new(dir.join(name)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("    {name} failed: {other:?}");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        eprintln!("all experiments completed; see results/");
    } else {
        eprintln!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
