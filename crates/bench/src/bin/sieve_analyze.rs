//! `sieve_analyze` — static soundness audit over the scenario stores.
//!
//! Runs the symbolic no-widening verifier ([`sieve_core::analyze`])
//! against every enforcement point of both built-in scenarios:
//!
//! * **TIPPERS campus** (`wifi_dataset`): every non-visitor querier with
//!   at least one relevant policy, for each workload purpose, gets its
//!   guarded expression generated and checked against its allowed
//!   policy set.
//! * **Mall** (`wifi_connectivity`): every shop querier, for each mall
//!   purpose with relevant grants.
//!
//! Each scenario also runs the policy-store lints (dead policies,
//! subsumed grants) and the guard-shape lints (tautological guards,
//! unconfirmed NULL safety). Output is a deterministic JSON report per
//! scenario (`results/ANALYZE_tippers.json`, `results/ANALYZE_mall.json`)
//! plus a human summary (`results/sieve_analyze.txt`).
//!
//! Exit status is the CI contract: **nonzero iff any check is
//! `Refuted`** — a refutation means a generated rewrite would leak a
//! concrete row, and the build must fail. `Unknown` verdicts are
//! findings (reported, counted), never passes and never build failures.
//!
//! `--quick` caps the querier sweep per (scenario, purpose) so the audit
//! fits a CI step; the full run sweeps every eligible querier.

use minidb::{Database, DbProfile};
use sieve_bench::harness::{build_campus, emit, queriers_with_policies, EnvConfig};
use sieve_core::analyze::{self, AnalysisReport, CheckRecord, Finding, FindingKind, Verdict};
use sieve_core::filter::relevant_policies;
use sieve_core::policy::{Policy, PolicyId, QueryMetadata};
use sieve_core::{Sieve, SieveOptions};
use sieve_workload::mall::{generate as generate_mall, MallConfig, MallDataset};
use sieve_workload::policy_gen::PURPOSES;
use sieve_workload::{MALL_TABLE, WIFI_TABLE};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Cap on reported subsumption pairs per scenario (the scan itself says
/// when it truncates).
const MAX_OVERLAP_FINDINGS: usize = 32;

struct Config {
    quick: bool,
    env: EnvConfig,
    /// Max queriers audited per (scenario, purpose); `usize::MAX` = all.
    max_queriers: usize,
}

impl Config {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let mut env = EnvConfig::from_env();
        if quick {
            env.scale = 0.01;
            env.days = 30;
        }
        Config {
            quick,
            env,
            max_queriers: if quick { 8 } else { usize::MAX },
        }
    }
}

/// Verify one enforcement point and fold the outcome into the report.
fn check_point(
    report: &mut AnalysisReport,
    sieve: &mut Sieve,
    all_policies: &[Policy],
    by_id: &HashMap<PolicyId, &Policy>,
    relation: &str,
    qm: &QueryMetadata,
) {
    let ge = match sieve.guarded_expression(qm, relation) {
        Ok(ge) => ge,
        Err(e) => {
            // Generation refusing is itself a fail-closed outcome; record
            // it as an undecided check so the audit surfaces it.
            report.checks.push(CheckRecord {
                relation: relation.to_string(),
                querier: qm.querier,
                purpose: qm.purpose.clone(),
                guards: 0,
                policies: 0,
                verdict: Verdict::Unknown {
                    reason: format!("guard generation failed: {e}"),
                },
            });
            return;
        }
    };
    let relevant: Vec<&Policy> = {
        let groups = sieve.groups();
        relevant_policies(all_policies.iter(), relation, qm, &groups)
    };
    let verdict = analyze::verify_guarded_expression(&ge, by_id, &relevant);
    match &verdict {
        Verdict::Refuted { witness } => report.findings.push(Finding {
            kind: FindingKind::Widening,
            relation: relation.to_string(),
            policies: ge.guards.iter().flat_map(|g| g.policies.iter().copied()).collect(),
            detail: format!(
                "querier {} purpose {}: witness {}",
                qm.querier,
                qm.purpose,
                analyze::render_witness(witness)
            ),
        }),
        Verdict::Unknown { reason } => report.findings.push(Finding {
            kind: FindingKind::UnknownVerdict,
            relation: relation.to_string(),
            policies: Vec::new(),
            detail: format!("querier {} purpose {}: {reason}", qm.querier, qm.purpose),
        }),
        Verdict::Proven => {}
    }
    report.findings.extend(analyze::lint_guarded_expression(&ge, by_id));
    report.checks.push(CheckRecord {
        relation: relation.to_string(),
        querier: qm.querier,
        purpose: qm.purpose.clone(),
        guards: ge.guards.len(),
        policies: relevant.len(),
        verdict,
    });
}

/// Audit the TIPPERS campus scenario.
fn audit_tippers(cfg: &Config) -> AnalysisReport {
    let mut campus = build_campus(DbProfile::MySqlLike, &cfg.env);
    let policies = campus.policies.clone();
    let refs: Vec<&Policy> = policies.iter().collect();
    let by_id: HashMap<PolicyId, &Policy> = policies.iter().map(|p| (p.id, p)).collect();

    let mut report = AnalysisReport::new("tippers");
    report
        .findings
        .extend(analyze::lint_policies(&refs, WIFI_TABLE, MAX_OVERLAP_FINDINGS));

    for purpose in PURPOSES {
        let queriers = queriers_with_policies(&campus, purpose, 1);
        for (querier, _) in queriers.into_iter().take(cfg.max_queriers) {
            let qm = QueryMetadata::new(querier, purpose);
            check_point(
                &mut report,
                &mut campus.sieve,
                &policies,
                &by_id,
                WIFI_TABLE,
                &qm,
            );
        }
    }
    report.sort();
    report
}

/// Audit the Mall scenario.
fn audit_mall(cfg: &Config) -> AnalysisReport {
    let mut db = Database::new(DbProfile::MySqlLike);
    let ds = generate_mall(
        &mut db,
        &MallConfig {
            seed: 11,
            scale: if cfg.quick { 0.05 } else { 0.2 },
            shops: if cfg.quick { 12 } else { 35 },
            days: if cfg.quick { 20 } else { 60 },
        },
    )
    .expect("mall generation");
    let mut sieve = Sieve::new(
        db,
        SieveOptions {
            timeout: Some(cfg.env.timeout),
            ..Default::default()
        },
    )
    .expect("sieve init");
    *sieve.groups_mut() = ds.groups.clone();
    sieve
        .add_policies(ds.policies.iter().cloned())
        .expect("register policies");
    let policies = sieve.policies();
    let refs: Vec<&Policy> = policies.iter().collect();
    let by_id: HashMap<PolicyId, &Policy> = policies.iter().map(|p| (p.id, p)).collect();

    let mut report = AnalysisReport::new("mall");
    report
        .findings
        .extend(analyze::lint_policies(&refs, MALL_TABLE, MAX_OVERLAP_FINDINGS));

    for purpose in ["Promotions", "Sales", "Lightning"] {
        let mut eligible: Vec<i64> = ds
            .shops
            .iter()
            .map(|&s| MallDataset::shop_querier(s))
            .filter(|&q| {
                let qm = QueryMetadata::new(q, purpose);
                let groups = sieve.groups();
                !relevant_policies(policies.iter(), MALL_TABLE, &qm, &groups).is_empty()
            })
            .collect();
        eligible.sort_unstable();
        for querier in eligible.into_iter().take(cfg.max_queriers) {
            let qm = QueryMetadata::new(querier, purpose);
            check_point(&mut report, &mut sieve, &policies, &by_id, MALL_TABLE, &qm);
        }
    }
    report.sort();
    report
}

fn scenario_summary(out: &mut String, r: &AnalysisReport) {
    let _ = writeln!(
        out,
        "[{}] checks: {} ({} proven, {} refuted, {} unknown), findings: {}",
        r.scenario,
        r.checks.len(),
        r.proven(),
        r.refuted(),
        r.unknown(),
        r.findings.len()
    );
    for c in r.checks.iter().filter(|c| c.verdict.is_refuted()) {
        let _ = writeln!(
            out,
            "  REFUTED: querier {} purpose {} on {}: {}",
            c.querier, c.purpose, c.relation, c.verdict
        );
    }
    let mut by_kind: Vec<(&str, usize)> = Vec::new();
    for f in &r.findings {
        let tag = f.kind.tag();
        match by_kind.iter_mut().find(|(t, _)| *t == tag) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((tag, 1)),
        }
    }
    for (tag, n) in by_kind {
        let _ = writeln!(out, "  finding {tag}: {n}");
    }
}

fn main() {
    let cfg = Config::from_args();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== sieve_analyze: static soundness audit (quick={}, scale={}, days={}) ===\n",
        cfg.quick, cfg.env.scale, cfg.env.days
    );

    let tippers = audit_tippers(&cfg);
    let mall = audit_mall(&cfg);

    let _ = std::fs::create_dir_all("results");
    for r in [&tippers, &mall] {
        let path = std::path::Path::new("results").join(format!("ANALYZE_{}.json", r.scenario));
        if let Err(e) = std::fs::write(&path, r.to_json()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
        scenario_summary(&mut out, r);
    }

    let refuted = tippers.refuted() + mall.refuted();
    let _ = writeln!(
        out,
        "\n{}",
        if refuted == 0 {
            "AUDIT PASS: every no-widening check proven or reported unknown; no refutations."
                .to_string()
        } else {
            format!("AUDIT FAIL: {refuted} refuted check(s) — a rewrite admits rows outside its allowed policies.")
        }
    );
    emit("sieve_analyze", &out);

    if refuted > 0 {
        std::process::exit(1);
    }
}
