//! Shared experiment setup: build the campus/mall environments, pick
//! queriers, and time enforcement strategies the way Section 7 does.

use minidb::{Database, DbProfile};
use sieve_core::filter::relevant_policies;
use sieve_core::policy::{Policy, QueryMetadata, UserId};
use sieve_core::{Sieve, SieveOptions};
use sieve_workload::profiles::UserProfile;
use sieve_workload::tippers::{generate as generate_tippers, TippersConfig, TippersDataset};
use sieve_workload::policy_gen::{generate_policies, PolicyGenConfig};
use std::time::Duration;

/// Environment knobs read from the process environment so the same
/// binaries drive quick runs and near-paper-scale runs:
/// `SIEVE_SCALE` (default 0.05), `SIEVE_DAYS` (default 90),
/// `SIEVE_TIMEOUT_MS` (default 30000, the paper's 30 s).
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Dataset scale factor.
    pub scale: f64,
    /// Observation days.
    pub days: u32,
    /// Query timeout.
    pub timeout: Duration,
}

impl EnvConfig {
    /// Read from the environment.
    pub fn from_env() -> Self {
        let scale = std::env::var("SIEVE_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.05);
        let days = std::env::var("SIEVE_DAYS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(90);
        let timeout_ms = std::env::var("SIEVE_TIMEOUT_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(30_000u64);
        EnvConfig {
            scale,
            days,
            timeout: Duration::from_millis(timeout_ms),
        }
    }
}

/// A fully-loaded campus: SIEVE wrapping the TIPPERS database, with the
/// Section 7.1 policy corpus registered and groups wired up.
pub struct Campus {
    /// The middleware (owns the database).
    pub sieve: Sieve,
    /// Device directory and dataset metadata.
    pub dataset: TippersDataset,
    /// The full policy corpus (also registered in `sieve`).
    pub policies: Vec<Policy>,
}

/// Build the campus environment.
pub fn build_campus(profile: DbProfile, env: &EnvConfig) -> Campus {
    let mut db = Database::new(profile);
    let dataset = generate_tippers(
        &mut db,
        &TippersConfig {
            seed: 7,
            scale: env.scale,
            days: env.days,
        },
    )
    .expect("tippers generation");
    let policies = generate_policies(&dataset, &PolicyGenConfig::default());
    let mut sieve = Sieve::new(
        db,
        SieveOptions {
            timeout: Some(env.timeout),
            ..Default::default()
        },
    )
    .expect("sieve init");
    *sieve.groups_mut() = dataset.groups.clone();
    sieve
        .add_policies(policies.iter().cloned())
        .expect("register policies");
    // Re-collect with the store-assigned ids so direct guard generation
    // (Experiment 1) sees distinct policy identities.
    let policies = sieve.policies();
    Campus {
        sieve,
        dataset,
        policies,
    }
}

/// Number of policies relevant to a querier for the wifi relation.
pub fn querier_policy_count(campus: &Campus, querier: UserId, purpose: &str) -> usize {
    let qm = QueryMetadata::new(querier, purpose);
    relevant_policies(
        campus.policies.iter(),
        sieve_workload::WIFI_TABLE,
        &qm,
        &campus.sieve.groups(),
    )
    .len()
}

/// Pick `n` queriers of a profile, preferring those with the most
/// relevant policies (the paper selects queriers with ≥ a policy floor).
pub fn pick_queriers(
    campus: &Campus,
    profile: UserProfile,
    purpose: &str,
    n: usize,
) -> Vec<UserId> {
    let mut candidates: Vec<(usize, UserId)> = campus
        .dataset
        .devices_of(profile)
        .map(|d| (querier_policy_count(campus, d.id, purpose), d.id))
        .collect();
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    candidates.into_iter().take(n).map(|(_, id)| id).collect()
}

/// All non-visitor queriers with at least `min_policies` relevant
/// policies, most-covered first.
pub fn queriers_with_policies(
    campus: &Campus,
    purpose: &str,
    min_policies: usize,
) -> Vec<(UserId, usize)> {
    let mut out: Vec<(UserId, usize)> = campus
        .dataset
        .devices
        .iter()
        .filter(|d| d.profile != UserProfile::Visitor)
        .map(|d| (d.id, querier_policy_count(campus, d.id, purpose)))
        .filter(|(_, c)| *c >= min_policies)
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Result of timing one (strategy, query) pair.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Wall milliseconds (None on timeout).
    pub wall_ms: Option<f64>,
    /// Simulated cost in kilounits (None on timeout).
    pub sim_kcost: Option<f64>,
    /// Result row count (0 on timeout).
    pub rows: usize,
}

/// Run a query under an enforcement mechanism `reps` times (after one
/// warm-up run, as the paper reports warm times) and average. Generic
/// over the execution backend so the same timing loop measures the
/// in-process and wire-SQL paths (Experiment 4's backend comparison).
pub fn time_enforcement<B: sieve_core::SqlBackend>(
    sieve: &mut Sieve<B>,
    enforcement: sieve_core::middleware::Enforcement,
    query: &minidb::SelectQuery,
    qm: &QueryMetadata,
    reps: usize,
) -> Timing {
    // Warm-up (also populates the guard cache / registers ∆ partitions).
    let (first, _) = sieve.run_timed(enforcement, query, qm);
    if first.is_err() {
        return Timing {
            wall_ms: None,
            sim_kcost: None,
            rows: 0,
        };
    }
    let mut walls = Vec::with_capacity(reps);
    let mut sims = Vec::with_capacity(reps);
    let mut rows = 0usize;
    for _ in 0..reps.max(1) {
        let (res, stats) = sieve.run_timed(enforcement, query, qm);
        match res {
            Ok(r) => {
                rows = r.len();
                walls.push(stats.wall_ms());
                sims.push(stats.simulated_cost / 1e3);
            }
            Err(_) => {
                return Timing {
                    wall_ms: None,
                    sim_kcost: None,
                    rows: 0,
                }
            }
        }
    }
    Timing {
        wall_ms: crate::table::mean(&walls),
        sim_kcost: crate::table::mean(&sims),
        rows,
    }
}

/// Write experiment output both to stdout and `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.txt"));
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[saved {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> EnvConfig {
        EnvConfig {
            scale: 0.005,
            days: 30,
            timeout: Duration::from_secs(10),
        }
    }

    #[test]
    fn campus_builds_and_queriers_have_policies() {
        let campus = build_campus(DbProfile::MySqlLike, &tiny_env());
        assert!(campus.policies.len() > 100);
        let faculty = pick_queriers(&campus, UserProfile::Faculty, "Analytics", 2);
        assert!(!faculty.is_empty());
        assert!(querier_policy_count(&campus, faculty[0], "Analytics") > 0);
    }

    #[test]
    fn timing_produces_numbers() {
        let mut campus = build_campus(DbProfile::MySqlLike, &tiny_env());
        let querier = pick_queriers(&campus, UserProfile::Grad, "Analytics", 1)[0];
        let qm = QueryMetadata::new(querier, "Analytics");
        let q = minidb::SelectQuery::star_from(sieve_workload::WIFI_TABLE);
        let t = time_enforcement(
            &mut campus.sieve,
            sieve_core::middleware::Enforcement::Sieve,
            &q,
            &qm,
            2,
        );
        assert!(t.wall_ms.is_some());
        assert!(t.sim_kcost.unwrap() > 0.0);
    }
}
