//! `sieve-bench` — shared harness for the experiment binaries that
//! regenerate every table and figure of the paper's evaluation
//! (Section 7). See `src/bin/` for one binary per experiment and
//! `benches/` for the Criterion microbenchmarks.

#![warn(missing_docs)]

pub mod harness;
pub mod table;
