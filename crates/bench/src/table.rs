//! Plain-text table formatting for experiment output (the binaries print
//! the same rows/series the paper's tables and figures report).

/// Render an aligned text table.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        line.push('\n');
        line
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Format milliseconds with sensible precision, or "TO" for timeouts.
pub fn ms(v: Option<f64>) -> String {
    match v {
        None => "TO".to_string(),
        Some(x) if x >= 100.0 => format!("{x:.0}"),
        Some(x) if x >= 1.0 => format!("{x:.1}"),
        Some(x) => format!("{x:.3}"),
    }
}

/// Mean of a slice (None when empty).
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    match mean(xs) {
        Some(m) if xs.len() > 1 => {
            (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["name", "ms"],
            &[
                vec!["Q1".into(), "418".into()],
                vec!["Q2-long".into(), "9".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].trim_start().starts_with("Q2-long"));
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(None), "TO");
        assert_eq!(ms(Some(1234.5)), "1234");
        assert_eq!(ms(Some(3.25)), "3.2");
        assert_eq!(ms(Some(0.0042)), "0.004");
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-9);
    }
}
