//! Remote client for the SIEVE enforcement service.
//!
//! Mirrors the in-process handle API ([`sieve_core::Session`] /
//! [`sieve_core::Prepared`]) over the wire protocol, so the same test or
//! bench oracle runs unchanged against either: `session.execute_sql(..)`
//! returns the same `QueryResult` rows whether the session is a library
//! handle or a [`RemoteSession`] speaking frames to a server.
//!
//! A [`RemoteConnection`] owns one byte stream and serializes requests on
//! it (the protocol is strict request/response). Handles are cheap clones
//! sharing the connection behind a mutex; concurrency across sessions
//! comes from opening multiple connections, exactly as it would over TCP.

#![warn(missing_docs)]
// Fail-closed client: a protocol or server failure surfaces as a typed
// `ClientError`, never a panic in application code (see this crate's
// `clippy.toml`). Tests opt back in.
#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]

use std::fmt;
use std::io::{Read, Write};
use std::sync::{Arc, Mutex, MutexGuard};

use minidb::exec::QueryResult;
use sieve_core::policy::{QueryMetadata, UserId};
use sieve_protocol::frame::{read_frame, write_frame};
use sieve_protocol::message::{ClientMessage, ServerMessage, WireStatementId, PROTOCOL_VERSION};
use sieve_protocol::{ProtocolError, WireError};

/// A blocking byte stream a client can speak the protocol over.
pub trait Conn: Read + Write + Send + 'static {}
impl<T: Read + Write + Send + 'static> Conn for T {}

/// Client-side failure: either this end could not speak the protocol, or
/// the server answered with a typed error frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Local framing/encoding/decoding or I/O failure; the connection is
    /// no longer usable.
    Protocol(ProtocolError),
    /// The server refused or failed the request with a typed wire error;
    /// the connection remains usable unless the code says otherwise.
    Remote(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Result alias for client operations.
pub type ClientResult<T> = Result<T, ClientError>;

struct Wire {
    conn: Box<dyn Conn>,
}

impl Wire {
    fn round_trip(&mut self, msg: &ClientMessage) -> ClientResult<ServerMessage> {
        write_frame(&mut self.conn, &msg.encode())?;
        let payload = read_frame(&mut self.conn)?;
        Ok(ServerMessage::decode(&payload)?)
    }
}

/// An authenticated connection to a SIEVE server. Created by
/// [`RemoteConnection::establish`], which runs the handshake
/// (`Hello`/`HelloAck`) and authentication (`Auth`/`AuthAck`) before
/// returning. Clone freely; clones share the underlying stream.
#[derive(Clone)]
pub struct RemoteConnection {
    wire: Arc<Mutex<Wire>>,
    querier: UserId,
}

impl RemoteConnection {
    /// Handshake and authenticate over `conn`. Fails closed on version
    /// mismatch, bad token, or any unexpected reply.
    pub fn establish(conn: impl Conn, token: &str) -> ClientResult<Self> {
        let mut wire = Wire { conn: Box::new(conn) };
        match wire.round_trip(&ClientMessage::Hello { version: PROTOCOL_VERSION })? {
            ServerMessage::HelloAck { version } if version == PROTOCOL_VERSION => {}
            ServerMessage::HelloAck { version } => {
                return Err(ProtocolError::VersionMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                }
                .into())
            }
            ServerMessage::Error(e) => return Err(ClientError::Remote(e)),
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    expected: "HelloAck",
                    got: other.name(),
                }
                .into())
            }
        }
        let querier = match wire.round_trip(&ClientMessage::Auth { token: token.to_string() })? {
            ServerMessage::AuthAck { querier } => querier,
            ServerMessage::Error(e) => return Err(ClientError::Remote(e)),
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    expected: "AuthAck",
                    got: other.name(),
                }
                .into())
            }
        };
        Ok(RemoteConnection { wire: Arc::new(Mutex::new(wire)), querier })
    }

    /// The querier identity the server authenticated this connection as.
    pub fn querier(&self) -> UserId {
        self.querier
    }

    /// A session over this connection, mirroring
    /// [`sieve_core::SieveService::session`]. The metadata's querier
    /// should match [`RemoteConnection::querier`]; the server refuses
    /// requests where it does not.
    pub fn session(&self, qm: QueryMetadata) -> RemoteSession {
        RemoteSession { conn: self.clone(), qm }
    }

    /// Clean shutdown: `Goodbye`, await the server's `Goodbye`.
    pub fn close(self) -> ClientResult<()> {
        let mut wire = self.lock();
        match wire.round_trip(&ClientMessage::Goodbye)? {
            ServerMessage::Goodbye => Ok(()),
            ServerMessage::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "Goodbye",
                got: other.name(),
            }
            .into()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Wire> {
        self.wire.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn expect_rows(&self, msg: &ClientMessage) -> ClientResult<QueryResult> {
        let reply = self.lock().round_trip(msg)?;
        match reply {
            ServerMessage::Rows(rows) => Ok(rows),
            ServerMessage::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "Rows",
                got: other.name(),
            }
            .into()),
        }
    }
}

/// A per-querier remote session: metadata captured once, `execute_sql`
/// and `prepare_sql` shaped exactly like the in-process
/// [`sieve_core::Session`].
#[derive(Clone)]
pub struct RemoteSession {
    conn: RemoteConnection,
    qm: QueryMetadata,
}

impl RemoteSession {
    /// The metadata this session queries under.
    pub fn metadata(&self) -> &QueryMetadata {
        &self.qm
    }

    /// Execute SQL under SIEVE enforcement as this session's querier.
    pub fn execute_sql(&self, sql: &str) -> ClientResult<QueryResult> {
        self.conn.expect_rows(&ClientMessage::Execute {
            metadata: self.qm.clone(),
            sql: sql.to_string(),
        })
    }

    /// Prepare SQL for repeated execution; the plan lives server-side.
    pub fn prepare_sql(&self, sql: &str) -> ClientResult<RemotePrepared> {
        let reply = self.conn.lock().round_trip(&ClientMessage::Prepare {
            metadata: self.qm.clone(),
            sql: sql.to_string(),
        })?;
        match reply {
            ServerMessage::Prepared { statement } => Ok(RemotePrepared {
                conn: self.conn.clone(),
                statement,
                closed: false,
            }),
            ServerMessage::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "Prepared",
                got: other.name(),
            }
            .into()),
        }
    }
}

/// A remotely prepared statement, mirroring [`sieve_core::Prepared`]:
/// `execute` re-runs the pinned plan; dropping (or [`RemotePrepared::close`])
/// releases the server-side handle.
pub struct RemotePrepared {
    conn: RemoteConnection,
    statement: WireStatementId,
    closed: bool,
}

impl RemotePrepared {
    /// The server-issued statement handle (connection-scoped).
    pub fn statement(&self) -> WireStatementId {
        self.statement
    }

    /// Execute the prepared statement.
    pub fn execute(&self) -> ClientResult<QueryResult> {
        self.conn
            .expect_rows(&ClientMessage::ExecutePrepared { statement: self.statement })
    }

    /// Explicitly release the server-side statement.
    pub fn close(mut self) -> ClientResult<()> {
        self.closed = true;
        let reply = self
            .conn
            .lock()
            .round_trip(&ClientMessage::ClosePrepared { statement: self.statement })?;
        match reply {
            ServerMessage::Closed { .. } => Ok(()),
            ServerMessage::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "Closed",
                got: other.name(),
            }
            .into()),
        }
    }
}

impl Drop for RemotePrepared {
    fn drop(&mut self) {
        if !self.closed {
            // Best-effort release; a dead connection already freed the
            // server side when its handler exited.
            let _ = self
                .conn
                .lock()
                .round_trip(&ClientMessage::ClosePrepared { statement: self.statement });
        }
    }
}
