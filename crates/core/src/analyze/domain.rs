//! The per-column abstract domain: finite unions of intervals over the
//! engine's total `Value` order, minus excluded points, plus NULL
//! tracking.
//!
//! Soundness contract: every operation **over-approximates**
//! satisfiability. [`ValueSet::is_certainly_empty`] returns `true` only
//! when the set provably contains no `Value` (so `Proven` verdicts are
//! sound), and [`ValueSet::pick`] returns only values that are
//! *certainly* members (so witnesses are real). Any uncertainty resolves
//! toward "maybe non-empty", which downgrades a verdict to `Unknown` —
//! never to a wrong `Proven`.
//!
//! The ordering is [`Value`]'s own total `Ord` — exactly what
//! [`minidb::expr::CmpOp::apply`] compares with once NULLs are excluded,
//! so interval reasoning here matches engine comparisons bit for bit
//! (including the Int/Double numeric interleaving and the cross-type
//! rank order).

use minidb::{RangeBound, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A set of **non-null** values: disjoint ascending intervals minus a
/// finite excluded-point set. `NULL` is never a member; nullability is
/// tracked separately by [`ColState`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValueSet {
    /// Disjoint intervals, ascending. An empty list is the empty set.
    intervals: Vec<(RangeBound, RangeBound)>,
    /// Points removed from the union (sorted ascending, deduped).
    excluded: Vec<Value>,
}

/// Lower-bound comparison: `Greater` means `a` starts later (is tighter).
fn cmp_low(a: &RangeBound, b: &RangeBound) -> Ordering {
    match (a, b) {
        (RangeBound::Unbounded, RangeBound::Unbounded) => Ordering::Equal,
        (RangeBound::Unbounded, _) => Ordering::Less,
        (_, RangeBound::Unbounded) => Ordering::Greater,
        (RangeBound::Inclusive(x), RangeBound::Inclusive(y))
        | (RangeBound::Exclusive(x), RangeBound::Exclusive(y)) => x.cmp(y),
        (RangeBound::Inclusive(x), RangeBound::Exclusive(y)) => x.cmp(y).then(Ordering::Less),
        (RangeBound::Exclusive(x), RangeBound::Inclusive(y)) => x.cmp(y).then(Ordering::Greater),
    }
}

/// Upper-bound comparison: `Less` means `a` ends earlier (is tighter).
fn cmp_high(a: &RangeBound, b: &RangeBound) -> Ordering {
    match (a, b) {
        (RangeBound::Unbounded, RangeBound::Unbounded) => Ordering::Equal,
        (RangeBound::Unbounded, _) => Ordering::Greater,
        (_, RangeBound::Unbounded) => Ordering::Less,
        (RangeBound::Inclusive(x), RangeBound::Inclusive(y))
        | (RangeBound::Exclusive(x), RangeBound::Exclusive(y)) => x.cmp(y),
        (RangeBound::Inclusive(x), RangeBound::Exclusive(y)) => x.cmp(y).then(Ordering::Greater),
        (RangeBound::Exclusive(x), RangeBound::Inclusive(y)) => x.cmp(y).then(Ordering::Less),
    }
}

/// `v` satisfies the lower bound.
fn above_low(v: &Value, low: &RangeBound) -> bool {
    match low {
        RangeBound::Unbounded => true,
        RangeBound::Inclusive(b) => v >= b,
        RangeBound::Exclusive(b) => v > b,
    }
}

/// `v` satisfies the upper bound.
fn below_high(v: &Value, high: &RangeBound) -> bool {
    match high {
        RangeBound::Unbounded => true,
        RangeBound::Inclusive(b) => v <= b,
        RangeBound::Exclusive(b) => v < b,
    }
}

/// An interval is *certainly* empty when its bounds provably admit no
/// value: crossed bounds, or a touching pair with an exclusive side.
/// (An open interval between adjacent representable values is empty too,
/// but not *certainly* so — the conservative answer is "maybe".)
fn interval_certainly_empty(low: &RangeBound, high: &RangeBound) -> bool {
    let (lv, l_excl) = match low {
        RangeBound::Unbounded => return false,
        RangeBound::Inclusive(v) => (v, false),
        RangeBound::Exclusive(v) => (v, true),
    };
    let (hv, h_excl) = match high {
        RangeBound::Unbounded => return false,
        RangeBound::Inclusive(v) => (v, false),
        RangeBound::Exclusive(v) => (v, true),
    };
    match lv.cmp(hv) {
        Ordering::Greater => true,
        Ordering::Equal => l_excl || h_excl,
        Ordering::Less => false,
    }
}

/// Tighten exclusive bounds on *safely discrete* value types to their
/// inclusive neighbor: `(> t)` ≡ `(≥ t+1)` for `Time`, `Date` and `Bool`,
/// whose ranks in the engine's value order contain only themselves.
/// **Not** applied to `Int`: the order interleaves `Int` and `Double`
/// numerically (`Int(1) == Double(1.0)`), so `(Int(1), Int(2))` still
/// contains `Double(1.5)` and tightening it would be unsound.
fn tighten_interval(low: RangeBound, high: RangeBound) -> (RangeBound, RangeBound) {
    fn succ_discrete(v: &Value) -> Option<Value> {
        match v {
            Value::Time(t) => t.checked_add(1).map(Value::Time),
            Value::Date(d) => d.checked_add(1).map(Value::Date),
            Value::Bool(false) => Some(Value::Bool(true)),
            _ => None,
        }
    }
    fn pred_discrete(v: &Value) -> Option<Value> {
        match v {
            Value::Time(t) => t.checked_sub(1).map(Value::Time),
            Value::Date(d) => d.checked_sub(1).map(Value::Date),
            Value::Bool(true) => Some(Value::Bool(false)),
            _ => None,
        }
    }
    let low = match low {
        RangeBound::Exclusive(v) => match succ_discrete(&v) {
            Some(s) => RangeBound::Inclusive(s),
            None => RangeBound::Exclusive(v),
        },
        other => other,
    };
    let high = match high {
        RangeBound::Exclusive(v) => match pred_discrete(&v) {
            Some(p) => RangeBound::Inclusive(p),
            None => RangeBound::Exclusive(v),
        },
        other => other,
    };
    (low, high)
}

impl ValueSet {
    /// All non-null values.
    pub fn any() -> Self {
        ValueSet {
            intervals: vec![(RangeBound::Unbounded, RangeBound::Unbounded)],
            excluded: Vec::new(),
        }
    }

    /// The empty set.
    pub fn empty() -> Self {
        ValueSet {
            intervals: Vec::new(),
            excluded: Vec::new(),
        }
    }

    /// Finite point set; NULLs are dropped (they are never members).
    pub fn points(mut vs: Vec<Value>) -> Self {
        vs.retain(|v| !v.is_null());
        vs.sort();
        vs.dedup();
        ValueSet {
            intervals: vs
                .into_iter()
                .map(|v| (RangeBound::Inclusive(v.clone()), RangeBound::Inclusive(v)))
                .collect(),
            excluded: Vec::new(),
        }
    }

    /// One contiguous range.
    pub fn range(low: RangeBound, high: RangeBound) -> Self {
        let mut s = ValueSet {
            intervals: vec![(low, high)],
            excluded: Vec::new(),
        };
        s.normalize();
        s
    }

    /// All values except the given points.
    pub fn all_but(points: Vec<Value>) -> Self {
        let mut s = ValueSet::any();
        s.excluded = points.into_iter().filter(|v| !v.is_null()).collect();
        s.excluded.sort();
        s.excluded.dedup();
        s
    }

    /// Everything outside `[low, high]` (both bounds non-null values):
    /// the two complementary rays.
    pub fn outside(low: Value, high: Value) -> Self {
        let mut s = ValueSet {
            intervals: vec![
                (RangeBound::Unbounded, RangeBound::Exclusive(low)),
                (RangeBound::Exclusive(high), RangeBound::Unbounded),
            ],
            excluded: Vec::new(),
        };
        s.normalize();
        s
    }

    /// True iff the set imposes no constraint (every non-null value).
    pub fn is_total(&self) -> bool {
        self.excluded.is_empty()
            && matches!(
                self.intervals.as_slice(),
                [(RangeBound::Unbounded, RangeBound::Unbounded)]
            )
    }

    /// Membership (exact). `v` must be non-null; NULL is never a member.
    pub fn contains(&self, v: &Value) -> bool {
        if v.is_null() || self.excluded.contains(v) {
            return false;
        }
        self.intervals
            .iter()
            .any(|(lo, hi)| above_low(v, lo) && below_high(v, hi))
    }

    /// Intersection (exact, given the inputs' invariants hold).
    pub fn intersect(&self, other: &ValueSet) -> ValueSet {
        let mut intervals = Vec::new();
        for (alo, ahi) in &self.intervals {
            for (blo, bhi) in &other.intervals {
                let lo = if cmp_low(alo, blo) == Ordering::Less {
                    blo.clone()
                } else {
                    alo.clone()
                };
                let hi = if cmp_high(ahi, bhi) == Ordering::Greater {
                    bhi.clone()
                } else {
                    ahi.clone()
                };
                if !interval_certainly_empty(&lo, &hi) {
                    intervals.push((lo, hi));
                }
            }
        }
        let mut excluded: Vec<Value> = self
            .excluded
            .iter()
            .chain(other.excluded.iter())
            .cloned()
            .collect();
        excluded.sort();
        excluded.dedup();
        let mut out = ValueSet {
            intervals,
            excluded,
        };
        out.normalize();
        out
    }

    /// Tighten discrete exclusive bounds, drop provably empty intervals,
    /// drop excluded points outside every interval, and drop point
    /// intervals whose single value is excluded.
    fn normalize(&mut self) {
        let intervals = std::mem::take(&mut self.intervals);
        let excluded = std::mem::take(&mut self.excluded);
        self.intervals = intervals
            .into_iter()
            .map(|(lo, hi)| tighten_interval(lo, hi))
            .filter(|(lo, hi)| !interval_certainly_empty(lo, hi))
            .filter(|(lo, hi)| {
                // A single-point interval killed by an exclusion.
                if let (RangeBound::Inclusive(a), RangeBound::Inclusive(b)) = (lo, hi) {
                    if a == b && excluded.contains(a) {
                        return false;
                    }
                }
                true
            })
            .collect();
        self.excluded = excluded
            .into_iter()
            .filter(|v| {
                self.intervals
                    .iter()
                    .any(|(lo, hi)| above_low(v, lo) && below_high(v, hi))
            })
            .collect();
    }

    /// True only when the set **provably** contains no value. "False"
    /// means "maybe non-empty" — the sound direction for unsat proofs.
    pub fn is_certainly_empty(&self) -> bool {
        self.intervals
            .iter()
            .all(|(lo, hi)| interval_certainly_empty(lo, hi))
    }

    /// A value certainly in the set, preferring bound endpoints and their
    /// neighbors. `None` when no candidate passes the membership check —
    /// callers must then downgrade to `Unknown`, never fabricate.
    /// Deterministic: candidates are tried in a fixed order.
    pub fn pick(&self) -> Option<Value> {
        for (lo, hi) in &self.intervals {
            let mut candidates: Vec<Value> = Vec::new();
            match lo {
                RangeBound::Inclusive(v) => {
                    candidates.push(v.clone());
                    candidates.extend(successors(v));
                }
                RangeBound::Exclusive(v) => candidates.extend(successors(v)),
                RangeBound::Unbounded => {}
            }
            match hi {
                RangeBound::Inclusive(v) => {
                    candidates.push(v.clone());
                    candidates.extend(predecessors(v));
                }
                RangeBound::Exclusive(v) => candidates.extend(predecessors(v)),
                RangeBound::Unbounded => {}
            }
            if matches!((lo, hi), (RangeBound::Unbounded, RangeBound::Unbounded)) {
                candidates.extend(default_candidates());
            }
            // Excluded points crowd out endpoint candidates; step past
            // them (a short deterministic walk handles realistic IN/NOT IN
            // list sizes).
            for ex in &self.excluded {
                candidates.extend(successors(ex));
                candidates.extend(predecessors(ex));
            }
            for c in candidates {
                if self.contains(&c) {
                    return Some(c);
                }
            }
        }
        None
    }
}

/// A few values just above `v`, same type (checked later for membership).
fn successors(v: &Value) -> Vec<Value> {
    match v {
        Value::Int(i) => i.checked_add(1).map(Value::Int).into_iter().collect(),
        Value::Time(t) => t.checked_add(1).map(Value::Time).into_iter().collect(),
        Value::Date(d) => d.checked_add(1).map(Value::Date).into_iter().collect(),
        Value::Double(d) => {
            let step = if d.abs() > 1.0 { d.abs() * 1e-9 } else { 1e-9 };
            vec![Value::Double(d + step), Value::Double(d + 1.0)]
        }
        Value::Str(s) => vec![Value::str(format!("{s}\u{1}"))],
        Value::Bool(false) => vec![Value::Bool(true)],
        _ => Vec::new(),
    }
}

/// A few values just below `v`, same type.
fn predecessors(v: &Value) -> Vec<Value> {
    match v {
        Value::Int(i) => i.checked_sub(1).map(Value::Int).into_iter().collect(),
        Value::Time(t) => t.checked_sub(1).map(Value::Time).into_iter().collect(),
        Value::Date(d) => d.checked_sub(1).map(Value::Date).into_iter().collect(),
        Value::Double(d) => {
            let step = if d.abs() > 1.0 { d.abs() * 1e-9 } else { 1e-9 };
            vec![Value::Double(d - step), Value::Double(d - 1.0)]
        }
        Value::Str(s) => {
            let mut out = Vec::new();
            if !s.is_empty() {
                out.push(Value::str(&s[..s.len() - s.chars().next_back().map_or(0, char::len_utf8)]));
            }
            out
        }
        Value::Bool(true) => vec![Value::Bool(false)],
        _ => Vec::new(),
    }
}

/// Candidates for a fully unconstrained column.
fn default_candidates() -> Vec<Value> {
    vec![
        Value::Int(0),
        Value::Int(1),
        Value::Double(0.0),
        Value::str(""),
        Value::Bool(false),
        Value::Time(0),
        Value::Date(0),
    ]
}

/// Abstract state of one column: "the value is NULL (if `nullable`) or a
/// member of `set`". Closed under every assertion the analyzer performs,
/// because each asserted constraint has the same `{NULL?} ∪ S` shape and
/// `(N₁∪S₁) ∩ (N₂∪S₂) = (N₁∩N₂) ∪ (S₁∩S₂)` when the `Nᵢ ⊆ {NULL}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColState {
    /// Can the column still be NULL?
    pub nullable: bool,
    /// Constraint on the non-null case.
    pub set: ValueSet,
}

impl ColState {
    /// Unconstrained column.
    pub fn top() -> Self {
        ColState {
            nullable: true,
            set: ValueSet::any(),
        }
    }

    /// Certainly no satisfying value (not even NULL).
    pub fn is_certainly_empty(&self) -> bool {
        !self.nullable && self.set.is_certainly_empty()
    }

    /// A concrete value certainly satisfying this state. Prefers a
    /// non-null member (witness rows replay better); falls back to NULL
    /// when allowed.
    pub fn pick(&self) -> Option<Value> {
        match self.set.pick() {
            Some(v) => Some(v),
            None if self.nullable => Some(Value::Null),
            None => None,
        }
    }
}

/// Per-column abstract state of one conjunctive cube. `BTreeMap` keyed by
/// column name so iteration — and every report built from it — is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbstractState {
    cols: BTreeMap<String, ColState>,
}

impl AbstractState {
    /// Empty (unconstrained) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable state of a column, defaulting to unconstrained.
    pub fn col_mut(&mut self, name: &str) -> &mut ColState {
        self.cols
            .entry(name.to_string())
            .or_insert_with(ColState::top)
    }

    /// Read-only column state, if constrained.
    pub fn col(&self, name: &str) -> Option<&ColState> {
        self.cols.get(name)
    }

    /// True iff some column provably has no satisfying value.
    pub fn is_certainly_unsat(&self) -> bool {
        self.cols.values().any(ColState::is_certainly_empty)
    }

    /// A concrete assignment satisfying every column constraint, or
    /// `None` when some constrained column has no certain member.
    pub fn witness(&self) -> Option<BTreeMap<String, Value>> {
        let mut out = BTreeMap::new();
        for (name, cs) in &self.cols {
            out.insert(name.clone(), cs.pick()?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_intersection() {
        let a = ValueSet::points(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let b = ValueSet::points(vec![Value::Int(2), Value::Int(5)]);
        let i = a.intersect(&b);
        assert!(i.contains(&Value::Int(2)));
        assert!(!i.contains(&Value::Int(1)));
        assert!(!i.is_certainly_empty());
        let none = a.intersect(&ValueSet::points(vec![Value::Int(9)]));
        assert!(none.is_certainly_empty());
    }

    #[test]
    fn range_intersection_and_exclusion() {
        let a = ValueSet::range(
            RangeBound::Inclusive(Value::Int(0)),
            RangeBound::Inclusive(Value::Int(10)),
        );
        let b = ValueSet::all_but(vec![Value::Int(5)]);
        let i = a.intersect(&b);
        assert!(i.contains(&Value::Int(4)));
        assert!(!i.contains(&Value::Int(5)));
        assert!(!i.contains(&Value::Int(11)));
        // Point range killed by exclusion.
        let p = ValueSet::points(vec![Value::Int(5)]).intersect(&b);
        assert!(p.is_certainly_empty());
    }

    #[test]
    fn outside_is_two_rays() {
        let o = ValueSet::outside(Value::Int(10), Value::Int(20));
        assert!(o.contains(&Value::Int(9)));
        assert!(o.contains(&Value::Int(21)));
        assert!(!o.contains(&Value::Int(15)));
        let clipped = o.intersect(&ValueSet::range(
            RangeBound::Inclusive(Value::Int(12)),
            RangeBound::Inclusive(Value::Int(18)),
        ));
        assert!(clipped.is_certainly_empty());
    }

    #[test]
    fn pick_respects_exclusions_and_bounds() {
        let s = ValueSet::range(
            RangeBound::Exclusive(Value::Int(4)),
            RangeBound::Inclusive(Value::Int(6)),
        )
        .intersect(&ValueSet::all_but(vec![Value::Int(5)]));
        let v = s.pick().expect("pick");
        assert!(s.contains(&v), "{v:?}");
        assert_eq!(v, Value::Int(6));
    }

    #[test]
    fn time_values_order_like_engine() {
        let s = ValueSet::range(
            RangeBound::Inclusive(Value::Time(9 * 3600)),
            RangeBound::Inclusive(Value::Time(10 * 3600)),
        );
        assert!(s.contains(&Value::Time(9 * 3600 + 30)));
        assert!(!s.contains(&Value::Time(8 * 3600)));
    }

    #[test]
    fn colstate_null_handling() {
        let mut cs = ColState::top();
        cs.set = ValueSet::empty();
        assert!(!cs.is_certainly_empty(), "NULL still possible");
        assert_eq!(cs.pick(), Some(Value::Null));
        cs.nullable = false;
        assert!(cs.is_certainly_empty());
        assert_eq!(cs.pick(), None);
    }
}
