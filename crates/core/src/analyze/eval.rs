//! Lowering engine predicates to analyzable atoms, asserting atoms into
//! the abstract domain, and the concrete reference evaluator used to
//! confirm refutation witnesses.
//!
//! The engine's NULL handling is **collapsed-to-false at the leaves,
//! classical above them** (see `BoundExpr::eval_cow`): every comparison,
//! `BETWEEN` and `IN` involving a NULL tested value (or NULL
//! bounds/elements) evaluates to plain `false`, and `NOT`/`AND`/`OR`
//! combine those two-valued results classically. That makes negation-
//! normal-form lowering *exact* — there is no third truth value to lose —
//! but it also means `NOT (x BETWEEN a AND b)` is **false** for NULL `x`,
//! which the assertion rules below encode case by case.

use super::domain::{AbstractState, ColState, ValueSet};
use minidb::expr::{CmpOp, Expr};
use minidb::{RangeBound, Value};
use std::collections::BTreeMap;

/// A leaf predicate in a shape the abstract domain understands, or
/// `Opaque` for everything else (subqueries, UDFs, parameters,
/// column-to-column comparisons, qualified references). Opaque atoms are
/// never assumed anything about — they taint the cube toward `Unknown`.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `col op literal` (normalized so the column is on the left).
    Cmp {
        /// Bare column name.
        col: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal operand.
        value: Value,
    },
    /// `col [NOT] BETWEEN low AND high` with literal bounds.
    Between {
        /// Bare column name.
        col: String,
        /// Inclusive lower bound.
        low: Value,
        /// Inclusive upper bound.
        high: Value,
        /// NOT BETWEEN if true.
        negated: bool,
    },
    /// `col [NOT] IN (…)` with an all-literal list.
    InList {
        /// Bare column name.
        col: String,
        /// List elements (NULL elements kept — they never match).
        list: Vec<Value>,
        /// NOT IN if true.
        negated: bool,
    },
    /// `col IS [NOT] NULL`.
    IsNull {
        /// Bare column name.
        col: String,
        /// IS NOT NULL if true.
        negated: bool,
    },
    /// Constant `TRUE`.
    True,
    /// Constant `FALSE` (including a bare NULL literal, which the engine
    /// collapses to false in predicate position).
    False,
    /// Anything the domain cannot reason about.
    Opaque,
}

/// A possibly negated atom.
#[derive(Debug, Clone, PartialEq)]
pub struct Lit {
    /// The atom.
    pub atom: Atom,
    /// True for the atom itself, false for its (classical) negation.
    pub positive: bool,
}

/// A conjunction of literals.
pub type Cube = Vec<Lit>;

fn bare_col(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column(c) if c.table.is_none() => Some(&c.column),
        _ => None,
    }
}

fn literal(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Literal(v) => Some(v),
        _ => None,
    }
}

/// Lower one non-combinator expression to an atom. Combinators
/// (`AND`/`OR`/`NOT`) are handled by [`to_cubes`]; feeding one here
/// yields `Opaque` (sound, just imprecise).
pub fn atom_of(e: &Expr) -> Atom {
    match e {
        Expr::Literal(Value::Bool(true)) => Atom::True,
        Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null) => Atom::False,
        Expr::Cmp { op, lhs, rhs } => match (bare_col(lhs), literal(rhs), literal(lhs), bare_col(rhs)) {
            (Some(col), Some(v), _, _) => Atom::Cmp {
                col: col.to_string(),
                op: *op,
                value: v.clone(),
            },
            (_, _, Some(v), Some(col)) => Atom::Cmp {
                col: col.to_string(),
                op: op.flip(),
                value: v.clone(),
            },
            _ => Atom::Opaque,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => match (bare_col(expr), literal(low), literal(high)) {
            (Some(col), Some(lo), Some(hi)) => Atom::Between {
                col: col.to_string(),
                low: lo.clone(),
                high: hi.clone(),
                negated: *negated,
            },
            _ => Atom::Opaque,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => match bare_col(expr) {
            Some(col) if list.iter().all(|e| literal(e).is_some()) => Atom::InList {
                col: col.to_string(),
                list: list.iter().filter_map(literal).cloned().collect(),
                negated: *negated,
            },
            _ => Atom::Opaque,
        },
        Expr::IsNull { expr, negated } => match bare_col(expr) {
            Some(col) => Atom::IsNull {
                col: col.to_string(),
                negated: *negated,
            },
            _ => Atom::Opaque,
        },
        _ => Atom::Opaque,
    }
}

/// Disjunctive normal form of `e` (when `positive`) or of `¬e` (when
/// not), as cubes of engine-semantics literals. Exact because the
/// engine's combinators are classical over collapsed leaf values. Returns
/// `None` when the cube count would exceed `max` — callers report
/// `Unknown`, never truncate silently.
pub fn to_cubes(e: &Expr, positive: bool, max: usize) -> Option<Vec<Cube>> {
    fn product(lists: &[Vec<Cube>], max: usize) -> Option<Vec<Cube>> {
        let mut acc: Vec<Cube> = vec![Vec::new()];
        for list in lists {
            let mut next = Vec::new();
            for base in &acc {
                for cube in list {
                    if next.len() >= max {
                        return None;
                    }
                    let mut merged = base.clone();
                    merged.extend(cube.iter().cloned());
                    next.push(merged);
                }
            }
            acc = next;
        }
        Some(acc)
    }
    match e {
        Expr::And(parts) => {
            let children: Option<Vec<_>> =
                parts.iter().map(|p| to_cubes(p, positive, max)).collect();
            let children = children?;
            if positive {
                product(&children, max)
            } else {
                // ¬(a ∧ b) = ¬a ∨ ¬b — classical at this layer.
                let mut out = Vec::new();
                for c in children {
                    out.extend(c);
                    if out.len() > max {
                        return None;
                    }
                }
                Some(out)
            }
        }
        Expr::Or(parts) => {
            let children: Option<Vec<_>> =
                parts.iter().map(|p| to_cubes(p, positive, max)).collect();
            let children = children?;
            if positive {
                let mut out = Vec::new();
                for c in children {
                    out.extend(c);
                    if out.len() > max {
                        return None;
                    }
                }
                Some(out)
            } else {
                product(&children, max)
            }
        }
        Expr::Not(inner) => to_cubes(inner, !positive, max),
        other => {
            let atom = atom_of(other);
            match (&atom, positive) {
                (Atom::True, true) | (Atom::False, false) => Some(vec![Vec::new()]),
                (Atom::True, false) | (Atom::False, true) => Some(Vec::new()),
                _ => Some(vec![vec![Lit { atom, positive }]]),
            }
        }
    }
}

/// Result of asserting one literal into a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertOutcome {
    /// Constraint recorded exactly.
    Ok,
    /// The literal is unsatisfiable in any state (the cube is dead).
    Unsat,
    /// The literal is opaque — nothing recorded, cube is tainted.
    Opaque,
}

/// Constrain a column to be non-null and within `set`.
fn assert_non_null_in(cs: &mut ColState, set: &ValueSet) {
    cs.nullable = false;
    cs.set = cs.set.intersect(set);
}

/// Narrow the non-null case only (NULL, if still possible, satisfies the
/// literal by collapsing to false).
fn assert_null_or_in(cs: &mut ColState, set: &ValueSet) {
    cs.set = cs.set.intersect(set);
}

/// The set of non-null values satisfying `col op value`.
fn op_set(op: CmpOp, value: &Value) -> ValueSet {
    match op {
        CmpOp::Eq => ValueSet::points(vec![value.clone()]),
        CmpOp::Ne => ValueSet::all_but(vec![value.clone()]),
        CmpOp::Lt => ValueSet::range(RangeBound::Unbounded, RangeBound::Exclusive(value.clone())),
        CmpOp::Le => ValueSet::range(RangeBound::Unbounded, RangeBound::Inclusive(value.clone())),
        CmpOp::Gt => ValueSet::range(RangeBound::Exclusive(value.clone()), RangeBound::Unbounded),
        CmpOp::Ge => ValueSet::range(RangeBound::Inclusive(value.clone()), RangeBound::Unbounded),
    }
}

/// The complement of [`op_set`] within the non-null values.
fn op_complement(op: CmpOp, value: &Value) -> ValueSet {
    match op {
        CmpOp::Eq => ValueSet::all_but(vec![value.clone()]),
        CmpOp::Ne => ValueSet::points(vec![value.clone()]),
        CmpOp::Lt => op_set(CmpOp::Ge, value),
        CmpOp::Le => op_set(CmpOp::Gt, value),
        CmpOp::Gt => op_set(CmpOp::Le, value),
        CmpOp::Ge => op_set(CmpOp::Lt, value),
    }
}

/// Assert `lit` into `state`, following the engine's collapsed-NULL
/// semantics exactly. Each rule is derived from `BoundExpr::eval_cow`:
/// a *positive* leaf forces the tested column non-null; a *negative*
/// leaf is satisfied by NULL (the leaf collapses to false).
pub fn assert_lit(state: &mut AbstractState, lit: &Lit) -> AssertOutcome {
    match (&lit.atom, lit.positive) {
        (Atom::True, true) | (Atom::False, false) => AssertOutcome::Ok,
        (Atom::True, false) | (Atom::False, true) => AssertOutcome::Unsat,
        (Atom::Opaque, _) => AssertOutcome::Opaque,

        (Atom::Cmp { col, op, value }, true) => {
            if value.is_null() {
                return AssertOutcome::Unsat; // comparison vs NULL is false
            }
            assert_non_null_in(state.col_mut(col), &op_set(*op, value));
            AssertOutcome::Ok
        }
        (Atom::Cmp { col, op, value }, false) => {
            if value.is_null() {
                return AssertOutcome::Ok; // always false ⇒ negation holds
            }
            assert_null_or_in(state.col_mut(col), &op_complement(*op, value));
            AssertOutcome::Ok
        }

        (
            Atom::Between {
                col,
                low,
                high,
                negated,
            },
            positive,
        ) => {
            let bounds_null = low.is_null() || high.is_null();
            // Engine: NULL value or NULL bound ⇒ false, regardless of
            // `negated`; otherwise `inside != negated`.
            let inside = ValueSet::range(
                RangeBound::Inclusive(low.clone()),
                RangeBound::Inclusive(high.clone()),
            );
            match (positive, *negated) {
                (true, false) => {
                    if bounds_null {
                        return AssertOutcome::Unsat;
                    }
                    assert_non_null_in(state.col_mut(col), &inside);
                }
                (true, true) => {
                    if bounds_null {
                        return AssertOutcome::Unsat;
                    }
                    if low > high {
                        // Empty interval: every non-null value is outside.
                        state.col_mut(col).nullable = false;
                    } else {
                        assert_non_null_in(
                            state.col_mut(col),
                            &ValueSet::outside(low.clone(), high.clone()),
                        );
                    }
                }
                (false, false) => {
                    if bounds_null || low > high {
                        return AssertOutcome::Ok; // leaf always false
                    }
                    assert_null_or_in(
                        state.col_mut(col),
                        &ValueSet::outside(low.clone(), high.clone()),
                    );
                }
                (false, true) => {
                    if bounds_null {
                        return AssertOutcome::Ok;
                    }
                    assert_null_or_in(state.col_mut(col), &inside);
                }
            }
            AssertOutcome::Ok
        }

        (
            Atom::InList {
                col,
                list,
                negated,
            },
            positive,
        ) => {
            // NULL list elements never match (`Null == v` is false for
            // non-null v, and a NULL tested value short-circuits first).
            let members: Vec<Value> = list.iter().filter(|v| !v.is_null()).cloned().collect();
            let in_set = ValueSet::points(members.clone());
            let out_set = ValueSet::all_but(members);
            match (positive, *negated) {
                (true, false) => assert_non_null_in(state.col_mut(col), &in_set),
                (true, true) => assert_non_null_in(state.col_mut(col), &out_set),
                (false, false) => assert_null_or_in(state.col_mut(col), &out_set),
                (false, true) => assert_null_or_in(state.col_mut(col), &in_set),
            }
            AssertOutcome::Ok
        }

        (Atom::IsNull { col, negated }, positive) => {
            // `v.is_null() != negated` — exact two-valued semantics.
            let must_null = positive != *negated;
            let cs = state.col_mut(col);
            if must_null {
                if !cs.nullable {
                    return AssertOutcome::Unsat;
                }
                cs.set = ValueSet::empty();
            } else {
                cs.nullable = false;
            }
            AssertOutcome::Ok
        }
    }
}

/// Truth status of an atom relative to a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomStatus {
    /// Every state member satisfies the atom.
    MustTrue,
    /// No state member satisfies the atom.
    MustFalse,
    /// Either is possible (or the domain cannot tell).
    Undecided,
    /// The atom is opaque.
    Opaque,
}

/// Classify `atom` against `state` by testing whether asserting it (and
/// its negation) certainly empties the state. Because emptiness checks
/// under-approximate, `MustTrue`/`MustFalse` are *proofs*; `Undecided`
/// is the fallback whenever certainty is lacking.
pub fn atom_status(state: &AbstractState, atom: &Atom) -> AtomStatus {
    let mut as_true = state.clone();
    let true_possible = match assert_lit(
        &mut as_true,
        &Lit {
            atom: atom.clone(),
            positive: true,
        },
    ) {
        AssertOutcome::Ok => !as_true.is_certainly_unsat(),
        AssertOutcome::Unsat => false,
        AssertOutcome::Opaque => return AtomStatus::Opaque,
    };
    let mut as_false = state.clone();
    let false_possible = match assert_lit(
        &mut as_false,
        &Lit {
            atom: atom.clone(),
            positive: false,
        },
    ) {
        AssertOutcome::Ok => !as_false.is_certainly_unsat(),
        AssertOutcome::Unsat => false,
        AssertOutcome::Opaque => return AtomStatus::Opaque,
    };
    match (true_possible, false_possible) {
        (false, _) => AtomStatus::MustFalse,
        (true, false) => AtomStatus::MustTrue,
        (true, true) => AtomStatus::Undecided,
    }
}

/// Evaluate `e` over a column→value assignment with the engine's exact
/// collapsed-NULL semantics. Missing columns read as NULL. Returns `None`
/// when the expression contains a shape the analyzer cannot evaluate
/// (subquery, UDF, parameter, qualified reference) and the result is not
/// already forced by an evaluable sibling.
pub fn eval_concrete(e: &Expr, row: &BTreeMap<String, Value>) -> Option<bool> {
    fn value_of(e: &Expr, row: &BTreeMap<String, Value>) -> Option<Value> {
        match e {
            Expr::Literal(v) => Some(v.clone()),
            Expr::Column(c) if c.table.is_none() => {
                Some(row.get(&c.column).cloned().unwrap_or(Value::Null))
            }
            _ => None,
        }
    }
    match e {
        Expr::Literal(Value::Bool(b)) => Some(*b),
        Expr::Literal(Value::Null) => Some(false),
        Expr::Cmp { op, lhs, rhs } => {
            let a = value_of(lhs, row)?;
            let b = value_of(rhs, row)?;
            Some(op.apply(&a, &b))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = value_of(expr, row)?;
            let lo = value_of(low, row)?;
            let hi = value_of(high, row)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Some(false);
            }
            Some((v >= lo && v <= hi) != *negated)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = value_of(expr, row)?;
            if v.is_null() {
                return Some(false);
            }
            let mut found = false;
            for item in list {
                if value_of(item, row)? == v {
                    found = true;
                    break;
                }
            }
            Some(found != *negated)
        }
        Expr::IsNull { expr, negated } => {
            let v = value_of(expr, row)?;
            Some(v.is_null() != *negated)
        }
        Expr::And(parts) => {
            // Conjunction result is order-independent (absent errors): any
            // evaluable false child forces false; otherwise an opaque
            // child forces None.
            let mut opaque = false;
            for p in parts {
                match eval_concrete(p, row) {
                    Some(false) => return Some(false),
                    Some(true) => {}
                    None => opaque = true,
                }
            }
            if opaque {
                None
            } else {
                Some(true)
            }
        }
        Expr::Or(parts) => {
            let mut opaque = false;
            for p in parts {
                match eval_concrete(p, row) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => opaque = true,
                }
            }
            if opaque {
                None
            } else {
                Some(false)
            }
        }
        Expr::Not(inner) => eval_concrete(inner, row).map(|b| !b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::expr::ColumnRef;

    fn col(name: &str) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }
    fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }
    fn cmp(name: &str, op: CmpOp, v: Value) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(col(name)),
            rhs: Box::new(lit(v)),
        }
    }

    #[test]
    fn positive_cmp_forces_non_null() {
        let mut st = AbstractState::new();
        let lit = Lit {
            atom: atom_of(&cmp("owner", CmpOp::Eq, Value::Int(5))),
            positive: true,
        };
        assert_eq!(assert_lit(&mut st, &lit), AssertOutcome::Ok);
        let cs = st.col("owner").expect("constrained");
        assert!(!cs.nullable);
        assert_eq!(cs.pick(), Some(Value::Int(5)));
    }

    #[test]
    fn negative_cmp_keeps_null_open() {
        let mut st = AbstractState::new();
        let l = Lit {
            atom: atom_of(&cmp("owner", CmpOp::Eq, Value::Int(5))),
            positive: false,
        };
        assert_lit(&mut st, &l);
        let cs = st.col("owner").expect("constrained");
        assert!(cs.nullable, "NULL satisfies ¬(owner = 5) under engine semantics");
        assert!(!cs.set.contains(&Value::Int(5)));
    }

    #[test]
    fn contradictory_cmps_certainly_unsat() {
        let mut st = AbstractState::new();
        for (op, v) in [(CmpOp::Eq, 5), (CmpOp::Gt, 9)] {
            assert_lit(
                &mut st,
                &Lit {
                    atom: atom_of(&cmp("owner", op, Value::Int(v))),
                    positive: true,
                },
            );
        }
        assert!(st.is_certainly_unsat());
    }

    #[test]
    fn not_between_null_is_false() {
        // Engine: NULL NOT BETWEEN 1 AND 2 ⇒ false. So asserting the
        // positive NOT BETWEEN must exclude NULL.
        let e = Expr::Between {
            expr: Box::new(col("ts")),
            low: Box::new(lit(Value::Int(1))),
            high: Box::new(lit(Value::Int(2))),
            negated: true,
        };
        let mut st = AbstractState::new();
        assert_lit(
            &mut st,
            &Lit {
                atom: atom_of(&e),
                positive: true,
            },
        );
        assert!(!st.col("ts").expect("constrained").nullable);
        // And the concrete evaluator agrees.
        let mut row = BTreeMap::new();
        row.insert("ts".to_string(), Value::Null);
        assert_eq!(eval_concrete(&e, &row), Some(false));
    }

    #[test]
    fn dnf_of_negated_disjunction() {
        let e = Expr::Not(Box::new(Expr::or(
            cmp("a", CmpOp::Eq, Value::Int(1)),
            cmp("b", CmpOp::Eq, Value::Int(2)),
        )));
        let cubes = to_cubes(&e, true, 64).expect("within budget");
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].len(), 2);
        assert!(cubes[0].iter().all(|l| !l.positive));
    }

    #[test]
    fn concrete_eval_matches_engine_null_collapse() {
        let mut row = BTreeMap::new();
        row.insert("x".to_string(), Value::Null);
        // x = 1 → false; NOT (x = 1) → true (classical Not over collapsed leaf).
        let e = cmp("x", CmpOp::Eq, Value::Int(1));
        assert_eq!(eval_concrete(&e, &row), Some(false));
        assert_eq!(eval_concrete(&Expr::Not(Box::new(e)), &row), Some(true));
        // Missing column reads as NULL.
        let e2 = cmp("missing", CmpOp::Lt, Value::Int(10));
        assert_eq!(eval_concrete(&e2, &row), Some(false));
    }

    #[test]
    fn atom_status_classifies() {
        let mut st = AbstractState::new();
        assert_lit(
            &mut st,
            &Lit {
                atom: atom_of(&cmp("owner", CmpOp::Eq, Value::Int(5))),
                positive: true,
            },
        );
        assert_eq!(
            atom_status(&st, &atom_of(&cmp("owner", CmpOp::Eq, Value::Int(5)))),
            AtomStatus::MustTrue
        );
        assert_eq!(
            atom_status(&st, &atom_of(&cmp("owner", CmpOp::Eq, Value::Int(6)))),
            AtomStatus::MustFalse
        );
        assert_eq!(
            atom_status(&st, &atom_of(&cmp("other", CmpOp::Eq, Value::Int(1)))),
            AtomStatus::Undecided
        );
    }
}
