//! The containment check at the heart of the verifier: is every row
//! admitted by a rewritten predicate also admitted by some allowed
//! policy?
//!
//! Shape: lower the left-hand side to DNF cubes (exact — the engine's
//! combinators are classical, see [`super::eval`]), then for each cube
//! search for a satisfying assignment of `cube ∧ ¬q₁ ∧ … ∧ ¬qₙ` over the
//! abstract domain, DPLL-style: policies with a `MustFalse` literal are
//! already excluded, a policy with all literals `MustTrue` subsumes the
//! cube (unsat), and the rest branch over negated undecided literals
//! under a node budget.
//!
//! Verdicts are fail-closed in both directions:
//! * `Proven` only when **every** cube is proven unsatisfiable — and the
//!   domain's emptiness test under-approximates, so this is a real proof.
//! * `Refuted` only when a symbolic witness **replays concretely**: the
//!   reference evaluator must confirm the assignment satisfies the
//!   rewritten predicate and violates every allowed policy.
//! * Everything else — budget exhaustion, opaque predicates, a witness
//!   that fails replay — is `Unknown`, which is a finding, never a pass.

use super::domain::AbstractState;
use super::eval::{
    assert_lit, atom_status, eval_concrete, to_cubes, AssertOutcome, Atom, AtomStatus, Lit,
};
use super::report::Verdict;
use crate::policy::{policy_expression, Policy};
use minidb::expr::Expr;
use minidb::Value;
use std::collections::BTreeMap;

/// Cap on DNF cubes per lowering (left-hand side and per policy).
const MAX_CUBES: usize = 16_384;

/// Default node budget for one containment check.
pub const DEFAULT_NODE_BUDGET: usize = 50_000;

/// One disjunct of the allowed set, as a cube of literals.
#[derive(Debug, Clone)]
pub struct RhsCube {
    /// Where it came from (policy id), for reports.
    pub label: String,
    /// Conjoined literals.
    pub lits: Vec<Lit>,
    /// True when some literal is opaque. Opaque cubes are excluded from
    /// the symbolic search (sound: dropping an allowed disjunct can only
    /// cause spurious refutations, and those die at concrete replay).
    pub opaque: bool,
}

/// Lower one expression (a policy body: a conjunction, possibly with
/// nested ORs from range rendering) into RHS cubes.
pub fn rhs_cubes_of_expr(label: &str, e: &Expr) -> Vec<RhsCube> {
    match to_cubes(e, true, MAX_CUBES) {
        Some(cubes) => cubes
            .into_iter()
            .map(|lits| {
                let opaque = lits.iter().any(|l| matches!(l.atom, Atom::Opaque));
                RhsCube {
                    label: label.to_string(),
                    lits,
                    opaque,
                }
            })
            .collect(),
        // Lowering overflow: represent as a single opaque cube so the
        // check degrades to Unknown rather than ignoring the policy.
        None => vec![RhsCube {
            label: label.to_string(),
            lits: vec![Lit {
                atom: Atom::Opaque,
                positive: true,
            }],
            opaque: true,
        }],
    }
}

/// RHS cubes for a policy set (labels are policy ids).
pub fn rhs_cubes_of_policies(policies: &[&Policy]) -> Vec<RhsCube> {
    let mut out = Vec::new();
    for p in policies {
        out.extend(rhs_cubes_of_expr(&format!("policy#{}", p.id), &p.to_expr()));
    }
    out
}

/// Status of one literal (an atom with polarity) in a state.
fn lit_status(state: &AbstractState, lit: &Lit) -> AtomStatus {
    let s = atom_status(state, &lit.atom);
    if lit.positive {
        s
    } else {
        match s {
            AtomStatus::MustTrue => AtomStatus::MustFalse,
            AtomStatus::MustFalse => AtomStatus::MustTrue,
            other => other,
        }
    }
}

/// Outcome of the per-cube search.
enum CubeOutcome {
    /// `cube ∧ ¬rhs` is provably unsatisfiable.
    Unsat,
    /// A symbolic satisfying assignment (still needs concrete replay).
    Witness(BTreeMap<String, Value>),
    /// Budget exhausted or no certain witness extractable.
    Exhausted(&'static str),
}

/// DPLL-style search for a member of `state ∧ ⋀ᵢ ¬rhs[remaining[i]]`.
fn search(
    state: &AbstractState,
    remaining: &[usize],
    rhs: &[RhsCube],
    budget: &mut usize,
) -> CubeOutcome {
    if state.is_certainly_unsat() {
        return CubeOutcome::Unsat;
    }
    if *budget == 0 {
        return CubeOutcome::Exhausted("node budget exhausted");
    }
    *budget -= 1;

    // Classify the remaining policies against the current state. This
    // does not mutate the state, so a single pass is complete.
    let mut rem: Vec<usize> = Vec::with_capacity(remaining.len());
    for &i in remaining {
        let entry = &rhs[i];
        let statuses: Vec<AtomStatus> = entry.lits.iter().map(|l| lit_status(state, l)).collect();
        if statuses.contains(&AtomStatus::MustFalse) {
            continue; // ¬q already holds — discharged.
        }
        if statuses.iter().all(|s| *s == AtomStatus::MustTrue) {
            return CubeOutcome::Unsat; // state ⊆ q — nothing escapes.
        }
        rem.push(i);
    }

    let Some((&first, rest)) = rem.split_first() else {
        // Every allowed policy is excluded: any member of the state is a
        // candidate leak.
        return match state.witness() {
            Some(w) => CubeOutcome::Witness(w),
            None => CubeOutcome::Exhausted("no certain witness in non-empty state"),
        };
    };

    // Branch: ¬q = ∨ᵢ ¬lᵢ over the first undischarged policy's literals.
    let mut exhausted: Option<&'static str> = None;
    for l in &rhs[first].lits {
        match lit_status(state, l) {
            AtomStatus::MustTrue => continue, // ¬l unsat in this state.
            AtomStatus::Opaque => {
                // Cannot assert ¬l; skip the branch. Sound for Proven
                // (we prove a superset unsat via the other branches only
                // if they cover — so record as exhaustion instead).
                exhausted = Some("opaque literal in allowed policy");
                continue;
            }
            AtomStatus::MustFalse | AtomStatus::Undecided => {}
        }
        let mut narrowed = state.clone();
        let negated = Lit {
            atom: l.atom.clone(),
            positive: !l.positive,
        };
        match assert_lit(&mut narrowed, &negated) {
            AssertOutcome::Unsat => continue,
            AssertOutcome::Opaque => {
                exhausted = Some("opaque literal in allowed policy");
                continue;
            }
            AssertOutcome::Ok => {}
        }
        match search(&narrowed, rest, rhs, budget) {
            CubeOutcome::Witness(w) => return CubeOutcome::Witness(w),
            CubeOutcome::Unsat => {}
            CubeOutcome::Exhausted(r) => exhausted = Some(r),
        }
    }
    match exhausted {
        Some(r) => CubeOutcome::Exhausted(r),
        None => CubeOutcome::Unsat,
    }
}

/// Check `lhs ⇒ ⋁ allowed` under engine semantics. `confirm` is the
/// expression a refutation witness must concretely satisfy-the-left,
/// falsify-the-right against — normally `lhs` itself and the full
/// allowed-policy disjunction.
pub fn check_implication(
    lhs: &Expr,
    allowed_full: &Expr,
    rhs: &[RhsCube],
    budget: usize,
) -> Verdict {
    let Some(lhs_cubes) = to_cubes(lhs, true, MAX_CUBES) else {
        return Verdict::Unknown {
            reason: "rewritten predicate too large to normalize".to_string(),
        };
    };
    let usable: Vec<usize> = (0..rhs.len()).filter(|&i| !rhs[i].opaque).collect();
    let mut budget = budget;
    let mut unknown: Option<String> = None;

    'cubes: for cube in &lhs_cubes {
        let mut state = AbstractState::new();
        let mut cube_opaque = false;
        for l in cube {
            match assert_lit(&mut state, l) {
                AssertOutcome::Unsat => continue 'cubes,
                AssertOutcome::Opaque => cube_opaque = true,
                AssertOutcome::Ok => {}
            }
        }
        if state.is_certainly_unsat() {
            continue;
        }
        match search(&state, &usable, rhs, &mut budget) {
            CubeOutcome::Unsat => {}
            CubeOutcome::Witness(w) => {
                // Concrete replay is authoritative: the engine-faithful
                // evaluator must see the row pass the rewritten predicate
                // and fail every allowed policy.
                let leaks = eval_concrete(lhs, &w) == Some(true)
                    && eval_concrete(allowed_full, &w) == Some(false);
                if leaks {
                    return Verdict::Refuted { witness: w };
                }
                unknown.get_or_insert_with(|| {
                    if cube_opaque {
                        "opaque predicate prevents proof (witness not confirmable)".to_string()
                    } else {
                        "symbolic witness failed concrete replay".to_string()
                    }
                });
            }
            CubeOutcome::Exhausted(r) => {
                unknown.get_or_insert_with(|| r.to_string());
            }
        }
    }
    match unknown {
        Some(reason) => Verdict::Unknown { reason },
        None => Verdict::Proven,
    }
}

/// Convenience: check `lhs ⇒ ⋁ policies` for a policy set.
pub fn check_containment(lhs: &Expr, allowed: &[&Policy], budget: usize) -> Verdict {
    if allowed.is_empty() {
        // Nothing is allowed: the lhs must be unsatisfiable.
        return check_implication(lhs, &Expr::Literal(Value::Bool(false)), &[], budget);
    }
    let rhs = rhs_cubes_of_policies(allowed);
    check_implication(lhs, &policy_expression(allowed), &rhs, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CondPredicate, ObjectCondition, QuerierSpec};
    use minidb::expr::{CmpOp, ColumnRef};

    fn cmp(name: &str, op: CmpOp, v: Value) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(Expr::Column(ColumnRef::bare(name))),
            rhs: Box::new(Expr::Literal(v)),
        }
    }

    fn policy(id: u64, owner: i64, conds: Vec<ObjectCondition>) -> Policy {
        let mut p = Policy::new(owner, "wifi", QuerierSpec::User(999), "Any", conds);
        p.id = id;
        p
    }

    fn tcond(lo: u32, hi: u32) -> ObjectCondition {
        ObjectCondition {
            attr: "ts_time".to_string(),
            pred: CondPredicate::Range {
                low: RangeBound::Inclusive(Value::Time(lo)),
                high: RangeBound::Inclusive(Value::Time(hi)),
            },
        }
    }

    use minidb::RangeBound;

    #[test]
    fn exact_guard_is_proven() {
        let p = policy(1, 5, vec![tcond(9 * 3600, 10 * 3600)]);
        let lhs = Expr::and(cmp("owner", CmpOp::Eq, Value::Int(5)), p.to_expr());
        assert_eq!(check_containment(&lhs, &[&p], DEFAULT_NODE_BUDGET), Verdict::Proven);
    }

    #[test]
    fn widened_range_is_refuted_with_replaying_witness() {
        let p = policy(1, 5, vec![tcond(9 * 3600, 10 * 3600)]);
        // A buggy rewrite that forgot the time bound entirely.
        let lhs = cmp("owner", CmpOp::Eq, Value::Int(5));
        let v = check_containment(&lhs, &[&p], DEFAULT_NODE_BUDGET);
        let Verdict::Refuted { witness } = v else {
            panic!("expected refutation, got {v:?}");
        };
        assert_eq!(eval_concrete(&lhs, &witness), Some(true));
        assert_eq!(eval_concrete(&p.to_expr(), &witness), Some(false));
    }

    #[test]
    fn foreign_policy_in_union_is_refuted() {
        let mine = policy(1, 5, vec![tcond(9 * 3600, 10 * 3600)]);
        let theirs = policy(2, 5, vec![tcond(0, 24 * 3600 - 1)]);
        // Widened lhs includes the foreign (all-day) grant.
        let lhs = Expr::any(vec![mine.to_expr(), theirs.to_expr()]);
        let v = check_containment(&lhs, &[&mine], DEFAULT_NODE_BUDGET);
        assert!(matches!(v, Verdict::Refuted { .. }), "got {v:?}");
    }

    #[test]
    fn union_against_itself_is_proven() {
        let a = policy(1, 5, vec![tcond(9 * 3600, 10 * 3600)]);
        let b = policy(2, 7, vec![tcond(11 * 3600, 12 * 3600)]);
        let lhs = Expr::any(vec![a.to_expr(), b.to_expr()]);
        assert_eq!(
            check_containment(&lhs, &[&a, &b], DEFAULT_NODE_BUDGET),
            Verdict::Proven
        );
    }

    #[test]
    fn split_ranges_covering_whole_are_proven() {
        // lhs admits owner 5 all day; allowed policies cover the day in
        // two touching halves — requires real case analysis, not just
        // per-policy subsumption.
        let a = policy(1, 5, vec![tcond(0, 12 * 3600)]);
        let b = policy(2, 5, vec![tcond(12 * 3600 + 1, 86_399)]);
        let lhs = Expr::and(
            cmp("owner", CmpOp::Eq, Value::Int(5)),
            Expr::Between {
                expr: Box::new(Expr::Column(ColumnRef::bare("ts_time"))),
                low: Box::new(Expr::Literal(Value::Time(0))),
                high: Box::new(Expr::Literal(Value::Time(86_399))),
                negated: false,
            },
        );
        assert_eq!(
            check_containment(&lhs, &[&a, &b], DEFAULT_NODE_BUDGET),
            Verdict::Proven
        );
    }

    #[test]
    fn gap_between_ranges_is_refuted() {
        let a = policy(1, 5, vec![tcond(0, 12 * 3600)]);
        let b = policy(2, 5, vec![tcond(14 * 3600, 86_399)]);
        let lhs = cmp("owner", CmpOp::Eq, Value::Int(5));
        let v = check_containment(&lhs, &[&a, &b], DEFAULT_NODE_BUDGET);
        let Verdict::Refuted { witness } = v else {
            panic!("expected refutation, got {v:?}");
        };
        // The witness must land in the uncovered 12:00–14:00 gap (or be
        // NULL-adjacent) and replay.
        assert_eq!(eval_concrete(&lhs, &witness), Some(true));
        assert_eq!(
            eval_concrete(&Expr::any(vec![a.to_expr(), b.to_expr()]), &witness),
            Some(false)
        );
    }

    #[test]
    fn empty_allowed_set_requires_unsat_lhs() {
        let lhs = Expr::Literal(Value::Bool(false));
        assert_eq!(check_containment(&lhs, &[], DEFAULT_NODE_BUDGET), Verdict::Proven);
        let v = check_containment(
            &cmp("owner", CmpOp::Eq, Value::Int(5)),
            &[],
            DEFAULT_NODE_BUDGET,
        );
        assert!(matches!(v, Verdict::Refuted { .. }), "got {v:?}");
    }

    #[test]
    fn opaque_lhs_is_unknown_not_proven() {
        let lhs = Expr::and(
            cmp("owner", CmpOp::Eq, Value::Int(5)),
            Expr::Udf {
                name: "mystery".to_string(),
                args: vec![],
            },
        );
        let p = policy(1, 6, vec![]);
        let v = check_containment(&lhs, &[&p], DEFAULT_NODE_BUDGET);
        assert!(matches!(v, Verdict::Unknown { .. }), "got {v:?}");
    }
}
