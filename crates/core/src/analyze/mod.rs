//! Static soundness verification for the policy→guard→rewrite pipeline.
//!
//! The enforcement path promises *no widening*: a rewritten query must
//! never admit a row outside the union of the querier's allowed
//! policies. The guard generator (candidate merging + set cover) and the
//! fragment compiler (inline vs ∆, predicate pushdown) each preserve
//! that invariant by construction — this module **checks** it, per
//! generated artifact, with a symbolic proof:
//!
//! ```text
//! rewritten_predicate ⇒ ⋁ (allow policies)
//! ```
//!
//! over the engine's exact collapsed-NULL semantics (see [`eval`]), an
//! interval/point abstract domain per column (see [`domain`]), and a
//! budgeted DPLL-style search (see [`implication`]). Verdicts are
//! three-valued and fail-closed:
//!
//! * [`Verdict::Proven`] — a real proof (emptiness under-approximates).
//! * [`Verdict::Refuted`] — comes with a concrete witness row that
//!   **replays** through the reference evaluator: it passes the
//!   rewritten predicate and violates every allowed policy.
//! * [`Verdict::Unknown`] — anything undecided. A finding, never a pass.
//!
//! On top of the core check sit store lints ([`lint_policies`]: dead
//! policies, subsumed grants), guard-shape lints
//! ([`lint_guarded_expression`]: tautological guards, unverifiable NULL
//! safety, dangling partition ids) and the deny interaction check
//! ([`allow_shadowed_by_deny`]). The service wires the verifier into
//! every cold guard generation behind `SieveOptions::verify_rewrites`,
//! and the `sieve_analyze` binary audits whole scenario stores.

pub mod domain;
pub mod eval;
pub mod implication;
pub mod report;

pub use implication::{check_containment, check_implication, DEFAULT_NODE_BUDGET};
pub use report::{render_witness, AnalysisReport, CheckRecord, Finding, FindingKind, Verdict};

use crate::delta::DELTA_UDF;
use crate::guard::GuardedExpression;
use crate::policy::{ObjectCondition, Policy, PolicyId};
use crate::rewrite::GuardFragment;
use domain::AbstractState;
use eval::{assert_lit, atom_of, to_cubes, AssertOutcome, Atom};
use minidb::expr::Expr;
use std::collections::HashMap;

/// Verify the no-widening invariant for a guarded expression: the full
/// inline expression `⋁ᵢ (oc_gᵢ ∧ ⋁ OC_p)` must imply the allowed-policy
/// disjunction. This is the generation-time check — it covers every
/// rewrite built from the expression, because the rewriter only ever
/// *conjoins* further predicates (pushdown narrows, never widens).
pub fn verify_guarded_expression(
    ge: &GuardedExpression,
    by_id: &HashMap<PolicyId, &Policy>,
    allowed: &[&Policy],
) -> Verdict {
    for g in &ge.guards {
        if g.policies.iter().any(|id| !by_id.contains_key(id)) {
            return Verdict::Unknown {
                reason: "guard partition references a policy missing from the store".to_string(),
            };
        }
    }
    check_containment(&ge.to_expr(by_id), allowed, DEFAULT_NODE_BUDGET)
}

/// Verify a compiled guard fragment. Inline branches are checked as
/// compiled; `delta(key, …)` partition calls are resolved to the policy
/// DNF of the corresponding guard's partition (that is exactly the set
/// the ∆ operator evaluates per tuple), so the check covers both
/// compilation strategies.
pub fn verify_fragment(
    fragment: &GuardFragment,
    ge: &GuardedExpression,
    by_id: &HashMap<PolicyId, &Policy>,
    allowed: &[&Policy],
) -> Verdict {
    if fragment.branches.len() != ge.guards.len() {
        return Verdict::Unknown {
            reason: format!(
                "fragment has {} branches for {} guards",
                fragment.branches.len(),
                ge.guards.len()
            ),
        };
    }
    let mut branches = Vec::with_capacity(fragment.branches.len());
    for (branch, guard) in fragment.branches.iter().zip(&ge.guards) {
        let partition = match &branch.partition {
            Expr::Udf { name, .. } if name == DELTA_UDF => {
                if guard.policies.iter().any(|id| !by_id.contains_key(id)) {
                    return Verdict::Unknown {
                        reason: "∆ partition references a policy missing from the store"
                            .to_string(),
                    };
                }
                Expr::any(
                    guard
                        .policies
                        .iter()
                        .filter_map(|id| by_id.get(id))
                        .map(|p| p.to_expr())
                        .collect(),
                )
            }
            other => other.clone(),
        };
        branches.push(Expr::and(branch.condition.clone(), partition));
    }
    check_containment(&Expr::any(branches), allowed, DEFAULT_NODE_BUDGET)
}

/// True when the expression provably admits no row under engine
/// semantics (used for the dead-policy lint). Conservative: opaque
/// shapes and undecided cubes count as "maybe satisfiable".
fn expr_certainly_unsat(e: &Expr) -> bool {
    let Some(cubes) = to_cubes(e, true, 4096) else {
        return false;
    };
    cubes.iter().all(|cube| {
        let mut state = AbstractState::new();
        for l in cube {
            match assert_lit(&mut state, l) {
                AssertOutcome::Unsat => return true,
                AssertOutcome::Opaque => return false,
                AssertOutcome::Ok => {}
            }
        }
        state.is_certainly_unsat()
    })
}

/// Store lints for one relation's policy set: dead policies (object
/// conditions unsatisfiable — the grant can never produce a row) and
/// subsumed grants (one policy's rows a subset of a same-querier,
/// purpose-compatible sibling's — legal, but set cover pays for it).
/// Output is deterministic; the subsumption scan is capped at `max_pairs`
/// findings and says so when it truncates.
pub fn lint_policies(policies: &[&Policy], relation: &str, max_pairs: usize) -> Vec<Finding> {
    let mut findings = Vec::new();
    for p in policies {
        if expr_certainly_unsat(&p.to_expr()) {
            findings.push(Finding {
                kind: FindingKind::DeadPolicy,
                relation: relation.to_string(),
                policies: vec![p.id],
                detail: format!(
                    "policy#{} object conditions are unsatisfiable; it can never grant a row",
                    p.id
                ),
            });
        }
    }
    let mut pairs = 0usize;
    let mut truncated = false;
    for (i, p) in policies.iter().enumerate() {
        for q in policies.iter().skip(i + 1) {
            let (small, big) = if p.id <= q.id { (p, q) } else { (q, p) };
            if small.querier != big.querier
                || small.owner != big.owner
                || !(small.purpose_matches(&big.purpose) || big.purpose_matches(&small.purpose))
            {
                continue;
            }
            let subsumed = check_containment(&small.to_expr(), &[big], DEFAULT_NODE_BUDGET)
                .is_proven();
            if subsumed {
                if pairs >= max_pairs {
                    truncated = true;
                    continue;
                }
                pairs += 1;
                findings.push(Finding {
                    kind: FindingKind::OverlappingPolicies,
                    relation: relation.to_string(),
                    policies: vec![small.id, big.id],
                    detail: format!(
                        "policy#{} grants a subset of policy#{} (same querier/purpose); \
                         set cover pays for both",
                        small.id, big.id
                    ),
                });
            }
        }
    }
    if truncated {
        findings.push(Finding {
            kind: FindingKind::OverlappingPolicies,
            relation: relation.to_string(),
            policies: Vec::new(),
            detail: format!("subsumption scan truncated at {max_pairs} pairs"),
        });
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Guard-shape lints for one generated expression: tautological guard
/// conditions (no narrowing — the index probe reads the whole relation)
/// and guards whose NULL safety the analyzer cannot confirm (opaque
/// condition shapes, or partition policies with derived/subquery
/// conditions — any exact-probe elision resting on those predicates being
/// non-NULL is unverified).
pub fn lint_guarded_expression(
    ge: &GuardedExpression,
    by_id: &HashMap<PolicyId, &Policy>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, g) in ge.guards.iter().enumerate() {
        let cond = g.condition.to_expr();
        match atom_of(&cond) {
            Atom::Opaque => {
                // Guard conditions that are conjunctions (exclusive-bound
                // ranges render as two comparisons) still lower cube-wise.
                let analyzable = to_cubes(&cond, true, 64)
                    .map(|cubes| {
                        cubes
                            .iter()
                            .flatten()
                            .all(|l| !matches!(l.atom, Atom::Opaque))
                    })
                    .unwrap_or(false);
                if !analyzable {
                    findings.push(Finding {
                        kind: FindingKind::NullSafetyUnconfirmed,
                        relation: ge.relation.clone(),
                        policies: g.policies.clone(),
                        detail: format!(
                            "guard {i} condition on `{}` is opaque to the analyzer; \
                             NULL behavior unverified",
                            g.condition.attr
                        ),
                    });
                }
            }
            atom => {
                let mut state = AbstractState::new();
                let outcome = assert_lit(
                    &mut state,
                    &eval::Lit {
                        atom,
                        positive: true,
                    },
                );
                if outcome == AssertOutcome::Ok {
                    if let Some(cs) = state.col(&g.condition.attr) {
                        if cs.set.is_total() {
                            findings.push(Finding {
                                kind: FindingKind::TautologicalGuard,
                                relation: ge.relation.clone(),
                                policies: g.policies.clone(),
                                detail: format!(
                                    "guard {i} condition on `{}` matches every non-null value; \
                                     the index probe degenerates to a scan",
                                    g.condition.attr
                                ),
                            });
                        }
                    }
                }
            }
        }
        for id in &g.policies {
            match by_id.get(id) {
                None => findings.push(Finding {
                    kind: FindingKind::NullSafetyUnconfirmed,
                    relation: ge.relation.clone(),
                    policies: vec![*id],
                    detail: format!(
                        "guard {i} partition references policy#{id} missing from the store; \
                         ∆ evaluation fails closed but the proof cannot cover it"
                    ),
                }),
                Some(p) => {
                    if crate::visitor::contains_subquery(&p.to_expr()) {
                        findings.push(Finding {
                            kind: FindingKind::NullSafetyUnconfirmed,
                            relation: ge.relation.clone(),
                            policies: vec![*id],
                            detail: format!(
                                "policy#{id} in guard {i} carries a derived (subquery) \
                                 condition; NULL safety of the partition filter is unverified"
                            ),
                        });
                    }
                }
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Is an allow policy entirely cancelled by a deny condition set? Checks
/// `OC_allow ⇒ OC_deny`: when proven, every row the allow grants is also
/// denied, and (under deny-overrides-allow factoring, see
/// [`crate::deny`]) the allow contributes nothing.
pub fn allow_shadowed_by_deny(allow: &Policy, deny_conditions: &[ObjectCondition]) -> Verdict {
    let deny_expr = Expr::all(deny_conditions.iter().map(|c| c.to_expr()).collect());
    let rhs = implication::rhs_cubes_of_expr("deny", &deny_expr);
    check_implication(&allow.to_expr(), &deny_expr, &rhs, DEFAULT_NODE_BUDGET)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::guard::{generate_guarded_expression, GuardSelectionStrategy};
    use crate::policy::{CondPredicate, QuerierSpec};
    use minidb::value::DataType;
    use minidb::{Database, DbProfile, TableSchema, Value};

    fn wifi_db(rows: i64, owners: i64) -> Database {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        ))
        .unwrap();
        for i in 0..rows {
            db.insert(
                "wifi_dataset",
                vec![
                    Value::Int(i),
                    Value::Int(i % owners),
                    Value::Int(1000 + i % 16),
                    Value::Time(((i * 127) % 86400) as u32),
                ],
            )
            .unwrap();
        }
        for col in ["owner", "wifi_ap", "ts_time"] {
            db.create_index("wifi_dataset", col).unwrap();
        }
        db.analyze("wifi_dataset").unwrap();
        db
    }

    fn mk_policy(id: PolicyId, owner: i64, conds: Vec<ObjectCondition>) -> Policy {
        let mut p = Policy::new(owner, "wifi_dataset", QuerierSpec::User(9999), "Any", conds);
        p.id = id;
        p
    }

    fn by_id(policies: &[Policy]) -> HashMap<PolicyId, &Policy> {
        policies.iter().map(|p| (p.id, p)).collect()
    }

    fn time_cond(lo: u32, hi: u32) -> ObjectCondition {
        ObjectCondition::new(
            "ts_time",
            CondPredicate::Range {
                low: minidb::RangeBound::Inclusive(Value::Time(lo)),
                high: minidb::RangeBound::Inclusive(Value::Time(hi)),
            },
        )
    }

    #[test]
    fn generated_expression_is_proven() {
        let db = wifi_db(2000, 40);
        let policies: Vec<Policy> = (0..24)
            .map(|i| {
                mk_policy(
                    i,
                    (i % 6) as i64,
                    vec![time_cond(8 * 3600 + (i as u32 % 4) * 900, 18 * 3600)],
                )
            })
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let entry = db.table("wifi_dataset").expect("table");
        let ge = generate_guarded_expression(
            &refs,
            entry,
            &CostModel::default(),
            GuardSelectionStrategy::CostOptimal,
            999,
            "Any",
            "wifi_dataset",
        );
        let map = by_id(&policies);
        assert_eq!(verify_guarded_expression(&ge, &map, &refs), Verdict::Proven);
    }

    #[test]
    fn seeded_widening_is_refuted_with_witness() {
        let db = wifi_db(2000, 40);
        // The querier's grant: owner 3, morning only.
        let mine = mk_policy(1, 3, vec![time_cond(9 * 3600, 10 * 3600)]);
        // A different querier's grant over the same owner, all day — NOT
        // in the allowed set.
        let theirs = mk_policy(2, 3, vec![time_cond(0, 86_399)]);
        let allowed = vec![&mine];
        let entry = db.table("wifi_dataset").expect("table");
        let mut ge = generate_guarded_expression(
            &allowed,
            entry,
            &CostModel::default(),
            GuardSelectionStrategy::CostOptimal,
            999,
            "Any",
            "wifi_dataset",
        );
        // Seeded widening bug: a guard partition picks up the foreign
        // policy, exactly the mistake a broken set-cover merge would make.
        ge.guards[0].policies.push(theirs.id);
        let policies = vec![mine.clone(), theirs.clone()];
        let map = by_id(&policies);
        let v = verify_guarded_expression(&ge, &map, &[&mine]);
        let Verdict::Refuted { witness } = v else {
            panic!("expected refutation, got {v:?}");
        };
        // The witness replays: inside the widened expression, outside the
        // allowed set.
        assert_eq!(eval::eval_concrete(&ge.to_expr(&map), &witness), Some(true));
        assert_eq!(eval::eval_concrete(&mine.to_expr(), &witness), Some(false));
    }

    #[test]
    fn dead_policy_lint_fires() {
        let dead = mk_policy(
            7,
            1,
            vec![
                ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(5))),
                ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(9))),
            ],
        );
        let live = mk_policy(8, 1, vec![]);
        let fs = lint_policies(&[&dead, &live], "wifi_dataset", 16);
        assert!(fs
            .iter()
            .any(|f| f.kind == FindingKind::DeadPolicy && f.policies == vec![7]));
        assert!(!fs
            .iter()
            .any(|f| f.kind == FindingKind::DeadPolicy && f.policies == vec![8]));
    }

    #[test]
    fn subsumed_grant_lint_fires() {
        let narrow = mk_policy(1, 2, vec![time_cond(9 * 3600, 10 * 3600)]);
        let wide = mk_policy(2, 2, vec![time_cond(8 * 3600, 12 * 3600)]);
        let fs = lint_policies(&[&narrow, &wide], "wifi_dataset", 16);
        assert!(fs
            .iter()
            .any(|f| f.kind == FindingKind::OverlappingPolicies && f.policies == vec![1, 2]));
    }

    #[test]
    fn shadowed_allow_detected() {
        let allow = mk_policy(1, 4, vec![time_cond(9 * 3600, 10 * 3600)]);
        // Deny covers the whole morning: the allow is dead weight.
        let deny = vec![
            ObjectCondition::new(crate::policy::OWNER_ATTR, CondPredicate::Eq(Value::Int(4))),
            time_cond(8 * 3600, 11 * 3600),
        ];
        assert!(allow_shadowed_by_deny(&allow, &deny).is_proven());
        // A partial deny does not shadow.
        let partial = vec![
            ObjectCondition::new(crate::policy::OWNER_ATTR, CondPredicate::Eq(Value::Int(4))),
            time_cond(9 * 3600 + 1800, 11 * 3600),
        ];
        assert!(!allow_shadowed_by_deny(&allow, &partial).is_proven());
    }

    #[test]
    fn fragment_verification_covers_inline_and_delta() {
        use crate::backend::MinidbBackend;
        use crate::cost::CostModel;
        use crate::delta::DeltaRegistry;
        use crate::rewrite::{compile_guard_fragment, DeltaMode};

        let db = wifi_db(3000, 60);
        let policies: Vec<Policy> = (0..12)
            .map(|i| mk_policy(i, (i % 4) as i64, vec![time_cond(7 * 3600, 19 * 3600)]))
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let entry = db.table("wifi_dataset").expect("table");
        let ge = generate_guarded_expression(
            &refs,
            entry,
            &CostModel::default(),
            GuardSelectionStrategy::CostOptimal,
            999,
            "Any",
            "wifi_dataset",
        );
        let map = by_id(&policies);
        let backend = MinidbBackend::new(db);
        let delta = DeltaRegistry::new();
        for mode in [DeltaMode::Never, DeltaMode::Always] {
            let fragment = compile_guard_fragment(
                &backend,
                &delta,
                &ge,
                &map,
                &CostModel::default(),
                mode,
            )
            .expect("compile");
            assert_eq!(
                verify_fragment(&fragment, &ge, &map, &refs),
                Verdict::Proven,
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn unknown_for_derived_condition_not_proven() {
        let mut p = Policy::new(
            5,
            "wifi",
            QuerierSpec::User(999),
            "Any",
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Derived(Box::new(minidb::SelectQuery::star_from("profiles"))),
            )],
        );
        p.id = 1;
        let ge = GuardedExpression {
            relation: "wifi".to_string(),
            querier: 999,
            purpose: "Any".to_string(),
            guards: vec![crate::guard::Guard {
                condition: p.owner_condition(),
                policies: vec![1],
                est_rows: 10.0,
            }],
        };
        let policies = vec![p.clone()];
        let map = by_id(&policies);
        let v = verify_guarded_expression(&ge, &map, &[&p]);
        assert!(
            matches!(v, Verdict::Unknown { .. }),
            "derived conditions must not be silently proven: {v:?}"
        );
    }

    #[test]
    fn verdicts_are_deterministic() {
        let db = wifi_db(1000, 20);
        let policies: Vec<Policy> = (0..10)
            .map(|i| mk_policy(i, (i % 5) as i64, vec![time_cond(6 * 3600, 20 * 3600)]))
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let entry = db.table("wifi_dataset").expect("table");
        let run = || {
            let ge = generate_guarded_expression(
                &refs,
                entry,
                &CostModel::default(),
                GuardSelectionStrategy::CostOptimal,
                999,
                "Any",
                "wifi",
            );
            let map = by_id(&policies);
            format!("{:?}", verify_guarded_expression(&ge, &map, &refs))
        };
        assert_eq!(run(), run());
    }

    // Silence the unused import warning for DbProfile in this cfg(test).
    #[allow(dead_code)]
    fn _profile(_: DbProfile) {}
}
