//! Verdicts, findings and the deterministic analysis report.
//!
//! Everything here is ordered: findings sort by a total order, witness
//! assignments live in `BTreeMap`s, and the JSON renderer walks those
//! orders — so two runs over the same store produce byte-identical
//! output (a property the determinism tests pin down).

use crate::policy::PolicyId;
use minidb::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Outcome of one no-widening check.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The rewritten predicate provably admits no row outside the
    /// allowed set.
    Proven,
    /// A concrete row passes the rewritten predicate and violates every
    /// allowed policy — confirmed by the reference evaluator.
    Refuted {
        /// Column assignment of the leaking row.
        witness: BTreeMap<String, Value>,
    },
    /// The analyzer could not decide. **A finding, never a pass**: the
    /// audit reports it, but the query path does not hard-fail on it.
    Unknown {
        /// Why the proof did not go through.
        reason: String,
    },
}

impl Verdict {
    /// True for [`Verdict::Proven`].
    pub fn is_proven(&self) -> bool {
        matches!(self, Verdict::Proven)
    }

    /// True for [`Verdict::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted { .. })
    }

    /// Short tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Proven => "proven",
            Verdict::Refuted { .. } => "refuted",
            Verdict::Unknown { .. } => "unknown",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Proven => f.write_str("proven"),
            Verdict::Refuted { witness } => {
                f.write_str("refuted (witness: ")?;
                f.write_str(&render_witness(witness))?;
                f.write_str(")")
            }
            Verdict::Unknown { reason } => write!(f, "unknown ({reason})"),
        }
    }
}

/// `col=value, col=value` rendering of a witness, deterministic.
pub fn render_witness(w: &BTreeMap<String, Value>) -> String {
    let parts: Vec<String> = w.iter().map(|(k, v)| format!("{k}={v}")).collect();
    parts.join(", ")
}

/// What kind of problem a lint finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// A rewritten predicate admits rows outside the allowed set.
    Widening,
    /// A no-widening check came back undecided.
    UnknownVerdict,
    /// A policy whose object conditions are unsatisfiable — it can never
    /// grant a row.
    DeadPolicy,
    /// An allow policy entirely cancelled by a deny condition set.
    ShadowedAllow,
    /// A guard whose condition constrains nothing (matches every row of
    /// the partition's domain), defeating its index purpose.
    TautologicalGuard,
    /// Two allow policies for the same querier/purpose whose object
    /// conditions overlap — legal, but worth knowing for set cover.
    OverlappingPolicies,
    /// A guard or policy predicate whose NULL behavior the analyzer
    /// could not confirm (opaque shape or NULL-admitting condition), so
    /// exact-probe elisions resting on it are unverified.
    NullSafetyUnconfirmed,
}

impl FindingKind {
    /// Stable snake_case tag for JSON.
    pub fn tag(self) -> &'static str {
        match self {
            FindingKind::Widening => "widening",
            FindingKind::UnknownVerdict => "unknown_verdict",
            FindingKind::DeadPolicy => "dead_policy",
            FindingKind::ShadowedAllow => "shadowed_allow",
            FindingKind::TautologicalGuard => "tautological_guard",
            FindingKind::OverlappingPolicies => "overlapping_policies",
            FindingKind::NullSafetyUnconfirmed => "null_safety_unconfirmed",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// What kind of problem.
    pub kind: FindingKind,
    /// Protected relation involved.
    pub relation: String,
    /// Policies involved (sorted).
    pub policies: Vec<PolicyId>,
    /// Human-readable detail.
    pub detail: String,
}

/// One verified (querier, purpose, relation) enforcement point.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRecord {
    /// Protected relation.
    pub relation: String,
    /// Querier the guarded expression was generated for.
    pub querier: i64,
    /// Query purpose.
    pub purpose: String,
    /// Number of guards in the expression.
    pub guards: usize,
    /// Number of allowed policies the check ran against.
    pub policies: usize,
    /// The verdict.
    pub verdict: Verdict,
}

/// A full audit report: every check plus every finding, deterministically
/// ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// Scenario label (e.g. `"tippers"`, `"mall"`).
    pub scenario: String,
    /// Verified enforcement points, sorted by (relation, querier, purpose).
    pub checks: Vec<CheckRecord>,
    /// Lint findings, sorted.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// New empty report for a scenario.
    pub fn new(scenario: impl Into<String>) -> Self {
        AnalysisReport {
            scenario: scenario.into(),
            ..Default::default()
        }
    }

    /// Sort checks and findings into the canonical order. Idempotent;
    /// call once after collection.
    pub fn sort(&mut self) {
        self.checks.sort_by(|a, b| {
            (&a.relation, a.querier, &a.purpose).cmp(&(&b.relation, b.querier, &b.purpose))
        });
        self.findings.sort();
        self.findings.dedup();
    }

    /// Count of checks with the given tag.
    fn count(&self, tag: &str) -> usize {
        self.checks.iter().filter(|c| c.verdict.tag() == tag).count()
    }

    /// Number of proven checks.
    pub fn proven(&self) -> usize {
        self.count("proven")
    }

    /// Number of refuted checks — any nonzero value must fail the build.
    pub fn refuted(&self) -> usize {
        self.count("refuted")
    }

    /// Number of undecided checks.
    pub fn unknown(&self) -> usize {
        self.count("unknown")
    }

    /// Render as deterministic JSON (stable field and element order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"scenario\": {},\n", json_str(&self.scenario)));
        out.push_str(&format!(
            "  \"summary\": {{\"checks\": {}, \"proven\": {}, \"refuted\": {}, \"unknown\": {}, \"findings\": {}}},\n",
            self.checks.len(),
            self.proven(),
            self.refuted(),
            self.unknown(),
            self.findings.len()
        ));
        out.push_str("  \"checks\": [\n");
        for (i, c) in self.checks.iter().enumerate() {
            let verdict = match &c.verdict {
                Verdict::Proven => "{\"tag\": \"proven\"}".to_string(),
                Verdict::Refuted { witness } => format!(
                    "{{\"tag\": \"refuted\", \"witness\": {}}}",
                    json_str(&render_witness(witness))
                ),
                Verdict::Unknown { reason } => {
                    format!("{{\"tag\": \"unknown\", \"reason\": {}}}", json_str(reason))
                }
            };
            out.push_str(&format!(
                "    {{\"relation\": {}, \"querier\": {}, \"purpose\": {}, \"guards\": {}, \"policies\": {}, \"verdict\": {}}}{}\n",
                json_str(&c.relation),
                c.querier,
                json_str(&c.purpose),
                c.guards,
                c.policies,
                verdict,
                if i + 1 < self.checks.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let ids: Vec<String> = f.policies.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!(
                "    {{\"kind\": {}, \"relation\": {}, \"policies\": [{}], \"detail\": {}}}{}\n",
                json_str(f.kind.tag()),
                json_str(&f.relation),
                ids.join(", "),
                json_str(&f.detail),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_deterministic_and_sorted() {
        let mut r = AnalysisReport::new("test");
        r.checks.push(CheckRecord {
            relation: "b".into(),
            querier: 2,
            purpose: "Any".into(),
            guards: 1,
            policies: 1,
            verdict: Verdict::Proven,
        });
        r.checks.push(CheckRecord {
            relation: "a".into(),
            querier: 1,
            purpose: "Any".into(),
            guards: 3,
            policies: 4,
            verdict: Verdict::Unknown {
                reason: "test".into(),
            },
        });
        r.findings.push(Finding {
            kind: FindingKind::DeadPolicy,
            relation: "a".into(),
            policies: vec![7],
            detail: "dead".into(),
        });
        r.sort();
        let j1 = r.to_json();
        let mut r2 = r.clone();
        r2.sort();
        assert_eq!(j1, r2.to_json());
        assert!(j1.contains("\"proven\": 1"));
        assert!(j1.contains("\"unknown\": 1"));
        assert_eq!(r.checks[0].relation, "a");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
