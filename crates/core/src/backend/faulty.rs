//! Deterministic fault injection at the backend seam.
//!
//! [`FaultInjectingBackend`] wraps any [`SqlBackend`] and injects the
//! failure modes a networked engine exhibits, on a **seeded, deterministic
//! schedule** — the same seed replays the same fault sequence, so every
//! chaos-test failure is reproducible:
//!
//! * **Connection drops** ([`Fault::ConnectionDrop`]) — returns
//!   [`BackendError::ConnectionLost`] and wipes every statement this
//!   wrapper vended from the inner backend's registry, exactly as a real
//!   server forgets session state when the socket dies.
//! * **Statement eviction** ([`Fault::EvictStatement`]) — closes the
//!   targeted statement server-side and returns
//!   [`BackendError::UnknownStatement`], the DISCARD/restart/LRU-eviction
//!   case the session layer must re-prepare through.
//! * **Transient failures** ([`Fault::Transient`]) — retryable one-off
//!   errors (the service's retry loop absorbs these).
//! * **Timeouts** ([`Fault::Timeout`]) — non-retryable budget exhaustion.
//!
//! Faults fire at the *dispatch* surface (`exec`, `exec_timed`, `prepare`,
//! `execute_prepared`) — and, when [`FaultConfig::fault_catalog`] is on,
//! at `table_entry`, which is what guard generation and `prepare_batch`
//! read, so mid-batch failure paths can be exercised too. The
//! administrative surface (DDL, UDF install, row loading) is never
//! faulted: tests need a reliable way to build fixtures.
//!
//! Two scheduling modes compose:
//!
//! * a **scripted queue** ([`FaultInjectingBackend::script`]) consumed
//!   first — unit tests inject exact sequences ("one drop, then two
//!   transients");
//! * a **random schedule** driven by [`FaultConfig::fault_rate`] and the
//!   weighted fault mix, from an inline SplitMix64 stream seeded by
//!   [`FaultConfig::seed`].
//!
//! [`FaultInjectingBackend::set_enabled`] turns injection off wholesale —
//! chaos tests use it to enter a recovery phase and assert the service
//! heals (and leaks nothing) once the faults stop.

use super::{BackendError, BackendResult, PreparedStatement, SqlBackend, StatementId};
use minidb::exec::{ExecOptions, QueryResult};
use minidb::plan::SelectQuery;
use minidb::schema::TableSchema;
use minidb::stats::ExecStats;
use minidb::table::{Row, RowId};
use minidb::udf::Udf;
use minidb::value::Value;
use minidb::{Database, DbProfile, TableEntry};
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Drop the connection: wipe all vended statements, return
    /// [`BackendError::ConnectionLost`].
    ConnectionDrop,
    /// Evict the targeted statement server-side, return
    /// [`BackendError::UnknownStatement`]. At injection points with no
    /// statement id (plain `exec`, `prepare`) this degrades to a
    /// transient failure.
    EvictStatement,
    /// Return a retryable [`BackendError::Transient`].
    Transient,
    /// Return a non-retryable [`BackendError::Timeout`].
    Timeout,
}

/// Configuration of the injected fault schedule. Deterministic: identical
/// config + identical call sequence ⇒ identical faults.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of the SplitMix64 stream driving random injection.
    pub seed: u64,
    /// Probability (0.0–1.0) that an injectable call faults.
    pub fault_rate: f64,
    /// Relative weight of [`Fault::ConnectionDrop`] in the random mix.
    pub drop_weight: u32,
    /// Relative weight of [`Fault::EvictStatement`].
    pub evict_weight: u32,
    /// Relative weight of [`Fault::Transient`].
    pub transient_weight: u32,
    /// Relative weight of [`Fault::Timeout`].
    pub timeout_weight: u32,
    /// Added latency per injectable call (slow-backend simulation).
    pub latency: Option<Duration>,
    /// Also inject at `table_entry` (catalog reads feed guard generation
    /// and `prepare_batch`; off by default so only the dispatch path
    /// faults).
    pub fault_catalog: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            fault_rate: 0.0,
            drop_weight: 1,
            evict_weight: 1,
            transient_weight: 2,
            timeout_weight: 0,
            latency: None,
            fault_catalog: false,
        }
    }
}

impl FaultConfig {
    /// A seeded config with the given random fault rate and the default
    /// fault mix.
    pub fn seeded(seed: u64, fault_rate: f64) -> Self {
        FaultConfig {
            seed,
            fault_rate,
            ..FaultConfig::default()
        }
    }
}

/// Injection counters (observability; chaos tests assert faults actually
/// fired and recovery balanced them out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Connection drops injected.
    pub drops: u64,
    /// Statement evictions injected.
    pub evictions: u64,
    /// Transient failures injected.
    pub transients: u64,
    /// Timeouts injected.
    pub timeouts: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.drops + self.evictions + self.transients + self.timeouts
    }
}

/// SplitMix64 — tiny, seedable, and good enough to schedule faults. Kept
/// inline so the core crate stays free of an RNG dependency.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[derive(Debug)]
struct FaultState {
    rng: SplitMix64,
    config: FaultConfig,
    /// Scripted faults, consumed before any random draw.
    script: VecDeque<Fault>,
    /// Statement ids this wrapper vended and has not seen closed — the
    /// "server-side session state" a connection drop destroys.
    vended: HashSet<StatementId>,
}

/// A [`SqlBackend`] wrapper that injects scheduled faults; see the
/// [module docs](self).
#[derive(Debug)]
pub struct FaultInjectingBackend<B> {
    inner: B,
    state: Mutex<FaultState>,
    enabled: AtomicBool,
    drops: AtomicU64,
    evictions: AtomicU64,
    transients: AtomicU64,
    timeouts: AtomicU64,
    /// Calls that passed through an injection point (faulted or not).
    injectable_calls: AtomicU64,
}

impl<B: SqlBackend> FaultInjectingBackend<B> {
    /// Wrap `inner` under `config`. With the default config (rate 0, no
    /// script) the wrapper is a transparent pass-through — the warm-path
    /// overhead `bench_faults` gates on.
    pub fn new(inner: B, config: FaultConfig) -> Self {
        FaultInjectingBackend {
            inner,
            state: Mutex::new(FaultState {
                rng: SplitMix64(config.seed),
                config,
                script: VecDeque::new(),
                vended: HashSet::new(),
            }),
            enabled: AtomicBool::new(true),
            drops: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            transients: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            injectable_calls: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutably (data loading).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Queue exact faults to fire on the next injectable calls, ahead of
    /// any random schedule. Unit tests script precise sequences with this.
    pub fn script(&self, faults: impl IntoIterator<Item = Fault>) {
        self.state.lock().script.extend(faults);
    }

    /// Enable or disable all injection (script and random alike). Chaos
    /// tests disable faults to run their recovery/leak-check phase.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Injection counters so far.
    pub fn fault_counts(&self) -> FaultCounts {
        FaultCounts {
            drops: self.drops.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            transients: self.transients.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }

    /// Calls that passed an injection point (faulted or not).
    pub fn injectable_calls(&self) -> u64 {
        self.injectable_calls.load(Ordering::Relaxed)
    }

    /// Statement ids vended and still live from this wrapper's view.
    pub fn vended_statements(&self) -> usize {
        self.state.lock().vended.len()
    }

    /// Decide whether this call faults, and with what. Scripted faults
    /// first; then a weighted random draw at `fault_rate`.
    fn draw(&self) -> Option<Fault> {
        if !self.enabled.load(Ordering::SeqCst) {
            return None;
        }
        let mut st = self.state.lock();
        if let Some(f) = st.script.pop_front() {
            return Some(f);
        }
        if st.config.fault_rate <= 0.0 || st.rng.next_f64() >= st.config.fault_rate {
            return None;
        }
        let (dw, ew, tw, ow) = (
            st.config.drop_weight,
            st.config.evict_weight,
            st.config.transient_weight,
            st.config.timeout_weight,
        );
        let total = dw + ew + tw + ow;
        if total == 0 {
            return None;
        }
        let mut pick = (st.rng.next_u64() % u64::from(total)) as u32;
        for (fault, weight) in [
            (Fault::ConnectionDrop, dw),
            (Fault::EvictStatement, ew),
            (Fault::Transient, tw),
            (Fault::Timeout, ow),
        ] {
            if pick < weight {
                return Some(fault);
            }
            pick -= weight;
        }
        None
    }

    /// Simulated per-call latency, slept outside the state lock.
    fn add_latency(&self) {
        let latency = self.state.lock().config.latency;
        if let Some(d) = latency {
            std::thread::sleep(d);
        }
    }

    /// Apply a drawn fault at an injection point. `statement` carries the
    /// id in flight at `execute_prepared`, so evictions can target it.
    fn fire(&self, fault: Fault, statement: Option<StatementId>) -> BackendError {
        match fault {
            Fault::ConnectionDrop => {
                // The server forgets the session: every statement this
                // wrapper vended is closed on the inner backend (so its
                // open-statement count drops — leak checks see a clean
                // slate) and the registry view is cleared.
                let ids: Vec<StatementId> = {
                    let mut st = self.state.lock();
                    st.vended.drain().collect()
                };
                for id in ids {
                    self.inner.close_prepared(id);
                }
                self.drops.fetch_add(1, Ordering::Relaxed);
                BackendError::ConnectionLost("injected connection drop".into())
            }
            Fault::EvictStatement => match statement {
                Some(id) => {
                    self.inner.close_prepared(id);
                    self.state.lock().vended.remove(&id);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    BackendError::UnknownStatement(id)
                }
                // No statement in flight — degrade to a transient fault
                // so the schedule still produces a failure here.
                None => {
                    self.transients.fetch_add(1, Ordering::Relaxed);
                    BackendError::Transient("injected fault (eviction off-target)".into())
                }
            },
            Fault::Transient => {
                self.transients.fetch_add(1, Ordering::Relaxed);
                BackendError::Transient("injected transient failure".into())
            }
            Fault::Timeout => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                BackendError::Timeout
            }
        }
    }

    /// The common prologue of every injection point.
    fn inject(&self, statement: Option<StatementId>) -> Option<BackendError> {
        self.injectable_calls.fetch_add(1, Ordering::Relaxed);
        self.add_latency();
        self.draw().map(|f| self.fire(f, statement))
    }
}

impl<B: SqlBackend> SqlBackend for FaultInjectingBackend<B> {
    fn name(&self) -> &'static str {
        // Keep the inner name: bench labels and oracle plumbing identify
        // the engine, not the chaos harness around it.
        self.inner.name()
    }

    fn exec(&self, query: &SelectQuery, opts: &ExecOptions) -> BackendResult<QueryResult> {
        if let Some(e) = self.inject(None) {
            return Err(e);
        }
        self.inner.exec(query, opts)
    }

    fn exec_timed(
        &self,
        query: &SelectQuery,
        opts: &ExecOptions,
    ) -> (BackendResult<QueryResult>, ExecStats) {
        let t0 = std::time::Instant::now();
        if let Some(e) = self.inject(None) {
            return (
                Err(e),
                ExecStats {
                    counters: Default::default(),
                    wall: t0.elapsed(),
                    simulated_cost: 0.0,
                },
            );
        }
        self.inner.exec_timed(query, opts)
    }

    fn table_entry(&self, name: &str) -> BackendResult<&TableEntry> {
        if self.state.lock().config.fault_catalog {
            if let Some(e) = self.inject(None) {
                return Err(e);
            }
        }
        self.inner.table_entry(name)
    }

    fn has_relation(&self, name: &str) -> bool {
        self.inner.has_relation(name)
    }

    fn engine_profile(&self) -> DbProfile {
        self.inner.engine_profile()
    }

    fn install_udf(&mut self, name: &str, udf: Arc<dyn Udf>) {
        self.inner.install_udf(name, udf)
    }

    fn create_relation(&mut self, schema: TableSchema) -> BackendResult<()> {
        self.inner.create_relation(schema)
    }

    fn create_relation_index(&mut self, table: &str, column: &str) -> BackendResult<()> {
        self.inner.create_relation_index(table, column)
    }

    fn insert_row(&mut self, table: &str, row: Row) -> BackendResult<RowId> {
        self.inner.insert_row(table, row)
    }

    fn prepare(&self, query: &SelectQuery) -> BackendResult<Option<PreparedStatement>> {
        if let Some(e) = self.inject(None) {
            return Err(e);
        }
        let prepared = self.inner.prepare(query)?;
        if let Some(ps) = &prepared {
            self.state.lock().vended.insert(ps.id);
        }
        Ok(prepared)
    }

    fn execute_prepared(
        &self,
        id: StatementId,
        params: &[Value],
        opts: &ExecOptions,
    ) -> BackendResult<QueryResult> {
        if let Some(e) = self.inject(Some(id)) {
            return Err(e);
        }
        self.inner.execute_prepared(id, params, opts)
    }

    fn close_prepared(&self, id: StatementId) {
        self.state.lock().vended.remove(&id);
        self.inner.close_prepared(id)
    }

    fn minidb(&self) -> Option<&Database> {
        self.inner.minidb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MinidbBackend;
    use minidb::value::DataType;
    use minidb::TableSchema;

    fn tiny() -> MinidbBackend {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of("t", &[("id", DataType::Int)])).unwrap();
        for i in 0..5i64 {
            db.insert("t", vec![Value::Int(i)]).unwrap();
        }
        MinidbBackend::new(db)
    }

    #[test]
    fn zero_rate_is_transparent() {
        let backend = FaultInjectingBackend::new(tiny(), FaultConfig::default());
        let q = SelectQuery::star_from("t");
        for _ in 0..50 {
            assert_eq!(backend.exec(&q, &ExecOptions::default()).unwrap().len(), 5);
        }
        assert_eq!(backend.fault_counts().total(), 0);
        assert_eq!(backend.injectable_calls(), 50);
    }

    #[test]
    fn scripted_faults_fire_in_order() {
        let backend = FaultInjectingBackend::new(tiny(), FaultConfig::default());
        backend.script([Fault::Transient, Fault::Timeout, Fault::ConnectionDrop]);
        let q = SelectQuery::star_from("t");
        let opts = ExecOptions::default();
        assert!(matches!(
            backend.exec(&q, &opts),
            Err(BackendError::Transient(_))
        ));
        assert!(matches!(backend.exec(&q, &opts), Err(BackendError::Timeout)));
        assert!(matches!(
            backend.exec(&q, &opts),
            Err(BackendError::ConnectionLost(_))
        ));
        // Script drained — calls pass through again.
        assert!(backend.exec(&q, &opts).is_ok());
        let counts = backend.fault_counts();
        assert_eq!((counts.transients, counts.timeouts, counts.drops), (1, 1, 1));
    }

    #[test]
    fn same_seed_same_schedule() {
        let outcomes = |seed: u64| {
            let backend =
                FaultInjectingBackend::new(tiny(), FaultConfig::seeded(seed, 0.5));
            let q = SelectQuery::star_from("t");
            (0..40)
                .map(|_| backend.exec(&q, &ExecOptions::default()).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(outcomes(42), outcomes(42));
        // Sanity: a 50% rate over 40 calls virtually surely faults once
        // and passes once.
        let o = outcomes(42);
        assert!(o.iter().any(|ok| *ok) && o.iter().any(|ok| !*ok));
    }

    #[test]
    fn disabled_injection_passes_through() {
        let backend = FaultInjectingBackend::new(tiny(), FaultConfig::seeded(7, 1.0));
        backend.script([Fault::Transient]);
        backend.set_enabled(false);
        let q = SelectQuery::star_from("t");
        for _ in 0..10 {
            assert!(backend.exec(&q, &ExecOptions::default()).is_ok());
        }
        assert_eq!(backend.fault_counts().total(), 0);
    }
}
