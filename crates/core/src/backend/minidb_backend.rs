//! The in-process backend: a thin wrapper over [`minidb::Database`].

use super::{BackendResult, SqlBackend};
use minidb::exec::{ExecOptions, QueryResult};
use minidb::plan::SelectQuery;
use minidb::schema::TableSchema;
use minidb::stats::ExecStats;
use minidb::table::{Row, RowId};
use minidb::udf::Udf;
use minidb::{Database, DbProfile, TableEntry};
use std::sync::Arc;

/// The hermetic default backend: SIEVE calling straight into the embedded
/// engine, as the seed tree always did. Query ASTs are handed to the
/// executor without a serialization round — the zero-overhead baseline
/// the wire backend is measured against (`bench_backend`).
#[derive(Debug, Clone)]
pub struct MinidbBackend {
    db: Database,
}

impl MinidbBackend {
    /// Wrap an engine instance.
    pub fn new(db: Database) -> Self {
        MinidbBackend { db }
    }

    /// The wrapped engine (read access).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The wrapped engine (mutable — data loading, profile flips). Reach
    /// this through [`crate::Sieve::db_mut`] when the backend is under a
    /// middleware, so the out-of-band write bumps the backend epoch and
    /// cached guards regenerate.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Unwrap back into the engine.
    pub fn into_inner(self) -> Database {
        self.db
    }
}

/// Delegates every method to the `SqlBackend` impl on [`Database`]
/// itself (one source of truth for the engine wiring); this type exists
/// to be the named default backend and the place engine-specific
/// conveniences (`db`/`db_mut`/`into_inner`) live.
impl SqlBackend for MinidbBackend {
    fn name(&self) -> &'static str {
        self.db.name()
    }
    fn exec(&self, query: &SelectQuery, opts: &ExecOptions) -> BackendResult<QueryResult> {
        SqlBackend::exec(&self.db, query, opts)
    }
    fn exec_timed(
        &self,
        query: &SelectQuery,
        opts: &ExecOptions,
    ) -> (BackendResult<QueryResult>, ExecStats) {
        SqlBackend::exec_timed(&self.db, query, opts)
    }
    fn table_entry(&self, name: &str) -> BackendResult<&TableEntry> {
        self.db.table_entry(name)
    }
    fn has_relation(&self, name: &str) -> bool {
        self.db.has_relation(name)
    }
    fn engine_profile(&self) -> DbProfile {
        self.db.engine_profile()
    }
    fn install_udf(&mut self, name: &str, udf: Arc<dyn Udf>) {
        self.db.install_udf(name, udf)
    }
    fn create_relation(&mut self, schema: TableSchema) -> BackendResult<()> {
        self.db.create_relation(schema)
    }
    fn create_relation_index(&mut self, table: &str, column: &str) -> BackendResult<()> {
        self.db.create_relation_index(table, column)
    }
    fn insert_row(&mut self, table: &str, row: Row) -> BackendResult<RowId> {
        self.db.insert_row(table, row)
    }
    fn minidb(&self) -> Option<&Database> {
        self.db.minidb()
    }
}
