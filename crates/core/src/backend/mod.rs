//! The execution-backend layer.
//!
//! The paper deploys SIEVE as *middleware*: the DBMS behind it is a
//! replaceable component reached through SQL text (stock MySQL or
//! PostgreSQL, Section 7). [`SqlBackend`] is that seam in code — the
//! exact surface the middleware needs from an engine, and nothing more:
//!
//! * **query execution** ([`SqlBackend::exec`] / [`SqlBackend::exec_timed`])
//!   with [`ExecOptions`] (timeouts, and the `threads` knob that turns
//!   large scans morsel-parallel inside the engine);
//! * **catalog introspection** ([`SqlBackend::table_entry`],
//!   [`SqlBackend::has_relation`]) — schemas, indexes, and histograms,
//!   which guard candidate generation and [`crate::cost::calibrate`]
//!   consume (a server backend would materialize these from
//!   `information_schema` + `pg_stats`/`mysql.innodb_index_stats`);
//! * **UDF installation** ([`SqlBackend::install_udf`]) for the ∆
//!   operator and Baseline U (the paper's `CREATE FUNCTION` step);
//! * **administrative DDL/DML** ([`SqlBackend::create_relation`],
//!   [`SqlBackend::create_relation_index`], [`SqlBackend::insert_row`])
//!   for the `rP`/`rOC`/`rGE`/`rGG`/`rGP` policy relations of
//!   Section 5.1.
//!
//! Two backends ship:
//!
//! * [`MinidbBackend`] — a thin wrapper over the in-process engine; the
//!   hermetic default ([`crate::Sieve`]'s default type parameter).
//! * [`WireSqlBackend`] (feature `wire-sql`, on by default) — accepts
//!   only SQL **text**: every query is rendered with
//!   [`minidb::sql::render_query`], crosses a simulated wire, and is
//!   re-parsed before execution. This exercises exactly the path a
//!   network backend uses, making render fidelity load-bearing.
//!
//! A documented [`postgres`]-feature stub records what a real
//! `tokio-postgres` backend needs; network crates are unavailable in
//! this build environment.
//!
//! Queries travel as SQL text; the administrative surface (catalog reads,
//! DDL, UDF installation) uses the backend's native channel, as the
//! paper's middleware does during setup.

use minidb::error::{DbError, DbResult};
use minidb::exec::{ExecOptions, QueryResult};
use minidb::plan::SelectQuery;
use minidb::schema::TableSchema;
use minidb::stats::ExecStats;
use minidb::table::{Row, RowId};
use minidb::udf::Udf;
use minidb::value::Value;
use minidb::{Database, DbProfile, TableEntry};
use std::fmt;
use std::sync::Arc;

pub mod faulty;
mod minidb_backend;
#[cfg(feature = "postgres")]
mod postgres;
#[cfg(feature = "wire-sql")]
mod wire;

pub use faulty::{Fault, FaultConfig, FaultCounts, FaultInjectingBackend};
pub use minidb_backend::MinidbBackend;
#[cfg(feature = "postgres")]
pub use postgres::PostgresBackend;
#[cfg(feature = "wire-sql")]
pub use wire::WireSqlBackend;

/// A typed backend failure, classified by what recovery it admits.
///
/// The classification is the contract the service's retry layer and the
/// session's re-prepare logic are written against:
///
/// * [`BackendError::is_retryable`] — the same call may succeed if simply
///   re-issued (possibly on a fresh connection). The service retries these
///   under its [`crate::middleware::RetryPolicy`].
/// * [`BackendError::needs_reprepare`] — server-side statement state was
///   lost; a [`crate::session::Prepared`] must rebuild its plan (prepare a
///   fresh statement id) before the query can run again.
///
/// Everything else fails closed immediately: the error propagates as a
/// [`crate::SieveError`] and no rows are returned.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The connection to the engine dropped. All server-side session
    /// state — prepared statements above all — is gone; the service bumps
    /// its backend epoch on observing this so prepared plans re-prepare.
    /// Retryable: the next call reconnects.
    ConnectionLost(String),
    /// The call exceeded its deadline (the engine's statement timeout or
    /// the service's per-query budget). Not retryable: the budget is
    /// spent, and retrying a deterministic over-budget query would spin.
    Timeout,
    /// The statement id is not known server-side (evicted, closed, or lost
    /// with a connection). Not retryable as-is — the caller must
    /// re-prepare and execute the fresh id.
    UnknownStatement(StatementId),
    /// A transient fault (network hiccup, server momentarily overloaded).
    /// Retryable as-is.
    Transient(String),
    /// The engine rejected the query on semantic grounds — unknown table,
    /// type error, unsupported shape. Deterministic; never retried.
    Rejected(DbError),
    /// A permanent failure (unsupported operation, misconfigured backend).
    /// Never retried.
    Fatal(String),
}

/// Result alias for [`SqlBackend`] operations.
pub type BackendResult<T> = Result<T, BackendError>;

impl BackendError {
    /// True iff re-issuing the same call may succeed. The service's retry
    /// loop only ever retries errors for which this holds.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            BackendError::ConnectionLost(_) | BackendError::Transient(_)
        )
    }

    /// True iff server-side prepared-statement state was lost and plans
    /// executing by statement id must re-prepare before retrying.
    pub fn needs_reprepare(&self) -> bool {
        matches!(
            self,
            BackendError::ConnectionLost(_) | BackendError::UnknownStatement(_)
        )
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::ConnectionLost(m) => write!(f, "connection lost: {m}"),
            BackendError::Timeout => write!(f, "timed out"),
            BackendError::UnknownStatement(id) => {
                write!(f, "unknown prepared statement {id} (closed, evicted, or lost)")
            }
            BackendError::Transient(m) => write!(f, "transient failure: {m}"),
            BackendError::Rejected(e) => write!(f, "rejected by engine: {e}"),
            BackendError::Fatal(m) => write!(f, "fatal: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<DbError> for BackendError {
    fn from(e: DbError) -> Self {
        match e {
            // The engine's own deadline is the same budget-spent signal as
            // a wire-level timeout; keep the classification.
            DbError::Timeout => BackendError::Timeout,
            other => BackendError::Rejected(other),
        }
    }
}

/// Lift an engine `(result, stats)` pair into the backend error type.
fn timed_from_db(
    (res, stats): (DbResult<QueryResult>, ExecStats),
) -> (BackendResult<QueryResult>, ExecStats) {
    (res.map_err(BackendError::from), stats)
}

/// Identifier of a server-side prepared statement, scoped to one backend
/// instance. Ids are never reused within an instance.
pub type StatementId = u64;

/// A server-side prepared statement: the statement id plus the literal
/// values lifted out of the plan at prepare time (index = placeholder
/// ordinal). Executing with exactly these values is the warm fast path;
/// executing with different values rebinds against the server's parsed
/// template.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedStatement {
    /// Server-side statement handle.
    pub id: StatementId,
    /// Parameter values the plan was prepared with.
    pub params: Vec<Value>,
}

/// The execution engine behind the middleware, as seen by [`crate::Sieve`]
/// and the concurrent [`crate::service::SieveService`].
///
/// Object-safe: the middleware holds a concrete `B: SqlBackend`, but the
/// rewriting/costing free functions take `&dyn SqlBackend` so they need
/// no generic plumbing (and `&Database` coerces to it directly).
///
/// `Send + Sync` is a supertrait: the service shares one backend across
/// every connection thread behind a read-write lock, with concurrent
/// queries executing through `&self` — an engine that cannot cross or be
/// shared between threads cannot back a concurrent middleware.
pub trait SqlBackend: Send + Sync {
    /// Short identifier for diagnostics and bench labels.
    fn name(&self) -> &'static str;

    /// Execute a prepared query.
    fn exec(&self, query: &SelectQuery, opts: &ExecOptions) -> BackendResult<QueryResult>;

    /// Execute a query and report `(result, stats)` — wall time plus the
    /// engine's simulated cost clock.
    fn exec_timed(
        &self,
        query: &SelectQuery,
        opts: &ExecOptions,
    ) -> (BackendResult<QueryResult>, ExecStats);

    /// Catalog entry for a relation: schema, indexes, histograms. Guard
    /// candidate generation and cost calibration read these; a server
    /// backend mirrors them locally from the server's catalog views.
    fn table_entry(&self, name: &str) -> BackendResult<&TableEntry>;

    /// True iff a relation with this name exists.
    fn has_relation(&self, name: &str) -> bool;

    /// Optimizer profile of the engine (drives hint/bitmap behaviour as
    /// in the paper's Experiment 4).
    fn engine_profile(&self) -> DbProfile;

    /// Install a UDF (the ∆ operator; Baseline U's policy UDF). The
    /// paper's equivalent is `CREATE FUNCTION` issued at deploy time.
    fn install_udf(&mut self, name: &str, udf: Arc<dyn Udf>);

    /// Create a relation (idempotence is the caller's concern). Used for
    /// the policy persistence tables of Section 5.1.
    fn create_relation(&mut self, schema: TableSchema) -> BackendResult<()>;

    /// Create a secondary index over `column` of `table`.
    fn create_relation_index(&mut self, table: &str, column: &str) -> BackendResult<()>;

    /// Insert one row through the administrative channel (policy/guard
    /// mirroring — not the measured query path).
    fn insert_row(&mut self, table: &str, row: Row) -> BackendResult<RowId>;

    /// Prepare `query` server-side: render + parse once, returning a
    /// statement id to execute by thereafter. `Ok(None)` means this
    /// backend has no server-side statements (the default — in-process
    /// engines execute the AST directly, so there is nothing to save);
    /// callers then fall back to [`SqlBackend::exec`] per call, which
    /// preserves the pre-prepared-statement behavior exactly.
    fn prepare(&self, query: &SelectQuery) -> BackendResult<Option<PreparedStatement>> {
        let _ = query;
        Ok(None)
    }

    /// Execute a statement previously returned by [`SqlBackend::prepare`]
    /// with the given parameter values. Only meaningful on backends that
    /// returned `Some` from `prepare`.
    fn execute_prepared(
        &self,
        id: StatementId,
        params: &[Value],
        opts: &ExecOptions,
    ) -> BackendResult<QueryResult> {
        let _ = (params, opts);
        // Fatal, not UnknownStatement: there is no statement state to
        // recover, so a re-prepare/retry loop must not engage.
        Err(BackendError::Fatal(format!(
            "backend {} has no server-side prepared statements (statement {id})",
            self.name()
        )))
    }

    /// Release a server-side statement. A no-op on backends without
    /// server-side statements, and for ids already closed.
    fn close_prepared(&self, id: StatementId) {
        let _ = id;
    }

    /// The in-process engine behind this backend, if any — the escape
    /// hatch the reference oracle ([`crate::semantics`]) uses to evaluate
    /// derived (subquery) policy conditions directly. A true network
    /// backend returns `None`; oracle checks then treat derived
    /// conditions as unsatisfied (fail closed) or run against a local
    /// mirror. Enforcement never calls this.
    fn minidb(&self) -> Option<&Database> {
        None
    }
}

impl<T: SqlBackend + ?Sized> SqlBackend for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn exec(&self, query: &SelectQuery, opts: &ExecOptions) -> BackendResult<QueryResult> {
        (**self).exec(query, opts)
    }
    fn exec_timed(
        &self,
        query: &SelectQuery,
        opts: &ExecOptions,
    ) -> (BackendResult<QueryResult>, ExecStats) {
        (**self).exec_timed(query, opts)
    }
    fn table_entry(&self, name: &str) -> BackendResult<&TableEntry> {
        (**self).table_entry(name)
    }
    fn has_relation(&self, name: &str) -> bool {
        (**self).has_relation(name)
    }
    fn engine_profile(&self) -> DbProfile {
        (**self).engine_profile()
    }
    fn install_udf(&mut self, name: &str, udf: Arc<dyn Udf>) {
        (**self).install_udf(name, udf)
    }
    fn create_relation(&mut self, schema: TableSchema) -> BackendResult<()> {
        (**self).create_relation(schema)
    }
    fn create_relation_index(&mut self, table: &str, column: &str) -> BackendResult<()> {
        (**self).create_relation_index(table, column)
    }
    fn insert_row(&mut self, table: &str, row: Row) -> BackendResult<RowId> {
        (**self).insert_row(table, row)
    }
    fn prepare(&self, query: &SelectQuery) -> BackendResult<Option<PreparedStatement>> {
        (**self).prepare(query)
    }
    fn execute_prepared(
        &self,
        id: StatementId,
        params: &[Value],
        opts: &ExecOptions,
    ) -> BackendResult<QueryResult> {
        (**self).execute_prepared(id, params, opts)
    }
    fn close_prepared(&self, id: StatementId) {
        (**self).close_prepared(id)
    }
    fn minidb(&self) -> Option<&Database> {
        (**self).minidb()
    }
}

/// A bare [`Database`] is itself a backend (the identity wiring): this is
/// what lets every existing `&Database` call site — oracles, tests,
/// experiment binaries — coerce straight into the trait surface. Under
/// [`crate::Sieve`], prefer [`MinidbBackend`], which participates in the
/// middleware's write-epoch staleness tracking.
impl SqlBackend for Database {
    fn name(&self) -> &'static str {
        "minidb"
    }
    fn exec(&self, query: &SelectQuery, opts: &ExecOptions) -> BackendResult<QueryResult> {
        self.run_query_opts(query, opts).map_err(BackendError::from)
    }
    fn exec_timed(
        &self,
        query: &SelectQuery,
        opts: &ExecOptions,
    ) -> (BackendResult<QueryResult>, ExecStats) {
        timed_from_db(self.run_timed(query, opts))
    }
    fn table_entry(&self, name: &str) -> BackendResult<&TableEntry> {
        self.table(name).map_err(BackendError::from)
    }
    fn has_relation(&self, name: &str) -> bool {
        self.has_table(name)
    }
    fn engine_profile(&self) -> DbProfile {
        self.profile()
    }
    fn install_udf(&mut self, name: &str, udf: Arc<dyn Udf>) {
        self.register_udf(name, udf)
    }
    fn create_relation(&mut self, schema: TableSchema) -> BackendResult<()> {
        self.create_table(schema).map_err(BackendError::from)
    }
    fn create_relation_index(&mut self, table: &str, column: &str) -> BackendResult<()> {
        self.create_index(table, column).map_err(BackendError::from)
    }
    fn insert_row(&mut self, table: &str, row: Row) -> BackendResult<RowId> {
        self.insert(table, row).map_err(BackendError::from)
    }
    fn minidb(&self) -> Option<&Database> {
        Some(self)
    }
}

/// A boxed backend — the type the backend-matrix test helper hands out so
/// one closure body serves every backend.
pub type DynBackend = Box<dyn SqlBackend>;

/// Run `f` once per available backend over a copy of `db` (deep clone per
/// backend, so mutations never leak across runs). The equivalence and
/// bypass oracle suites use this to pin the trait seam itself: whatever
/// they assert must hold for the in-process backend **and** the wire-SQL
/// backend, with identical results.
// Test-harness helper: init failure here is a broken test fixture, not a
// query-path fault, so the panic is intentional (and exempt from the
// fail-closed no-panic gate on the query path).
#[allow(clippy::disallowed_macros)]
pub fn for_each_backend<F>(db: &Database, options: &crate::SieveOptions, mut f: F)
where
    F: FnMut(&'static str, crate::middleware::Sieve<DynBackend>),
{
    let mut backends: Vec<(&'static str, DynBackend)> = Vec::new();
    backends.push(("minidb", Box::new(MinidbBackend::new(db.clone()))));
    #[cfg(feature = "wire-sql")]
    backends.push(("wire-sql", Box::new(WireSqlBackend::new(db.clone()))));
    for (name, backend) in backends {
        let sieve = crate::middleware::Sieve::with_backend(backend, options.clone())
            .unwrap_or_else(|e| panic!("backend {name} failed to initialize: {e}"));
        f(name, sieve);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::value::{DataType, Value};

    fn tiny_db() -> Database {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "t",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        for i in 0..10i64 {
            db.insert("t", vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        }
        db
    }

    #[test]
    fn database_is_a_backend() {
        let db = tiny_db();
        let backend: &dyn SqlBackend = &db;
        assert_eq!(backend.name(), "minidb");
        assert!(backend.has_relation("t"));
        assert!(!backend.has_relation("nope"));
        let res = backend
            .exec(&SelectQuery::star_from("t"), &ExecOptions::default())
            .unwrap();
        assert_eq!(res.len(), 10);
        assert_eq!(backend.table_entry("t").unwrap().schema().arity(), 2);
    }

    #[test]
    fn boxed_backend_delegates() {
        let boxed: DynBackend = Box::new(MinidbBackend::new(tiny_db()));
        assert_eq!(boxed.name(), "minidb");
        let (res, stats) =
            boxed.exec_timed(&SelectQuery::star_from("t"), &ExecOptions::default());
        assert_eq!(res.unwrap().len(), 10);
        assert!(stats.simulated_cost > 0.0);
    }

    #[test]
    fn for_each_backend_visits_every_backend() {
        let db = tiny_db();
        let mut seen = Vec::new();
        for_each_backend(&db, &crate::SieveOptions::default(), |name, sieve| {
            assert!(sieve.backend().has_relation("t"));
            seen.push(name);
        });
        assert!(seen.contains(&"minidb"));
        #[cfg(feature = "wire-sql")]
        assert!(seen.contains(&"wire-sql"));
    }
}
