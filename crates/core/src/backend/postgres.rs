//! PostgreSQL backend **stub** (feature `postgres`).
//!
//! This build environment has no network access and no registry, so a
//! real server backend cannot be linked. This module pins down the shape
//! one would take so the work is a fill-in rather than a design exercise.
//! A real implementation needs:
//!
//! * **Transport** — `tokio-postgres` (or `postgres` for the blocking
//!   variant): [`PostgresBackend::connect`] opens the connection;
//!   [`super::SqlBackend::exec`] becomes `client.query(&sql, &[])` over
//!   the text produced by [`minidb::sql::render_query`]. The render
//!   fidelity that `WireSqlBackend` exercises (guard CTEs, hint stripping
//!   for PostgreSQL, typed literals) is exactly what crosses this wire.
//! * **Catalog mirroring** — [`super::SqlBackend::table_entry`] must
//!   materialize a local [`minidb::TableEntry`] per relation from
//!   `information_schema.columns` (schema), `pg_indexes` (index set) and
//!   `pg_stats` (`histogram_bounds`/`n_distinct` → a
//!   [`minidb::histogram::Histogram`]), refreshed after `ANALYZE`. Guard
//!   candidate generation and `CostModel::calibrate` consume only this
//!   mirror, never the server directly.
//! * **∆ as a server-side function** — [`super::SqlBackend::install_udf`]
//!   maps to `CREATE FUNCTION sieve_delta(...) RETURNS boolean` (PL/pgSQL
//!   over the `rP ⋈ rOC` policy tables, as the paper's Section 5.2 UDF),
//!   since an in-process [`minidb::udf::Udf`] cannot run inside the
//!   server. The partition registry must therefore write partitions into
//!   a server table instead of process memory.
//! * **Hints** — PostgreSQL ignores `FORCE INDEX`; the renderer's output
//!   must drop hint clauses for this profile (the engine's
//!   `DbProfile::PostgresLike` models that behaviour today).
//! * **Prepared statements** — [`super::SqlBackend::prepare`] maps to the
//!   extended-protocol `Parse` message (`client.prepare(&template_sql)`)
//!   over the literal-free text of
//!   [`minidb::sql::parameterize`] + [`minidb::sql::render_query`]; the
//!   `?` placeholders become `$1…$n` (same left-to-right ordinals).
//!   [`super::SqlBackend::execute_prepared`] is `client.query(&stmt,
//!   &params)` (`Bind`/`Execute`), and
//!   [`super::SqlBackend::close_prepared`] is the `Close` message —
//!   `tokio-postgres` sends it when the `Statement` handle drops, which
//!   is exactly when the session layer releases its plan pin. The
//!   `WireSqlBackend` statement registry models this lifecycle 1:1.
//!
//! Every method returns [`DbError::Unsupported`] so the feature compiles
//! and type-checks across the matrix without pretending to run.

use super::{BackendError, BackendResult, SqlBackend};
use minidb::exec::{ExecOptions, QueryResult};
use minidb::plan::SelectQuery;
use minidb::schema::TableSchema;
use minidb::stats::ExecStats;
use minidb::table::{Row, RowId};
use minidb::udf::Udf;
use minidb::{DbProfile, TableEntry};
use std::sync::Arc;

/// Placeholder for a real PostgreSQL connection-backed [`SqlBackend`].
#[derive(Debug)]
pub struct PostgresBackend {
    dsn: String,
}

// Fatal, not Transient/ConnectionLost: the stub can never succeed, so the
// service's retry loop must fail closed immediately instead of spinning
// through its backoff schedule.
fn offline(what: &str) -> BackendError {
    BackendError::Fatal(format!(
        "postgres backend is a stub (no network crates in this build): {what}"
    ))
}

impl PostgresBackend {
    /// Would open a connection to `dsn`; in the stub it records the DSN
    /// and fails on first use, so wiring code can be written and tested
    /// for its error path.
    pub fn connect(dsn: impl Into<String>) -> Self {
        PostgresBackend { dsn: dsn.into() }
    }

    /// The configured connection string.
    pub fn dsn(&self) -> &str {
        &self.dsn
    }
}

impl SqlBackend for PostgresBackend {
    fn name(&self) -> &'static str {
        "postgres-stub"
    }
    fn exec(&self, _query: &SelectQuery, _opts: &ExecOptions) -> BackendResult<QueryResult> {
        Err(offline("exec"))
    }
    fn exec_timed(
        &self,
        _query: &SelectQuery,
        _opts: &ExecOptions,
    ) -> (BackendResult<QueryResult>, ExecStats) {
        (
            Err(offline("exec_timed")),
            ExecStats {
                counters: Default::default(),
                wall: std::time::Duration::ZERO,
                simulated_cost: 0.0,
            },
        )
    }
    fn table_entry(&self, _name: &str) -> BackendResult<&TableEntry> {
        Err(offline("table_entry (catalog mirror)"))
    }
    fn has_relation(&self, _name: &str) -> bool {
        false
    }
    fn engine_profile(&self) -> DbProfile {
        DbProfile::PostgresLike
    }
    fn install_udf(&mut self, _name: &str, _udf: Arc<dyn Udf>) {
        // A real backend issues CREATE FUNCTION here; the stub accepts and
        // drops the registration so Sieve::with_backend can still build a
        // value whose first *query* reports the offline error.
    }
    fn create_relation(&mut self, _schema: TableSchema) -> BackendResult<()> {
        Err(offline("create_relation"))
    }
    fn create_relation_index(&mut self, _table: &str, _column: &str) -> BackendResult<()> {
        Err(offline("create_relation_index"))
    }
    fn insert_row(&mut self, _table: &str, _row: Row) -> BackendResult<RowId> {
        Err(offline("insert_row"))
    }
    // `prepare` keeps the trait default (`Ok(None)`): callers fall back
    // to `exec`, whose offline error is the stub's single failure point.
    // A real implementation overrides all three statement methods (see
    // the module docs for the message mapping).
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_is_constructible_but_fails_on_use() {
        let mut backend = PostgresBackend::connect("postgres://sieve@localhost/sieve");
        assert_eq!(backend.dsn(), "postgres://sieve@localhost/sieve");
        assert_eq!(backend.name(), "postgres-stub");
        assert_eq!(backend.engine_profile(), DbProfile::PostgresLike);
        assert!(!backend.has_relation("wifi_dataset"));
        let err = backend.exec(&SelectQuery::star_from("t"), &ExecOptions::default());
        // Fatal (non-retryable): the service must not spin on the stub.
        match err {
            Err(ref e @ BackendError::Fatal(_)) => assert!(!e.is_retryable()),
            other => panic!("expected Fatal, got {other:?}"),
        }
        let err = backend.insert_row("t", vec![]);
        assert!(matches!(err, Err(BackendError::Fatal(_))));
    }

    #[test]
    fn stub_builds_under_middleware_and_fails_closed() {
        let backend = PostgresBackend::connect("postgres://sieve@localhost/sieve");
        let mut sieve = crate::middleware::Sieve::with_backend(
            backend,
            crate::SieveOptions::default(),
        )
        .expect("stub backend must initialize (UDF install is a no-op)");
        sieve.protect("wifi_dataset");
        let qm = crate::policy::QueryMetadata::new(1, "Any");
        let res = sieve.execute(&SelectQuery::star_from("wifi_dataset"), &qm);
        assert!(matches!(
            res,
            Err(crate::SieveError::Backend(BackendError::Fatal(_)))
        ));
    }
}
