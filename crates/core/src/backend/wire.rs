//! The wire-SQL backend: queries cross the seam as **text only**.
//!
//! The paper's SIEVE hands the rewritten query to MySQL/PostgreSQL as a
//! SQL string. [`WireSqlBackend`] reproduces that contract against the
//! embedded engine: every query is rendered
//! ([`minidb::sql::render_query`]), crosses a simulated wire, and is
//! re-parsed ([`minidb::sql::parse`]) before execution — the AST the
//! middleware built never reaches the executor directly. A future
//! `tokio-postgres` backend replaces only the middle of this pipeline
//! (ship the text, receive rows) — everything the middleware relies on,
//! above all render fidelity of guard-CTE-bearing rewrites, is already
//! exercised here and property-tested in `tests/proptest_wire.rs`.
//!
//! The administrative surface (catalog reads, DDL for the policy tables,
//! UDF installation) stays native, as a server deployment would use its
//! own client-library calls for setup rather than the measured query
//! path.

use super::{BackendError, BackendResult, PreparedStatement, SqlBackend, StatementId};
use crate::lru::LruMap;
use minidb::error::DbResult;
use minidb::exec::{ExecOptions, QueryResult};
use minidb::plan::SelectQuery;
use minidb::schema::TableSchema;
use minidb::stats::ExecStats;
use minidb::table::{Row, RowId};
use minidb::udf::Udf;
use minidb::value::Value;
use minidb::{Database, DbProfile, TableEntry};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Capacity of the parsed-template intern cache. Templates are shared
/// across queriers whose rewrites differ only in policy literals, so the
/// working set is the number of distinct *query shapes*, not queriers.
pub const TEMPLATE_CACHE_CAP: usize = 256;

/// A registered server-side statement: the parsed template plus the
/// plan pre-bound with its prepare-time parameters.
#[derive(Debug)]
struct StatementEntry {
    /// Parsed literal-free template (shared with the intern cache).
    template: Arc<SelectQuery>,
    /// Parameter values given at prepare time.
    params: Vec<Value>,
    /// Template with `params` already bound — executing with the same
    /// values costs no render, no parse, and no rebind.
    bound: Arc<SelectQuery>,
}

/// An engine reached exclusively through SQL text.
#[derive(Debug)]
pub struct WireSqlBackend {
    db: Database,
    /// Queries that crossed the wire as full SQL text
    /// (render → parse → execute, or a prepare).
    round_trips: AtomicU64,
    /// Open server-side statements by id.
    statements: RwLock<HashMap<StatementId, StatementEntry>>,
    /// Parsed templates interned by rendered text: a template shared by N
    /// queriers is parsed once, not N times.
    templates: RwLock<LruMap<Arc<SelectQuery>>>,
    next_stmt: AtomicU64,
    /// Total `prepare` calls.
    prepares: AtomicU64,
    /// Prepares that found their template already parsed.
    template_hits: AtomicU64,
    /// Executions by statement id (no SQL text on the wire).
    prepared_execs: AtomicU64,
}

impl WireSqlBackend {
    /// Wrap an engine instance behind the textual seam.
    pub fn new(db: Database) -> Self {
        WireSqlBackend {
            db,
            round_trips: AtomicU64::new(0),
            statements: RwLock::new(HashMap::new()),
            templates: RwLock::new(LruMap::new(TEMPLATE_CACHE_CAP)),
            next_stmt: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
            template_hits: AtomicU64::new(0),
            prepared_execs: AtomicU64::new(0),
        }
    }

    /// The engine on the far side of the wire (read access — oracle and
    /// test use).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable engine access (data loading). Under a middleware, reach it
    /// via [`crate::Sieve::backend_mut`] so the write bumps the epoch.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// How many queries crossed the wire as full SQL text so far. Lets
    /// tests assert the textual path was actually taken rather than
    /// silently bypassed.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Total `prepare` calls served.
    pub fn prepares(&self) -> u64 {
        self.prepares.load(Ordering::Relaxed)
    }

    /// Prepares whose rendered template was already parsed (interned) —
    /// the statement-cache hit count.
    pub fn template_hits(&self) -> u64 {
        self.template_hits.load(Ordering::Relaxed)
    }

    /// Executions dispatched by statement id (no SQL text shipped).
    pub fn prepared_execs(&self) -> u64 {
        self.prepared_execs.load(Ordering::Relaxed)
    }

    /// Currently open server-side statements.
    pub fn open_statements(&self) -> usize {
        self.statements.read().len()
    }

    /// The wire itself: serialize, "transmit", deserialize. Every byte of
    /// middleware output must survive this or the backend mis-executes —
    /// which is exactly the property the dual-backend oracle suites pin.
    fn ship(&self, query: &SelectQuery) -> DbResult<SelectQuery> {
        let sql = minidb::sql::render_query(query);
        let parsed = minidb::sql::parse(&sql)?;
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        Ok(parsed)
    }
}

impl SqlBackend for WireSqlBackend {
    fn name(&self) -> &'static str {
        "wire-sql"
    }
    fn exec(&self, query: &SelectQuery, opts: &ExecOptions) -> BackendResult<QueryResult> {
        let parsed = self.ship(query)?;
        self.db.run_query_opts(&parsed, opts).map_err(BackendError::from)
    }
    fn exec_timed(
        &self,
        query: &SelectQuery,
        opts: &ExecOptions,
    ) -> (BackendResult<QueryResult>, ExecStats) {
        // The render+parse round trip is genuine dispatch cost; charge it
        // to the measured wall time so timed experiments see the wire.
        let t0 = std::time::Instant::now();
        let parsed = match self.ship(query) {
            Ok(p) => p,
            Err(e) => {
                return (
                    Err(BackendError::from(e)),
                    ExecStats {
                        counters: Default::default(),
                        wall: t0.elapsed(),
                        simulated_cost: 0.0,
                    },
                )
            }
        };
        let dispatch: Duration = t0.elapsed();
        let (res, mut stats) = self.db.run_timed(&parsed, opts);
        stats.wall += dispatch;
        (res.map_err(BackendError::from), stats)
    }
    fn table_entry(&self, name: &str) -> BackendResult<&TableEntry> {
        self.db.table(name).map_err(BackendError::from)
    }
    fn has_relation(&self, name: &str) -> bool {
        self.db.has_table(name)
    }
    fn engine_profile(&self) -> DbProfile {
        self.db.profile()
    }
    fn install_udf(&mut self, name: &str, udf: Arc<dyn Udf>) {
        self.db.register_udf(name, udf)
    }
    fn create_relation(&mut self, schema: TableSchema) -> BackendResult<()> {
        self.db.create_table(schema).map_err(BackendError::from)
    }
    fn create_relation_index(&mut self, table: &str, column: &str) -> BackendResult<()> {
        self.db.create_index(table, column).map_err(BackendError::from)
    }
    fn insert_row(&mut self, table: &str, row: Row) -> BackendResult<RowId> {
        self.db.insert(table, row).map_err(BackendError::from)
    }
    /// The server-side prepare: lift literals into `?` placeholders,
    /// render the literal-free template, and parse it **once per template
    /// text** — queriers whose rewrites differ only in policy literals
    /// share one parsed template. The returned statement executes by id
    /// with bound parameters; no SQL text crosses the wire again.
    fn prepare(&self, query: &SelectQuery) -> BackendResult<Option<PreparedStatement>> {
        self.prepares.fetch_add(1, Ordering::Relaxed);
        let (template_ast, params) = minidb::sql::parameterize(query);
        let sql = minidb::sql::render_query(&template_ast);
        // One wire round trip ships the template text (even on an intern
        // hit — the server still receives the PREPARE message).
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        // Taken as a standalone statement so the read guard drops before
        // the miss path takes the write lock (the `if let` scrutinee would
        // otherwise keep it alive through the `else` — self-deadlock).
        let interned = self.templates.read().get(&sql);
        let template = if let Some(t) = interned {
            self.template_hits.fetch_add(1, Ordering::Relaxed);
            t
        } else {
            // The parse is of the *template* text, exactly what a server
            // would see; placeholder ordinals are assigned left to right,
            // matching render order, so binding is order-faithful.
            let parsed = Arc::new(minidb::sql::parse(&sql)?);
            let mut cache = self.templates.write();
            match cache.get(&sql) {
                Some(t) => {
                    self.template_hits.fetch_add(1, Ordering::Relaxed);
                    t
                }
                None => {
                    cache.insert(sql, parsed.clone());
                    parsed
                }
            }
        };
        let bound = Arc::new(minidb::sql::bind_params(&template, &params)?);
        let id = self.next_stmt.fetch_add(1, Ordering::Relaxed) + 1;
        self.statements.write().insert(
            id,
            StatementEntry {
                template,
                params: params.clone(),
                bound,
            },
        );
        Ok(Some(PreparedStatement { id, params }))
    }
    fn execute_prepared(
        &self,
        id: StatementId,
        params: &[Value],
        opts: &ExecOptions,
    ) -> BackendResult<QueryResult> {
        // Clone the Arcs out so the registry lock is not held across
        // execution (a concurrent close must not block the data plane).
        let (plan, rebind) = {
            let statements = self.statements.read();
            // An id missing from the registry — closed, evicted, or wiped
            // by a connection loss — is the typed signal the session layer
            // recovers from by re-preparing exactly once.
            let entry = statements
                .get(&id)
                .ok_or(BackendError::UnknownStatement(id))?;
            if entry.params == params {
                (entry.bound.clone(), None)
            } else {
                (entry.template.clone(), Some(()))
            }
        };
        self.prepared_execs.fetch_add(1, Ordering::Relaxed);
        match rebind {
            // Warm fast path: parameters unchanged since prepare — run
            // the pre-bound plan with no render, parse, or rebind.
            None => self.db.run_query_opts(&plan, opts).map_err(BackendError::from),
            Some(()) => {
                let bound = minidb::sql::bind_params(&plan, params)?;
                self.db.run_query_opts(&bound, opts).map_err(BackendError::from)
            }
        }
    }
    fn close_prepared(&self, id: StatementId) {
        self.statements.write().remove(&id);
    }
    fn minidb(&self) -> Option<&Database> {
        // The engine exists in-process here (only the query path takes
        // the wire), so the oracle may reach it.
        Some(&self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::value::{DataType, Value};
    use minidb::TableSchema;

    fn db() -> Database {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "t",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        for i in 0..20i64 {
            db.insert("t", vec![Value::Int(i), Value::Int(i % 4)]).unwrap();
        }
        db
    }

    #[test]
    fn queries_cross_the_wire() {
        let backend = WireSqlBackend::new(db());
        assert_eq!(backend.round_trips(), 0);
        let q = SelectQuery::star_from("t");
        let res = backend.exec(&q, &ExecOptions::default()).unwrap();
        assert_eq!(res.len(), 20);
        assert_eq!(backend.round_trips(), 1);
        let (res, stats) = backend.exec_timed(&q, &ExecOptions::default());
        assert_eq!(res.unwrap().len(), 20);
        assert!(stats.wall > Duration::ZERO);
        assert_eq!(backend.round_trips(), 2);
    }

    #[test]
    fn prepared_statements_skip_the_text_path() {
        let backend = WireSqlBackend::new(db());
        let q = SelectQuery::star_from("t").filter(minidb::Expr::col_eq(
            minidb::ColumnRef::bare("owner"),
            Value::Int(2),
        ));
        let direct = backend.exec(&q, &ExecOptions::default()).unwrap().rows;
        let trips_after_exec = backend.round_trips();

        let stmt = backend.prepare(&q).unwrap().expect("wire backend prepares");
        assert_eq!(stmt.params, vec![Value::Int(2)]);
        assert_eq!(backend.round_trips(), trips_after_exec + 1);
        assert_eq!(backend.open_statements(), 1);

        for _ in 0..5 {
            let rows = backend
                .execute_prepared(stmt.id, &stmt.params, &ExecOptions::default())
                .unwrap()
                .rows;
            assert_eq!(rows, direct);
        }
        // Executions by id ship no SQL text.
        assert_eq!(backend.round_trips(), trips_after_exec + 1);
        assert_eq!(backend.prepared_execs(), 5);

        // Rebinding with different values reuses the template.
        let other = backend
            .execute_prepared(stmt.id, &[Value::Int(3)], &ExecOptions::default())
            .unwrap()
            .rows;
        assert_eq!(other.len(), 5);
        assert_ne!(other, direct);

        backend.close_prepared(stmt.id);
        assert_eq!(backend.open_statements(), 0);
        assert!(backend
            .execute_prepared(stmt.id, &stmt.params, &ExecOptions::default())
            .is_err());
        // Closing twice is a no-op.
        backend.close_prepared(stmt.id);
    }

    #[test]
    fn templates_interned_across_literal_variants() {
        let backend = WireSqlBackend::new(db());
        for owner in 0..4i64 {
            let q = SelectQuery::star_from("t").filter(minidb::Expr::col_eq(
                minidb::ColumnRef::bare("owner"),
                Value::Int(owner),
            ));
            backend.prepare(&q).unwrap().unwrap();
        }
        assert_eq!(backend.prepares(), 4);
        // Same shape, different literals: parsed once, interned 3 times.
        assert_eq!(backend.template_hits(), 3);
    }

    #[test]
    fn minidb_backend_has_no_server_side_statements() {
        let backend = super::super::MinidbBackend::new(db());
        let q = SelectQuery::star_from("t");
        assert!(backend.prepare(&q).unwrap().is_none());
        assert!(backend
            .execute_prepared(1, &[], &ExecOptions::default())
            .is_err());
        backend.close_prepared(1); // no-op
    }

    #[test]
    fn wire_results_match_in_process_results() {
        let db = db();
        let q = SelectQuery::star_from("t").filter(minidb::Expr::col_eq(
            minidb::ColumnRef::bare("owner"),
            Value::Int(2),
        ));
        let direct = db.run_query(&q).unwrap().rows;
        let backend = WireSqlBackend::new(db);
        let wired = backend.exec(&q, &ExecOptions::default()).unwrap().rows;
        assert_eq!(direct, wired);
        assert_eq!(wired.len(), 5);
    }
}
