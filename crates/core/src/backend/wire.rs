//! The wire-SQL backend: queries cross the seam as **text only**.
//!
//! The paper's SIEVE hands the rewritten query to MySQL/PostgreSQL as a
//! SQL string. [`WireSqlBackend`] reproduces that contract against the
//! embedded engine: every query is rendered
//! ([`minidb::sql::render_query`]), crosses a simulated wire, and is
//! re-parsed ([`minidb::sql::parse`]) before execution — the AST the
//! middleware built never reaches the executor directly. A future
//! `tokio-postgres` backend replaces only the middle of this pipeline
//! (ship the text, receive rows) — everything the middleware relies on,
//! above all render fidelity of guard-CTE-bearing rewrites, is already
//! exercised here and property-tested in `tests/proptest_wire.rs`.
//!
//! The administrative surface (catalog reads, DDL for the policy tables,
//! UDF installation) stays native, as a server deployment would use its
//! own client-library calls for setup rather than the measured query
//! path.

use super::SqlBackend;
use minidb::error::DbResult;
use minidb::exec::{ExecOptions, QueryResult};
use minidb::plan::SelectQuery;
use minidb::schema::TableSchema;
use minidb::stats::ExecStats;
use minidb::table::{Row, RowId};
use minidb::udf::Udf;
use minidb::{Database, DbProfile, TableEntry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An engine reached exclusively through SQL text.
#[derive(Debug)]
pub struct WireSqlBackend {
    db: Database,
    /// Queries that crossed the wire (render → parse → execute).
    round_trips: AtomicU64,
}

impl WireSqlBackend {
    /// Wrap an engine instance behind the textual seam.
    pub fn new(db: Database) -> Self {
        WireSqlBackend {
            db,
            round_trips: AtomicU64::new(0),
        }
    }

    /// The engine on the far side of the wire (read access — oracle and
    /// test use).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable engine access (data loading). Under a middleware, reach it
    /// via [`crate::Sieve::backend_mut`] so the write bumps the epoch.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// How many queries crossed the wire so far. Lets tests assert the
    /// textual path was actually taken rather than silently bypassed.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// The wire itself: serialize, "transmit", deserialize. Every byte of
    /// middleware output must survive this or the backend mis-executes —
    /// which is exactly the property the dual-backend oracle suites pin.
    fn ship(&self, query: &SelectQuery) -> DbResult<SelectQuery> {
        let sql = minidb::sql::render_query(query);
        let parsed = minidb::sql::parse(&sql)?;
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        Ok(parsed)
    }
}

impl SqlBackend for WireSqlBackend {
    fn name(&self) -> &'static str {
        "wire-sql"
    }
    fn exec(&self, query: &SelectQuery, opts: &ExecOptions) -> DbResult<QueryResult> {
        let parsed = self.ship(query)?;
        self.db.run_query_opts(&parsed, opts)
    }
    fn exec_timed(
        &self,
        query: &SelectQuery,
        opts: &ExecOptions,
    ) -> (DbResult<QueryResult>, ExecStats) {
        // The render+parse round trip is genuine dispatch cost; charge it
        // to the measured wall time so timed experiments see the wire.
        let t0 = std::time::Instant::now();
        let parsed = match self.ship(query) {
            Ok(p) => p,
            Err(e) => {
                return (
                    Err(e),
                    ExecStats {
                        counters: Default::default(),
                        wall: t0.elapsed(),
                        simulated_cost: 0.0,
                    },
                )
            }
        };
        let dispatch: Duration = t0.elapsed();
        let (res, mut stats) = self.db.run_timed(&parsed, opts);
        stats.wall += dispatch;
        (res, stats)
    }
    fn table_entry(&self, name: &str) -> DbResult<&TableEntry> {
        self.db.table(name)
    }
    fn has_relation(&self, name: &str) -> bool {
        self.db.has_table(name)
    }
    fn engine_profile(&self) -> DbProfile {
        self.db.profile()
    }
    fn install_udf(&mut self, name: &str, udf: Arc<dyn Udf>) {
        self.db.register_udf(name, udf)
    }
    fn create_relation(&mut self, schema: TableSchema) -> DbResult<()> {
        self.db.create_table(schema)
    }
    fn create_relation_index(&mut self, table: &str, column: &str) -> DbResult<()> {
        self.db.create_index(table, column)
    }
    fn insert_row(&mut self, table: &str, row: Row) -> DbResult<RowId> {
        self.db.insert(table, row)
    }
    fn minidb(&self) -> Option<&Database> {
        // The engine exists in-process here (only the query path takes
        // the wire), so the oracle may reach it.
        Some(&self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::value::{DataType, Value};
    use minidb::TableSchema;

    fn db() -> Database {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "t",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        for i in 0..20i64 {
            db.insert("t", vec![Value::Int(i), Value::Int(i % 4)]).unwrap();
        }
        db
    }

    #[test]
    fn queries_cross_the_wire() {
        let backend = WireSqlBackend::new(db());
        assert_eq!(backend.round_trips(), 0);
        let q = SelectQuery::star_from("t");
        let res = backend.exec(&q, &ExecOptions::default()).unwrap();
        assert_eq!(res.len(), 20);
        assert_eq!(backend.round_trips(), 1);
        let (res, stats) = backend.exec_timed(&q, &ExecOptions::default());
        assert_eq!(res.unwrap().len(), 20);
        assert!(stats.wall > Duration::ZERO);
        assert_eq!(backend.round_trips(), 2);
    }

    #[test]
    fn wire_results_match_in_process_results() {
        let db = db();
        let q = SelectQuery::star_from("t").filter(minidb::Expr::col_eq(
            minidb::ColumnRef::bare("owner"),
            Value::Int(2),
        ));
        let direct = db.run_query(&q).unwrap().rows;
        let backend = WireSqlBackend::new(db);
        let wired = backend.exec(&q, &ExecOptions::default()).unwrap().rows;
        assert_eq!(direct, wired);
        assert_eq!(wired.len(), 5);
    }
}
