//! The paper's baseline enforcement strategies (Section 7, Experiment 3).
//!
//! * **BaselineP** — policies appended to the `WHERE` clause as a DNF:
//!   `⟨query predicate⟩ AND (OC_1 OR … OR OC_n)`. The traditional
//!   policy-as-data rewrite; degrades as query cardinality grows.
//! * **BaselineI** — one forced index scan per policy, combined with
//!   `UNION` (a `WITH` clause whose branches are the policies, with a
//!   `FORCE INDEX` hint). Flat in query cardinality, but pays one probe
//!   per policy.
//! * **BaselineU** — like BaselineP but the policy expression is replaced
//!   by a UDF over all the querier's policies, invoked per tuple with all
//!   attributes. Cheap policy filtering, expensive invocations.
//!
//! All three produce exactly the oracle semantics; only cost differs.

use crate::backend::SqlBackend;
use crate::delta::{delta_call_expr, DeltaRegistry, PartitionHandle};
use crate::policy::Policy;
use crate::error::SieveResult;
use minidb::expr::Expr;
use minidb::plan::{IndexHint, SelectQuery, TableRef, TableSource, WithClause};
use minidb::SelectItem;

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Policies as WHERE-clause DNF.
    P,
    /// Index scan per policy + UNION.
    I,
    /// UDF holding all policies.
    U,
}

/// BaselineP: append the policy DNF to the query's WHERE clause.
pub fn rewrite_baseline_p(
    original: &SelectQuery,
    relation: &str,
    policies: &[&Policy],
) -> SelectQuery {
    let dnf = crate::policy::policy_expression(policies);
    attach_policy_filter(original, relation, dnf, IndexHint::None)
}

/// BaselineI: `WITH rel_pol AS (SELECT * FROM rel FORCE INDEX (owner)
/// WHERE OC_1 OR … OR OC_n)` — one index-driven branch per policy —
/// then the original query over `rel_pol`.
pub fn rewrite_baseline_i(
    original: &SelectQuery,
    relation: &str,
    policies: &[&Policy],
) -> SelectQuery {
    let dnf = crate::policy::policy_expression(policies);
    // Force the per-branch probes through the guardable attributes the
    // policies actually filter on (the owner condition is always there).
    let mut attrs: Vec<String> = vec![crate::policy::OWNER_ATTR.to_string()];
    for p in policies {
        for oc in &p.conditions {
            if !attrs.contains(&oc.attr) {
                attrs.push(oc.attr.clone());
            }
        }
    }
    let mut out = original.clone();
    let with_name = format!("{relation}_pol");
    let body = SelectQuery {
        with: vec![],
        select: vec![SelectItem::Star],
        from: vec![TableRef {
            source: TableSource::Named(relation.to_string()),
            alias: relation.to_string(),
            hint: IndexHint::Force(attrs),
        }],
        predicate: Some(dnf),
        group_by: vec![],
        limit: None,
    };
    for tref in &mut out.from {
        if matches!(&tref.source, TableSource::Named(n) if n == relation) {
            tref.source = TableSource::Named(with_name.clone());
            tref.hint = IndexHint::None;
        }
    }
    let mut with = vec![WithClause {
        name: with_name,
        query: body,
    }];
    with.append(&mut out.with);
    out.with = with;
    out
}

/// BaselineU: register all policies as a single ∆ partition and append a
/// per-tuple UDF call to the WHERE clause. Returns the rewritten query
/// plus the RAII handles pinning the partitions it references — the query
/// is executable for exactly as long as the handles are alive (the UDF
/// must already be installed via [`DeltaRegistry::install`]).
pub fn rewrite_baseline_u(
    backend: &dyn SqlBackend,
    delta: &std::sync::Arc<DeltaRegistry>,
    original: &SelectQuery,
    relation: &str,
    policies: &[&Policy],
) -> SieveResult<(SelectQuery, Vec<PartitionHandle>)> {
    let schema = backend.table_entry(relation)?.schema();
    // Policies with derived conditions cannot go through the UDF; keep
    // them as an inline OR alongside the UDF call.
    let (derived, plain): (Vec<&Policy>, Vec<&Policy>) = policies
        .iter()
        .partition(|p| p.has_derived_condition());
    let mut parts = Vec::new();
    let mut handles = Vec::new();
    if !plain.is_empty() {
        let handle = delta.register_partition(schema, &plain)?;
        parts.push(delta_call_expr(handle.key(), schema));
        handles.push(handle);
    }
    if !derived.is_empty() {
        parts.push(crate::policy::policy_expression(&derived));
    }
    let filter = Expr::any(parts);
    Ok((
        attach_policy_filter(original, relation, filter, IndexHint::None),
        handles,
    ))
}

/// AND a policy filter onto the conjuncts applying to `relation`,
/// qualifying bare columns with the relation's alias when the query has
/// several FROM entries.
fn attach_policy_filter(
    original: &SelectQuery,
    relation: &str,
    filter: Expr,
    hint: IndexHint,
) -> SelectQuery {
    let mut out = original.clone();
    // Find the alias under which the relation appears.
    let alias = out
        .from
        .iter()
        .find(|t| matches!(&t.source, TableSource::Named(n) if n == relation))
        .map(|t| t.alias.clone());
    let filter = match (&alias, out.from.len()) {
        (Some(a), n) if n > 1 => qualify_bare(&filter, a),
        _ => filter,
    };
    out.predicate = Some(match out.predicate.take() {
        Some(p) => Expr::and(p, filter),
        None => filter,
    });
    if hint != IndexHint::None {
        for t in &mut out.from {
            if matches!(&t.source, TableSource::Named(n) if n == relation) {
                t.hint = hint.clone();
            }
        }
    }
    out
}

/// Qualify bare column references with an alias (policy conditions are
/// written bare; in multi-table queries they must pin to the protected
/// relation).
fn qualify_bare(e: &Expr, alias: &str) -> Expr {
    use minidb::expr::ColumnRef;
    match e {
        Expr::Column(c) if c.table.is_none() => {
            Expr::Column(ColumnRef::qualified(alias, c.column.clone()))
        }
        Expr::Column(_) | Expr::Literal(_) | Expr::Param(_) => e.clone(),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(qualify_bare(lhs, alias)),
            rhs: Box::new(qualify_bare(rhs, alias)),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(qualify_bare(expr, alias)),
            low: Box::new(qualify_bare(low, alias)),
            high: Box::new(qualify_bare(high, alias)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(qualify_bare(expr, alias)),
            list: list.iter().map(|x| qualify_bare(x, alias)).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(qualify_bare(expr, alias)),
            negated: *negated,
        },
        Expr::And(v) => Expr::And(v.iter().map(|x| qualify_bare(x, alias)).collect()),
        Expr::Or(v) => Expr::Or(v.iter().map(|x| qualify_bare(x, alias)).collect()),
        Expr::Not(x) => Expr::Not(Box::new(qualify_bare(x, alias))),
        Expr::Udf { name, args } => Expr::Udf {
            name: name.clone(),
            args: args.iter().map(|x| qualify_bare(x, alias)).collect(),
        },
        Expr::ScalarSubquery(_) => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CondPredicate, ObjectCondition, QuerierSpec};
    use crate::semantics::visible_rows;
    use minidb::value::{DataType, Value};
    use minidb::{Database, DbProfile, TableSchema};

    fn setup() -> (Database, Vec<Policy>) {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
            ],
        ))
        .unwrap();
        for i in 0..2000i64 {
            db.insert(
                "wifi_dataset",
                vec![Value::Int(i), Value::Int(i % 40), Value::Int(1000 + i % 8)],
            )
            .unwrap();
        }
        db.create_index("wifi_dataset", "owner").unwrap();
        db.create_index("wifi_dataset", "wifi_ap").unwrap();
        db.analyze("wifi_dataset").unwrap();
        let policies: Vec<Policy> = (0..10)
            .map(|i| {
                let mut p = Policy::new(
                    i as i64,
                    "wifi_dataset",
                    QuerierSpec::User(77),
                    "Any",
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1000 + (i % 4) as i64)),
                    )],
                );
                p.id = i + 1;
                p
            })
            .collect();
        (db, policies)
    }

    #[test]
    fn all_baselines_match_oracle() {
        let (mut db, policies) = setup();
        let delta = DeltaRegistry::new();
        delta.install(&mut db);
        let refs: Vec<&Policy> = policies.iter().collect();
        let q = SelectQuery::star_from("wifi_dataset");
        let mut oracle = visible_rows(&db, "wifi_dataset", &refs).unwrap();
        oracle.sort();
        assert!(!oracle.is_empty());

        let qp = rewrite_baseline_p(&q, "wifi_dataset", &refs);
        let qi = rewrite_baseline_i(&q, "wifi_dataset", &refs);
        let (qu, _pins) = rewrite_baseline_u(&db, &delta, &q, "wifi_dataset", &refs).unwrap();
        for (name, rq) in [("P", qp), ("I", qi), ("U", qu)] {
            let mut rows = db.run_query(&rq).unwrap().rows;
            rows.sort();
            assert_eq!(rows, oracle, "baseline {name} diverged from oracle");
        }
    }

    #[test]
    fn baselines_respect_query_predicate() {
        let (mut db, policies) = setup();
        let delta = DeltaRegistry::new();
        delta.install(&mut db);
        let refs: Vec<&Policy> = policies.iter().collect();
        let q = SelectQuery::star_from("wifi_dataset").filter(Expr::col_eq(
            minidb::ColumnRef::bare("wifi_ap"),
            Value::Int(1001),
        ));
        let oracle: Vec<minidb::Row> = visible_rows(&db, "wifi_dataset", &refs)
            .unwrap()
            .into_iter()
            .filter(|r| r[2] == Value::Int(1001))
            .collect();
        let qp = rewrite_baseline_p(&q, "wifi_dataset", &refs);
        let mut rows = db.run_query(&qp).unwrap().rows;
        rows.sort();
        let mut oracle = oracle;
        oracle.sort();
        assert_eq!(rows, oracle);
    }

    #[test]
    fn baseline_i_uses_with_clause() {
        let (_, policies) = setup();
        let refs: Vec<&Policy> = policies.iter().collect();
        let q = SelectQuery::star_from("wifi_dataset");
        let qi = rewrite_baseline_i(&q, "wifi_dataset", &refs);
        assert_eq!(qi.with.len(), 1);
        assert!(matches!(
            &qi.with[0].query.from[0].hint,
            IndexHint::Force(attrs) if attrs.contains(&"owner".to_string())
        ));
    }

    #[test]
    fn empty_policies_deny_everything() {
        let (mut db, _) = setup();
        let delta = DeltaRegistry::new();
        delta.install(&mut db);
        let q = SelectQuery::star_from("wifi_dataset");
        let qp = rewrite_baseline_p(&q, "wifi_dataset", &[]);
        assert!(db.run_query(&qp).unwrap().is_empty());
        let (qu, _pins) = rewrite_baseline_u(&db, &delta, &q, "wifi_dataset", &[]).unwrap();
        assert!(db.run_query(&qu).unwrap().is_empty());
    }
}
