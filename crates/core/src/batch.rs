//! Batched multi-querier evaluation — amortizing guard generation across
//! a batch of concurrent queriers (the ROADMAP's step from per-querier
//! caching toward "millions of users" traffic; cf. Shakya et al.,
//! "Scalable Enforcement of Fine Grained Access Control Policies").
//!
//! Guard generation for one `(querier, purpose, relation)` splits into a
//! **querier-independent** half — filtering the policy store down to the
//! relation's purpose slice, collecting guardable conditions, estimating
//! their cardinalities from histograms, and the Theorem 1 range-merge
//! sweep — and a **querier-dependent** half: restricting to the querier's
//! relevant policies and the utility-greedy set cover. When many queriers
//! hit the same `(purpose, relation)` in one batch, the shared half runs
//! once per group instead of once per querier.
//!
//! [`crate::middleware::Sieve::prepare_batch`] drives the process:
//! requests are grouped by [`group_requests`] (scope-aware over the whole
//! query tree, so protected reads inside subqueries join their group), a
//! [`SharedGroup`] is built per group, per-querier expressions come from
//! [`SharedGroup::generate_for`], and the results enter the guard cache
//! through one bulk insert. Batching changes the work schedule only —
//! each querier's guarded expression covers exactly its relevant policies,
//! so results are identical to sequential [`crate::middleware::Sieve::execute`]
//! calls.

use crate::cost::CostModel;
use crate::filter::GroupDirectory;
use crate::guard::candidates::{generate_shared_candidates, SharedCandidates};
use crate::guard::{
    owner_fallback_guards, select_guards, GuardSelectionStrategy, GuardedExpression,
};
use crate::policy::{GroupId, Policy, PolicyId, QueryMetadata, UserId};
use crate::rewrite::collect_protected;
use minidb::catalog::TableEntry;
use minidb::plan::SelectQuery;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Group a batch of requests by `(purpose, relation)`: every distinct
/// querier reading the relation under that purpose, in first-seen order.
/// Protected reads are collected over the whole query tree (derived
/// tables, WITH bodies, scalar subqueries) with WITH-scope shadowing
/// resolved, exactly like the rewriter does.
pub fn group_requests<'r>(
    requests: &'r [(QueryMetadata, SelectQuery)],
    protected: &HashSet<String>,
) -> BTreeMap<(String, String), Vec<&'r QueryMetadata>> {
    let mut groups: BTreeMap<(String, String), Vec<&QueryMetadata>> = BTreeMap::new();
    let mut seen: HashSet<(UserId, String, String)> = HashSet::new();
    for (qm, query) in requests {
        for rel in collect_protected(query, protected) {
            if seen.insert((qm.querier, qm.purpose.clone(), rel.clone())) {
                groups
                    .entry((qm.purpose.clone(), rel))
                    .or_default()
                    .push(qm);
            }
        }
    }
    groups
}

/// One `(purpose, relation)` batch group: the relation's policy slice for
/// that purpose indexed for O(querier) lookup, plus the shared candidate
/// set built over the slice's union.
pub struct SharedGroup<'a> {
    /// Protected relation of the group.
    pub relation: String,
    /// Query purpose of the group.
    pub purpose: String,
    /// Policies in the purpose-relation slice (the store scan the batch
    /// performs once instead of once per querier).
    pub slice_len: usize,
    by_user: HashMap<UserId, Vec<&'a Policy>>,
    by_group: HashMap<GroupId, Vec<&'a Policy>>,
    shared: SharedCandidates,
}

/// Build the shared half for one group: scan the policy iterator once,
/// keep the relation+purpose slice, index it by querier spec, and generate
/// candidates over its union.
pub fn build_shared_group<'a>(
    policies: impl IntoIterator<Item = &'a Policy>,
    relation: &str,
    purpose: &str,
    entry: &TableEntry,
    cost: &CostModel,
) -> SharedGroup<'a> {
    let slice: Vec<&Policy> = policies
        .into_iter()
        .filter(|p| p.relation == relation && p.purpose_matches(purpose))
        .collect();
    let shared = generate_shared_candidates(&slice, entry, cost);
    let mut by_user: HashMap<UserId, Vec<&Policy>> = HashMap::new();
    let mut by_group: HashMap<GroupId, Vec<&Policy>> = HashMap::new();
    for p in &slice {
        match &p.querier {
            crate::policy::QuerierSpec::User(u) => by_user.entry(*u).or_default().push(p),
            crate::policy::QuerierSpec::Group(g) => by_group.entry(*g).or_default().push(p),
        }
    }
    SharedGroup {
        relation: relation.to_string(),
        purpose: purpose.to_string(),
        slice_len: slice.len(),
        by_user,
        by_group,
        shared,
    }
}

impl<'a> SharedGroup<'a> {
    /// Shared candidates built for the group.
    pub fn shared_candidates(&self) -> usize {
        self.shared.len()
    }

    /// The querier's relevant policies within the group — equivalent to
    /// [`crate::filter::relevant_policies`] over the full store, but via
    /// indexed lookup on the slice: direct grants by user id, then group
    /// grants through the querier's (transitive) memberships. The index is
    /// a prefilter only; the canonical [`crate::filter::policy_applies`]
    /// makes the final call, so the batched path can never diverge from
    /// sequential enforcement on applicability rules (purpose wildcards,
    /// querier context, whatever comes next). Ascending by policy id.
    pub fn relevant_for(
        &self,
        qm: &QueryMetadata,
        groups: &GroupDirectory,
    ) -> Vec<&'a Policy> {
        let mut out: Vec<&Policy> = Vec::new();
        if let Some(v) = self.by_user.get(&qm.querier) {
            out.extend(v.iter().copied());
        }
        for g in groups.groups_of(qm.querier) {
            if let Some(v) = self.by_group.get(&g) {
                out.extend(v.iter().copied());
            }
        }
        out.retain(|p| crate::filter::policy_applies(p, qm, groups));
        out.sort_by_key(|p| p.id);
        out.dedup_by_key(|p| p.id);
        out
    }

    /// Generate one querier's guarded expression from the shared phase:
    /// only the subset restriction and the set cover run per querier.
    pub fn generate_for(
        &self,
        qm: &QueryMetadata,
        groups: &GroupDirectory,
        entry: &TableEntry,
        cost: &CostModel,
        strategy: GuardSelectionStrategy,
    ) -> GuardedExpression {
        debug_assert!(qm.purpose == self.purpose, "request grouped by purpose");
        let relevant = self.relevant_for(qm, groups);
        let guards = match strategy {
            GuardSelectionStrategy::CostOptimal => {
                let subset: BTreeSet<PolicyId> = relevant.iter().map(|p| p.id).collect();
                let cands = self.shared.restrict(&subset);
                select_guards(cands, &relevant, entry, cost)
            }
            GuardSelectionStrategy::OwnerOnly => {
                owner_fallback_guards(relevant.iter().map(|p| (p.id, p.owner)), entry)
            }
        };
        GuardedExpression {
            relation: self.relation.clone(),
            querier: qm.querier,
            purpose: qm.purpose.clone(),
            guards,
        }
    }
}

/// Per-group outcome of a batch prepare.
#[derive(Debug, Clone)]
pub struct BatchGroupReport {
    /// Query purpose of the group.
    pub purpose: String,
    /// Protected relation of the group.
    pub relation: String,
    /// Distinct queriers in the group.
    pub queriers: usize,
    /// Guarded expressions generated (the rest were already fresh).
    pub generated: usize,
    /// Policies in the purpose-relation slice, scanned once per group.
    pub slice_policies: usize,
    /// Shared candidates built once per group.
    pub shared_candidates: usize,
    /// Guard partitions whose compilation (inline DNF or ∆ registration)
    /// was reused from another querier of this group instead of redone —
    /// the batched-fragment-compilation win.
    pub partition_reuses: usize,
}

/// Outcome of [`crate::middleware::Sieve::prepare_batch`].
#[derive(Debug, Clone, Default)]
pub struct BatchPrepareReport {
    /// Per-group breakdown.
    pub groups: Vec<BatchGroupReport>,
    /// Guarded expressions generated across all groups.
    pub generated: usize,
    /// `(querier, purpose, relation)` keys already fresh in the cache.
    pub reused: usize,
    /// Rewrite fragments compiled alongside the generated expressions
    /// (one per generated expression — the first post-batch rewrite per
    /// querier is a pure fragment hit).
    pub fragments_compiled: usize,
    /// Sum of [`BatchGroupReport::partition_reuses`] across groups.
    pub partition_reuses: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::relevant_policies;
    use crate::policy::{CondPredicate, ObjectCondition, QuerierSpec};
    use minidb::value::{DataType, Value};
    use minidb::{Database, DbProfile, TableSchema};

    fn wifi_db() -> Database {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
            ],
        ))
        .unwrap();
        for i in 0..2000i64 {
            db.insert(
                "wifi_dataset",
                vec![Value::Int(i), Value::Int(i % 40), Value::Int(1000 + i % 8)],
            )
            .unwrap();
        }
        db.create_index("wifi_dataset", "owner").unwrap();
        db.create_index("wifi_dataset", "wifi_ap").unwrap();
        db.analyze("wifi_dataset").unwrap();
        db
    }

    fn corpus() -> Vec<Policy> {
        let mut out = Vec::new();
        let mut id = 1u64;
        // Group 7 grant shared by every member, plus per-user grants.
        for owner in 0..10i64 {
            let mut p = Policy::new(
                owner,
                "wifi_dataset",
                QuerierSpec::Group(7),
                "Analytics",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Eq(Value::Int(1001)),
                )],
            );
            p.id = id;
            id += 1;
            out.push(p);
        }
        for (owner, user) in [(11i64, 500i64), (12, 501), (13, 500)] {
            let mut p = Policy::new(
                owner,
                "wifi_dataset",
                QuerierSpec::User(user),
                "Any",
                vec![],
            );
            p.id = id;
            id += 1;
            out.push(p);
        }
        // A different relation and a different purpose: outside the slice.
        let mut p = Policy::new(9, "other", QuerierSpec::User(500), "Analytics", vec![]);
        p.id = id;
        id += 1;
        out.push(p);
        let mut p = Policy::new(9, "wifi_dataset", QuerierSpec::User(500), "Safety", vec![]);
        p.id = id;
        out.push(p);
        out
    }

    #[test]
    fn group_requests_groups_by_purpose_relation_and_dedups_queriers() {
        let protected: HashSet<String> = ["wifi_dataset".to_string()].into();
        let q = SelectQuery::star_from("wifi_dataset");
        let requests = vec![
            (QueryMetadata::new(500, "Analytics"), q.clone()),
            (QueryMetadata::new(501, "Analytics"), q.clone()),
            (QueryMetadata::new(500, "Analytics"), q.clone()), // duplicate
            (QueryMetadata::new(500, "Safety"), q.clone()),
            // Unprotected relation contributes nothing.
            (QueryMetadata::new(502, "Analytics"), SelectQuery::star_from("other")),
        ];
        let groups = group_requests(&requests, &protected);
        assert_eq!(groups.len(), 2);
        let a = &groups[&("Analytics".to_string(), "wifi_dataset".to_string())];
        assert_eq!(a.iter().map(|qm| qm.querier).collect::<Vec<_>>(), vec![500, 501]);
        let s = &groups[&("Safety".to_string(), "wifi_dataset".to_string())];
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn group_requests_sees_nested_protected_reads() {
        let protected: HashSet<String> = ["wifi_dataset".to_string()].into();
        let inner = SelectQuery::star_from("wifi_dataset");
        let nested = SelectQuery {
            from: vec![minidb::plan::TableRef {
                source: minidb::plan::TableSource::Derived(Box::new(inner)),
                alias: "d".into(),
                hint: minidb::plan::IndexHint::None,
            }],
            ..SelectQuery::star_from("ignored")
        };
        let requests = vec![(QueryMetadata::new(500, "Analytics"), nested)];
        let groups = group_requests(&requests, &protected);
        assert_eq!(groups.len(), 1, "derived-table read must join its group");
    }

    #[test]
    fn relevant_for_matches_full_store_filter() {
        let db = wifi_db();
        let entry = db.table("wifi_dataset").unwrap();
        let corpus = corpus();
        let mut groups = GroupDirectory::new();
        groups.add_member(7, 500);
        groups.add_member(7, 777);
        let group =
            build_shared_group(corpus.iter(), "wifi_dataset", "Analytics", entry, &CostModel::default());
        for querier in [500i64, 501, 777, 999] {
            let qm = QueryMetadata::new(querier, "Analytics");
            let mut expect: Vec<u64> =
                relevant_policies(corpus.iter(), "wifi_dataset", &qm, &groups)
                    .iter()
                    .map(|p| p.id)
                    .collect();
            expect.sort_unstable();
            let got: Vec<u64> = group.relevant_for(&qm, &groups).iter().map(|p| p.id).collect();
            assert_eq!(got, expect, "querier {querier}");
        }
    }

    #[test]
    fn generate_for_covers_exactly_the_relevant_policies() {
        let db = wifi_db();
        let entry = db.table("wifi_dataset").unwrap();
        let corpus = corpus();
        let mut groups = GroupDirectory::new();
        groups.add_member(7, 500);
        let group =
            build_shared_group(corpus.iter(), "wifi_dataset", "Analytics", entry, &CostModel::default());
        let qm = QueryMetadata::new(500, "Analytics");
        let ge = group.generate_for(
            &qm,
            &groups,
            entry,
            &CostModel::default(),
            GuardSelectionStrategy::CostOptimal,
        );
        let covered = ge.covered_policies();
        let expect: BTreeSet<PolicyId> = group
            .relevant_for(&qm, &groups)
            .iter()
            .map(|p| p.id)
            .collect();
        assert_eq!(covered, expect, "exactly-once cover of the relevant set");
        let total: usize = ge.guards.iter().map(|g| g.partition_size()).sum();
        assert_eq!(total, expect.len(), "partitions disjoint");
    }
}
