//! The compile-once guard cache — concurrent edition.
//!
//! Guarded-expression generation (candidate merging + set cover) and
//! rewrite-fragment compilation (policy DNF construction, ∆ partition
//! registration) are the two expensive steps between a query arriving and
//! the engine running it. Both depend only on `(querier, purpose,
//! relation)` — not on the query — so [`GuardCache`] stores both per key
//! and the middleware's hot path reduces to a hash lookup plus cheap
//! per-query assembly. Entries are invalidated precisely through
//! [`crate::service::SieveService::add_policy`]: a new policy marks
//! exactly the keys it affects outdated, and stale entries regenerate
//! lazily per the configured [`crate::dynamic::RegenerationPolicy`]
//! (paper Section 6).
//!
//! **Concurrency.** The map is split into [`SHARD_COUNT`] shards, each
//! behind its own `RwLock`; a warm hit takes only its shard's *read*
//! lock (entry access goes through closures so the guard never escapes),
//! counters are relaxed atomics, and the LRU clock is a shared atomic
//! bumped on every access — so the many-reader case the middleware
//! serves ("millions of queriers, mostly warm") never serializes on a
//! single lock. Writers (generation, invalidation, eviction) take one
//! shard's write lock at a time; `add_policy`'s invalidation sweep walks
//! the shards sequentially without ever holding two locks at once.
//!
//! **Eviction.** Each shard holds at most `GUARD_CACHE_CAP /
//! SHARD_COUNT` entries; past the bound the shard evicts its
//! least-recently-*used* entries (reads count — the LRU stamp is bumped
//! on every cache hit, not just on insertion), so a hot key survives
//! unbounded churn of one-shot keys. Evicted entries drop their compiled
//! fragments, whose ∆ partitions are freed automatically by their RAII
//! [`crate::delta::PartitionHandle`]s once no in-flight query pins them.

use crate::guard::GuardedExpression;
use crate::policy::{PolicyId, UserId};
use crate::rewrite::{DeltaMode, GuardFragment};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: the triple a guarded expression is generated for.
pub type GuardCacheKey = (UserId, String, String);

/// Observability counters (monotonic over the cache's lifetime).
///
/// The counters are kept consistent with a ground-truth trace (asserted in
/// `tests/guard_cache.rs`): every expression-level lookup is exactly one
/// of `hits`, `misses` (no entry existed — cold, or previously evicted),
/// or `regenerations` (an outdated entry was replaced in place). Entries
/// dropped by LRU eviction are counted in `evictions`, so generated-but-
/// no-longer-cached work is visible instead of silently skewing the
/// hit/miss ratio. Under concurrent drivers the counters are exact in
/// aggregate (atomic increments) but a snapshot taken mid-operation may
/// catch a lookup between its two bumps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardCacheStats {
    /// Lookups that found a fresh guarded expression.
    pub hits: u64,
    /// Lookups that generated an expression because no entry existed.
    pub misses: u64,
    /// Lookups that regenerated an existing outdated entry.
    pub regenerations: u64,
    /// Entries marked outdated by policy insertions.
    pub invalidations: u64,
    /// Entries dropped by LRU eviction (their next lookup is a miss even
    /// though they were generated before).
    pub evictions: u64,
    /// Rewrite fragments compiled (the work warm queries skip).
    pub fragment_builds: u64,
    /// Lookups served by an already-compiled fragment.
    pub fragment_hits: u64,
    /// Generations avoided by single-flight coalescing: lookups that
    /// found the key mid-generation by another thread, waited, and reused
    /// the freshly published entry instead of generating their own.
    pub coalesced: u64,
}

impl GuardCacheStats {
    /// Total guarded-expression generations (`misses + regenerations`) —
    /// must equal the middleware's `generations` counter.
    pub fn generations(&self) -> u64 {
        self.misses + self.regenerations
    }

    /// Total expression-level lookups (`hits + misses + regenerations`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.regenerations
    }
}

/// A compiled rewrite fragment plus the state it was built against, so
/// staleness is detectable without comparing expressions.
#[derive(Debug)]
pub struct CachedFragment {
    /// The compiled fragment.
    pub fragment: Arc<GuardFragment>,
    /// `pending.len()` at compile time: a changed pending set means the
    /// effective expression gained branches the fragment lacks.
    pub pending_len: usize,
    /// Inline-vs-∆ mode at compile time.
    pub delta_mode: DeltaMode,
}

/// One cache entry: the generated expression, the effective expression
/// queries actually run under (base + pending-policy fallback branches),
/// and the compiled rewrite fragment.
#[derive(Debug)]
pub struct CachedGuard {
    /// The expression as generated (no pending branches).
    pub base: Arc<GuardedExpression>,
    /// Base plus per-owner branches for pending policies; equals `base`
    /// while `pending` is empty.
    pub effective: Arc<GuardedExpression>,
    /// `pending.len()` reflected in `effective`.
    pub effective_pending_len: usize,
    /// Compiled fragment of `effective`, if built.
    pub fragment: Option<CachedFragment>,
    /// True once a relevant policy arrived after generation.
    pub outdated: bool,
    /// Policies inserted since generation that apply to this key.
    pub pending: Vec<PolicyId>,
    /// The middleware's backend write-epoch at generation time. An entry
    /// whose epoch trails the current one was generated against data (or
    /// a schema) that may have been mutated out-of-band, so it must be
    /// regenerated before use — its row estimates, owner-fallback guards
    /// and compiled ∆ partitions are all suspect.
    pub epoch: u64,
    /// LRU stamp: the cache's access clock at the entry's last touch
    /// (insert, read or write). Atomic so warm hits can bump it under the
    /// shard's *read* lock.
    last_used: AtomicU64,
}

impl CachedGuard {
    /// Fresh entry for a newly generated expression.
    pub fn new(base: Arc<GuardedExpression>, epoch: u64) -> Self {
        CachedGuard {
            effective: Arc::clone(&base),
            base,
            effective_pending_len: 0,
            fragment: None,
            outdated: false,
            pending: Vec::new(),
            epoch,
            last_used: AtomicU64::new(0),
        }
    }

    /// True iff the compiled fragment (if any) matches the current
    /// effective expression and delta mode.
    pub fn fragment_fresh(&self, delta_mode: DeltaMode) -> bool {
        self.fragment.as_ref().is_some_and(|f| {
            f.pending_len == self.pending.len() && f.delta_mode == delta_mode
        })
    }
}

/// Number of shards. Sixteen read-write locks are plenty for the core
/// counts this tree targets while keeping the per-shard LRU scans short.
pub const SHARD_COUNT: usize = 16;

/// Bound on cached entries across all shards. Each entry pins its
/// fragment's ∆ partitions in the registry, so the cache must stay
/// bounded even with millions of distinct queriers. The bound is enforced
/// per shard (`GUARD_CACHE_CAP / SHARD_COUNT` each) by LRU eviction.
pub const GUARD_CACHE_CAP: usize = 4096;

const SHARD_CAP: usize = GUARD_CACHE_CAP / SHARD_COUNT;

#[derive(Debug, Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    regenerations: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    fragment_builds: AtomicU64,
    fragment_hits: AtomicU64,
    coalesced: AtomicU64,
}

type Shard = HashMap<GuardCacheKey, CachedGuard>;

/// One batched-insert entry: the key, its generated expression, and
/// (on the batched-compile path) the pre-built rewrite fragment.
pub type CompiledEntry = (GuardCacheKey, Arc<GuardedExpression>, Option<CachedFragment>);

/// The cache proper: sharded keyed entries plus counters.
#[derive(Debug)]
pub struct GuardCache {
    shards: Vec<RwLock<Shard>>,
    /// Monotonic access clock feeding the LRU stamps.
    clock: AtomicU64,
    stats: StatCells,
    /// Keys with a guard generation in flight (single-flight registry).
    /// A std mutex because generation waiters park on `inflight_cv`,
    /// which needs the std lock type.
    inflight: std::sync::Mutex<std::collections::HashSet<GuardCacheKey>>,
    inflight_cv: std::sync::Condvar,
}

impl Default for GuardCache {
    fn default() -> Self {
        GuardCache {
            shards: (0..SHARD_COUNT).map(|_| RwLock::new(HashMap::new())).collect(),
            clock: AtomicU64::new(0),
            stats: StatCells::default(),
            inflight: std::sync::Mutex::new(std::collections::HashSet::new()),
            inflight_cv: std::sync::Condvar::new(),
        }
    }
}

/// Exclusive claim on generating one guard key, handed out by
/// [`GuardCache::begin_generation`]. Dropping the ticket (normally, on
/// error, or on unwind) releases the claim and wakes every waiter.
pub struct GenerationTicket<'a> {
    cache: &'a GuardCache,
    key: GuardCacheKey,
}

impl Drop for GenerationTicket<'_> {
    fn drop(&mut self) {
        let mut set = self
            .cache
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set.remove(&self.key);
        self.cache.inflight_cv.notify_all();
    }
}

impl GuardCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_index(key: &GuardCacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    fn shard_of(&self, key: &GuardCacheKey) -> &RwLock<Shard> {
        &self.shards[Self::shard_index(key)]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Number of cached entries (sums the shards; approximate while
    /// writers are active).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True iff no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Counters snapshot.
    pub fn stats(&self) -> GuardCacheStats {
        GuardCacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            regenerations: self.stats.regenerations.load(Ordering::Relaxed),
            invalidations: self.stats.invalidations.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            fragment_builds: self.stats.fragment_builds.load(Ordering::Relaxed),
            fragment_hits: self.stats.fragment_hits.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Claim the exclusive right to generate `key`, blocking while another
    /// thread holds the claim. This is the **single-flight** guard against
    /// the cold-key stampede: N sessions missing the same `(querier,
    /// purpose, relation)` serialize here, the first generates, and the
    /// rest — woken when its [`GenerationTicket`] drops — re-check the
    /// cache and find the published entry instead of generating N-1
    /// duplicates. Callers must re-validate need-to-generate after the
    /// claim is granted.
    pub fn begin_generation(&self, key: &GuardCacheKey) -> GenerationTicket<'_> {
        let mut set = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        while set.contains(key) {
            set = self
                .inflight_cv
                .wait(set)
                .unwrap_or_else(|e| e.into_inner());
        }
        set.insert(key.clone());
        GenerationTicket {
            cache: self,
            key: key.clone(),
        }
    }

    /// Count a generation avoided by single-flight coalescing (the caller
    /// waited on [`GuardCache::begin_generation`] and found the key fresh).
    pub fn record_coalesced(&self) {
        self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Run `f` over the entry for `key` under the shard's **read** lock
    /// (the warm-path primitive: concurrent readers of different — or the
    /// same — keys proceed in parallel). Touches the LRU stamp.
    pub fn read<R>(&self, key: &GuardCacheKey, f: impl FnOnce(&CachedGuard) -> R) -> Option<R> {
        let shard = self.shard_of(key).read();
        let entry = shard.get(key)?;
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(f(entry))
    }

    /// Run `f` over the entry for `key` under the shard's write lock
    /// (pending folds, fragment installs). Touches the LRU stamp.
    pub fn write<R>(
        &self,
        key: &GuardCacheKey,
        f: impl FnOnce(&mut CachedGuard) -> R,
    ) -> Option<R> {
        let mut shard = self.shard_of(key).write();
        let entry = shard.get_mut(key)?;
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(f(entry))
    }

    /// True iff an entry exists for `key` (does not touch the LRU stamp).
    pub fn contains(&self, key: &GuardCacheKey) -> bool {
        self.shard_of(key).read().contains_key(key)
    }

    /// Insert (replacing) an entry for a freshly generated expression,
    /// counting it as a miss (no prior entry) or a regeneration (an
    /// outdated entry replaced), then LRU-evict the shard down to its cap
    /// (the new entry is never the victim). Displaced fragments free
    /// their ∆ partitions via their RAII handles.
    pub fn insert_generated(&self, key: GuardCacheKey, base: Arc<GuardedExpression>, epoch: u64) {
        self.insert_generated_bulk(vec![(key, base)], epoch)
    }

    /// Bulk variant of [`GuardCache::insert_generated`] for batched
    /// multi-querier warm-population: counts each entry exactly once
    /// (miss or regeneration, decided against the pre-insert state). The
    /// whole batch always lands — a batch is populated for immediate use
    /// and must never evict itself — so a shard may transiently exceed
    /// its cap when a single batch is larger than it; the next capping
    /// insert restores the bound.
    pub fn insert_generated_bulk(
        &self,
        items: Vec<(GuardCacheKey, Arc<GuardedExpression>)>,
        epoch: u64,
    ) {
        self.insert_generated_bulk_compiled(
            items.into_iter().map(|(k, b)| (k, b, None)).collect(),
            epoch,
        )
    }

    /// [`GuardCache::insert_generated_bulk`] with each entry's rewrite
    /// fragment already compiled (the batched compile path: fragments are
    /// built group-at-a-time with cross-querier partition sharing, then
    /// land here alongside their expressions so the first post-batch
    /// rewrite is a pure fragment hit). Each supplied fragment counts as
    /// one `fragment_builds` — identical accounting to the lazy path.
    pub fn insert_generated_bulk_compiled(&self, items: Vec<CompiledEntry>, epoch: u64) {
        // Dedup repeated keys (last write wins, as serial inserts would)
        // so each key is counted once.
        let mut index: HashMap<GuardCacheKey, usize> = HashMap::new();
        let mut deduped: Vec<CompiledEntry> = Vec::new();
        for (key, base, fragment) in items {
            match index.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    deduped[*e.get()].1 = base;
                    deduped[*e.get()].2 = fragment;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(deduped.len());
                    deduped.push((key, base, fragment));
                }
            }
        }
        // Group by shard so each shard is locked exactly once.
        let mut by_shard: HashMap<usize, Vec<CompiledEntry>> = HashMap::new();
        for (key, base, fragment) in deduped {
            by_shard
                .entry(Self::shard_index(&key))
                .or_default()
                .push((key, base, fragment));
        }
        for (shard_idx, batch) in by_shard {
            let mut shard = self.shards[shard_idx].write();
            let batch_keys: Vec<GuardCacheKey> =
                batch.iter().map(|(k, _, _)| k.clone()).collect();
            for (key, base, fragment) in batch {
                let mut entry = CachedGuard::new(base, epoch);
                entry.last_used = AtomicU64::new(self.tick());
                if fragment.is_some() {
                    entry.fragment = fragment;
                    self.stats.fragment_builds.fetch_add(1, Ordering::Relaxed);
                }
                let replaced = shard.insert(key, entry).is_some();
                if replaced {
                    self.stats.regenerations.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.evict_lru(&mut shard, &batch_keys);
        }
    }

    /// Evict least-recently-used entries until the shard fits its cap,
    /// never evicting a key in `keep`.
    fn evict_lru(&self, shard: &mut Shard, keep: &[GuardCacheKey]) {
        while shard.len() > SHARD_CAP.max(keep.len()) {
            let victim = shard
                .iter()
                .filter(|(k, _)| !keep.contains(k))
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    shard.remove(&k);
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Count a hit on the guarded-expression level.
    pub fn record_hit(&self) {
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a fragment-level hit.
    pub fn record_fragment_hit(&self) {
        self.stats.fragment_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a fragment build.
    pub fn record_fragment_build(&self) {
        self.stats.fragment_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark every entry selected by `affects` outdated, recording `policy`
    /// as pending on it. Walks the shards one write lock at a time.
    /// Returns the number of entries invalidated.
    pub fn invalidate_where(
        &self,
        policy: PolicyId,
        mut affects: impl FnMut(&GuardCacheKey) -> bool,
    ) -> usize {
        let mut n = 0;
        for s in &self.shards {
            let mut shard = s.write();
            for (key, entry) in shard.iter_mut() {
                if affects(key) {
                    entry.outdated = true;
                    entry.pending.push(policy);
                    n += 1;
                }
            }
        }
        self.stats.invalidations.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Drop every entry. Fragments' ∆ partitions are freed by their RAII
    /// handles as the entries drop (deferred past any in-flight pins).
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardedExpression;

    fn ge(relation: &str) -> Arc<GuardedExpression> {
        Arc::new(GuardedExpression {
            relation: relation.to_string(),
            querier: 1,
            purpose: "Any".into(),
            guards: vec![],
        })
    }

    fn key(querier: i64, relation: &str) -> GuardCacheKey {
        (querier, "Any".to_string(), relation.to_string())
    }

    #[test]
    fn insert_and_hit_counting() {
        let c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        assert_eq!(c.stats().misses, 1);
        assert!(c.read(&key(1, "r"), |_| ()).is_some());
        c.record_hit();
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn invalidate_where_marks_matching_entries() {
        let c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        c.insert_generated(key(2, "r"), ge("r"), 0);
        c.insert_generated(key(1, "s"), ge("s"), 0);
        let n = c.invalidate_where(42, |(_, _, rel)| rel == "r");
        assert_eq!(n, 2);
        assert!(c.read(&key(1, "r"), |e| e.outdated).unwrap());
        assert_eq!(c.read(&key(2, "r"), |e| e.pending.clone()).unwrap(), vec![42]);
        assert!(!c.read(&key(1, "s"), |e| e.outdated).unwrap());
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn cap_bounds_entries_via_lru_eviction() {
        let c = GuardCache::new();
        // Saturate well past the global cap: the cache must stay bounded,
        // shed the overflow as evictions, and keep every *recently used*
        // key resident.
        for i in 0..(GUARD_CACHE_CAP as i64 * 2) {
            c.insert_generated(key(i, "r"), ge("r"), 0);
        }
        assert!(c.len() <= GUARD_CACHE_CAP, "len {} > cap", c.len());
        let s = c.stats();
        assert_eq!(s.misses, GUARD_CACHE_CAP as u64 * 2);
        assert_eq!(s.evictions as usize, GUARD_CACHE_CAP * 2 - c.len());
    }

    #[test]
    fn lru_on_access_protects_hot_keys_from_churn() {
        let c = GuardCache::new();
        let hot = key(-1, "hot");
        c.insert_generated(hot.clone(), ge("hot"), 0);
        // Churn an order of magnitude more one-shot keys than the cache
        // holds, touching the hot key between insertions. FIFO or
        // LRU-on-*insert* would rotate it out; LRU-on-access must not.
        for i in 0..(GUARD_CACHE_CAP as i64 * 4) {
            c.insert_generated(key(i, "churn"), ge("churn"), 0);
            assert!(
                c.read(&hot, |_| ()).is_some(),
                "hot key evicted after {i} churn insertions"
            );
        }
        assert!(c.len() <= GUARD_CACHE_CAP);
    }

    #[test]
    fn bulk_insert_counts_each_entry_once() {
        let c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        // Bulk over one existing + two new keys: per-key miss/regeneration
        // accounting against the pre-insert state.
        c.insert_generated_bulk(
            vec![
                (key(1, "r"), ge("r")),
                (key(2, "r"), ge("r")),
                (key(3, "r"), ge("r")),
            ],
            0,
        );
        let s = c.stats();
        assert_eq!(s.misses, 3, "1 cold insert + 2 new bulk keys");
        assert_eq!(s.regenerations, 1, "key 1 replaced in place");
        assert_eq!(s.evictions, 0);
        assert_eq!(s.generations(), 4);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn bulk_insert_larger_than_cap_lands_whole() {
        let c = GuardCache::new();
        // A batch bigger than the whole cache: every batch entry must land
        // (transient overflow) — a batch is populated for immediate use.
        let batch: Vec<_> = (0..(GUARD_CACHE_CAP as i64 + 512))
            .map(|i| (key(i, "r"), ge("r")))
            .collect();
        let n = batch.len();
        c.insert_generated_bulk(batch, 0);
        assert_eq!(c.stats().misses, n as u64);
        for i in 0..(GUARD_CACHE_CAP as i64 + 512) {
            assert!(c.read(&key(i, "r"), |_| ()).is_some(), "batch key {i} missing");
        }
        // The next capping single insert restores its shard's bound.
        c.insert_generated(key(-7, "r"), ge("r"), 0);
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn bulk_insert_dedups_repeated_keys() {
        let c = GuardCache::new();
        // The same key three times plus one distinct: two entries, two
        // misses, no phantom counts.
        c.insert_generated_bulk(
            vec![
                (key(1, "r"), ge("r")),
                (key(1, "r"), ge("r")),
                (key(1, "r"), ge("r")),
                (key(2, "r"), ge("r")),
            ],
            0,
        );
        assert_eq!(c.len(), 2);
        let s = c.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.regenerations, 0);
        assert_eq!(s.generations(), 2);
    }

    #[test]
    fn regeneration_of_existing_key_is_not_a_miss() {
        let c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        c.invalidate_where(9, |_| true);
        c.insert_generated(key(1, "r"), ge("r"), 0);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.regenerations, 1);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.generations(), 2);
    }

    #[test]
    fn entries_record_their_generation_epoch() {
        let c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 3);
        assert_eq!(c.read(&key(1, "r"), |e| e.epoch).unwrap(), 3);
        // Regeneration at a later epoch replaces the stamp.
        c.insert_generated(key(1, "r"), ge("r"), 5);
        assert_eq!(c.read(&key(1, "r"), |e| e.epoch).unwrap(), 5);
        assert_eq!(c.stats().regenerations, 1);
    }

    #[test]
    fn fragment_freshness_tracks_pending_and_mode() {
        let c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        c.write(&key(1, "r"), |e| {
            assert!(!e.fragment_fresh(DeltaMode::Auto), "no fragment yet");
            e.fragment = Some(CachedFragment {
                fragment: Arc::new(GuardFragment {
                    branches: vec![],
                    guard_attrs: vec![],
                    est_guard_rows: 0.0,
                    delta_guards: 0,
                    partitions: vec![],
                    delta_mode: DeltaMode::Auto,
                }),
                pending_len: 0,
                delta_mode: DeltaMode::Auto,
            });
            assert!(e.fragment_fresh(DeltaMode::Auto));
            assert!(!e.fragment_fresh(DeltaMode::Always), "mode change stales");
            e.pending.push(7);
            assert!(!e.fragment_fresh(DeltaMode::Auto), "pending change stales");
        });
    }

    #[test]
    fn concurrent_readers_and_writers_keep_counters_consistent() {
        let c = Arc::new(GuardCache::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200i64 {
                        let k = key(t * 1000 + i, "r");
                        c.insert_generated(k.clone(), ge("r"), 0);
                        assert!(c.read(&k, |_| ()).is_some());
                        c.record_hit();
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.misses, 800);
        assert_eq!(s.hits, 800);
        assert_eq!(c.len(), 800);
    }
}
