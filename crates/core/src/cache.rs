//! The compile-once guard cache.
//!
//! Guarded-expression generation (candidate merging + set cover) and
//! rewrite-fragment compilation (policy DNF construction, ∆ partition
//! registration) are the two expensive steps between a query arriving and
//! the engine running it. Both depend only on `(querier, purpose,
//! relation)` — not on the query — so [`GuardCache`] stores both per key
//! and the middleware's hot path reduces to a hash lookup plus cheap
//! per-query assembly. Entries are invalidated precisely through
//! [`crate::middleware::Sieve::add_policy`]: a new policy marks exactly
//! the keys it affects outdated, and stale entries regenerate lazily per
//! the configured [`crate::dynamic::RegenerationPolicy`] (paper Section 6).

use crate::guard::GuardedExpression;
use crate::policy::{PolicyId, UserId};
use crate::rewrite::{DeltaMode, GuardFragment};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: the triple a guarded expression is generated for.
pub type GuardCacheKey = (UserId, String, String);

/// Observability counters (monotonic over the cache's lifetime).
///
/// The counters are kept consistent with a ground-truth trace (asserted in
/// `tests/guard_cache.rs`): every expression-level lookup is exactly one
/// of `hits`, `misses` (no entry existed — cold, or previously evicted),
/// or `regenerations` (an outdated entry was replaced in place). Entries
/// dropped by the cap purge are counted in `evictions`, so generated-but-
/// no-longer-cached work is visible instead of silently skewing the
/// hit/miss ratio.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardCacheStats {
    /// Lookups that found a fresh guarded expression.
    pub hits: u64,
    /// Lookups that generated an expression because no entry existed.
    pub misses: u64,
    /// Lookups that regenerated an existing outdated entry.
    pub regenerations: u64,
    /// Entries marked outdated by policy insertions.
    pub invalidations: u64,
    /// Entries dropped by the cap purge (their next lookup is a miss even
    /// though they were generated before).
    pub evictions: u64,
    /// Rewrite fragments compiled (the work warm queries skip).
    pub fragment_builds: u64,
    /// Lookups served by an already-compiled fragment.
    pub fragment_hits: u64,
}

impl GuardCacheStats {
    /// Total guarded-expression generations (`misses + regenerations`) —
    /// must equal the middleware's `generations` counter.
    pub fn generations(&self) -> u64 {
        self.misses + self.regenerations
    }

    /// Total expression-level lookups (`hits + misses + regenerations`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.regenerations
    }
}

/// A compiled rewrite fragment plus the state it was built against, so
/// staleness is detectable without comparing expressions.
#[derive(Debug)]
pub struct CachedFragment {
    /// The compiled fragment.
    pub fragment: Arc<GuardFragment>,
    /// `pending.len()` at compile time: a changed pending set means the
    /// effective expression gained branches the fragment lacks.
    pub pending_len: usize,
    /// Inline-vs-∆ mode at compile time.
    pub delta_mode: DeltaMode,
}

/// One cache entry: the generated expression, the effective expression
/// queries actually run under (base + pending-policy fallback branches),
/// and the compiled rewrite fragment.
#[derive(Debug)]
pub struct CachedGuard {
    /// The expression as generated (no pending branches).
    pub base: Arc<GuardedExpression>,
    /// Base plus per-owner branches for pending policies; equals `base`
    /// while `pending` is empty.
    pub effective: Arc<GuardedExpression>,
    /// `pending.len()` reflected in `effective`.
    pub effective_pending_len: usize,
    /// Compiled fragment of `effective`, if built.
    pub fragment: Option<CachedFragment>,
    /// True once a relevant policy arrived after generation.
    pub outdated: bool,
    /// Policies inserted since generation that apply to this key.
    pub pending: Vec<PolicyId>,
    /// The middleware's backend write-epoch at generation time. An entry
    /// whose epoch trails the current one was generated against data (or
    /// a schema) that may have been mutated out-of-band via
    /// `Sieve::db_mut`/`backend_mut`, so it must be regenerated before
    /// use — its row estimates, owner-fallback guards and compiled ∆
    /// partitions are all suspect.
    pub epoch: u64,
}

impl CachedGuard {
    /// Fresh entry for a newly generated expression.
    pub fn new(base: Arc<GuardedExpression>, epoch: u64) -> Self {
        CachedGuard {
            effective: Arc::clone(&base),
            base,
            effective_pending_len: 0,
            fragment: None,
            outdated: false,
            pending: Vec::new(),
            epoch,
        }
    }

    /// True iff the compiled fragment (if any) matches the current
    /// effective expression and delta mode.
    pub fn fragment_fresh(&self, delta_mode: DeltaMode) -> bool {
        self.fragment.as_ref().is_some_and(|f| {
            f.pending_len == self.pending.len() && f.delta_mode == delta_mode
        })
    }
}

/// Bound on cached entries. Each entry pins its fragment's ∆ partitions
/// in the registry, so the cache must stay bounded even with millions of
/// distinct queriers; at the cap the whole cache is dropped (hot keys
/// repopulate on their next query, a full generation each — rare enough
/// at this size that LRU bookkeeping on every hit would cost more).
pub const GUARD_CACHE_CAP: usize = 4096;

/// The cache proper: keyed entries plus counters.
#[derive(Debug, Default)]
pub struct GuardCache {
    entries: HashMap<GuardCacheKey, CachedGuard>,
    stats: GuardCacheStats,
}

impl GuardCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> GuardCacheStats {
        self.stats
    }

    /// Immutable entry lookup.
    pub fn get(&self, key: &GuardCacheKey) -> Option<&CachedGuard> {
        self.entries.get(key)
    }

    /// Mutable entry lookup.
    pub fn get_mut(&mut self, key: &GuardCacheKey) -> Option<&mut CachedGuard> {
        self.entries.get_mut(key)
    }

    /// Insert (replacing) an entry for a freshly generated expression,
    /// counting it as a miss (no prior entry) or a regeneration (an
    /// outdated entry replaced). Returns the ∆ keys of displaced
    /// fragments — the replaced entry's, plus every entry's when the
    /// insert tripped the [`GUARD_CACHE_CAP`] bound — so the caller can
    /// free them.
    pub fn insert_generated(
        &mut self,
        key: GuardCacheKey,
        base: Arc<GuardedExpression>,
        epoch: u64,
    ) -> Vec<crate::delta::PartitionKey> {
        self.insert_generated_bulk(vec![(key, base)], epoch)
    }

    /// Bulk variant of [`GuardCache::insert_generated`] for batched
    /// multi-querier warm-population: counts each entry exactly once
    /// (miss or regeneration, decided against the pre-insert state) and
    /// performs a **single** cap check for the whole batch instead of one
    /// per key. When the batch would not fit, everything is purged once
    /// up front (counted in `evictions`, excluding entries the batch
    /// replaces anyway) and the batch then inserted whole — a batch is
    /// populated for immediate use and must never purge itself midway. A
    /// batch larger than [`GUARD_CACHE_CAP`] therefore leaves the cache
    /// transiently over the bound (by at most the batch size); the next
    /// capping insert restores it through the standard full purge.
    pub fn insert_generated_bulk(
        &mut self,
        items: Vec<(GuardCacheKey, Arc<GuardedExpression>)>,
        epoch: u64,
    ) -> Vec<crate::delta::PartitionKey> {
        // Dedup repeated keys (last write wins, as serial inserts would)
        // so each key is counted once and the cap arithmetic stays sound.
        let mut index: HashMap<GuardCacheKey, usize> = HashMap::new();
        let mut deduped: Vec<(GuardCacheKey, Arc<GuardedExpression>)> = Vec::new();
        for (key, base) in items {
            match index.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    deduped[*e.get()].1 = base;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(deduped.len());
                    deduped.push((key, base));
                }
            }
        }
        let items = deduped;
        let replaced = items
            .iter()
            .filter(|(k, _)| self.entries.contains_key(k))
            .count();
        let new_keys = items.len() - replaced;
        self.stats.misses += new_keys as u64;
        self.stats.regenerations += replaced as u64;
        let mut freed = if self.entries.len() + new_keys > GUARD_CACHE_CAP {
            self.stats.evictions += (self.entries.len() - replaced) as u64;
            self.clear()
        } else {
            Vec::new()
        };
        for (key, base) in items {
            let old = self.entries.insert(key, CachedGuard::new(base, epoch));
            if let Some(f) = old.and_then(|e| e.fragment) {
                freed.extend_from_slice(&f.fragment.delta_keys);
            }
        }
        freed
    }

    /// Count a hit on the guarded-expression level.
    pub fn record_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Count a fragment-level hit.
    pub fn record_fragment_hit(&mut self) {
        self.stats.fragment_hits += 1;
    }

    /// Count a fragment build.
    pub fn record_fragment_build(&mut self) {
        self.stats.fragment_builds += 1;
    }

    /// Mark every entry selected by `affects` outdated, recording `policy`
    /// as pending on it. Returns the number of entries invalidated.
    pub fn invalidate_where(
        &mut self,
        policy: PolicyId,
        mut affects: impl FnMut(&GuardCacheKey) -> bool,
    ) -> usize {
        let mut n = 0;
        for (key, entry) in self.entries.iter_mut() {
            if affects(key) {
                entry.outdated = true;
                entry.pending.push(policy);
                n += 1;
            }
        }
        self.stats.invalidations += n as u64;
        n
    }

    /// Drop every entry, returning all ∆ partition keys referenced by
    /// cached fragments so the caller can free them in the registry.
    pub fn clear(&mut self) -> Vec<crate::delta::PartitionKey> {
        let mut keys = Vec::new();
        for (_, entry) in self.entries.drain() {
            if let Some(f) = entry.fragment {
                keys.extend_from_slice(&f.fragment.delta_keys);
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardedExpression;

    fn ge(relation: &str) -> Arc<GuardedExpression> {
        Arc::new(GuardedExpression {
            relation: relation.to_string(),
            querier: 1,
            purpose: "Any".into(),
            guards: vec![],
        })
    }

    fn key(querier: i64, relation: &str) -> GuardCacheKey {
        (querier, "Any".to_string(), relation.to_string())
    }

    #[test]
    fn insert_and_hit_counting() {
        let mut c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        assert_eq!(c.stats().misses, 1);
        assert!(c.get(&key(1, "r")).is_some());
        c.record_hit();
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn invalidate_where_marks_matching_entries() {
        let mut c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        c.insert_generated(key(2, "r"), ge("r"), 0);
        c.insert_generated(key(1, "s"), ge("s"), 0);
        let n = c.invalidate_where(42, |(_, _, rel)| rel == "r");
        assert_eq!(n, 2);
        assert!(c.get(&key(1, "r")).unwrap().outdated);
        assert_eq!(c.get(&key(2, "r")).unwrap().pending, vec![42]);
        assert!(!c.get(&key(1, "s")).unwrap().outdated);
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn cap_bounds_entries_and_reports_freed_keys() {
        let mut c = GuardCache::new();
        for i in 0..GUARD_CACHE_CAP as i64 {
            c.insert_generated(key(i, "r"), ge("r"), 0);
        }
        assert_eq!(c.len(), GUARD_CACHE_CAP);
        // Give one entry a fragment with a ∆ key so the flush reports it.
        c.get_mut(&key(0, "r")).unwrap().fragment = Some(CachedFragment {
            fragment: Arc::new(GuardFragment {
                branches: vec![],
                guard_attrs: vec![],
                est_guard_rows: 0.0,
                delta_guards: 1,
                delta_keys: vec![77],
                delta_mode: DeltaMode::Auto,
            }),
            pending_len: 0,
            delta_mode: DeltaMode::Auto,
        });
        // A new key at the cap flushes everything (freed keys bubble up);
        // re-inserting an existing key does not.
        let freed = c.insert_generated(key(1, "r"), ge("r"), 0);
        assert!(freed.is_empty());
        assert_eq!(c.len(), GUARD_CACHE_CAP);
        let freed = c.insert_generated(key(-1, "r"), ge("r"), 0);
        assert_eq!(freed, vec![77]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bulk_insert_counts_each_entry_once_and_caps_once() {
        let mut c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        // Bulk over one existing + two new keys: one cap decision, per-key
        // miss/regeneration accounting against the pre-insert state.
        let freed = c.insert_generated_bulk(
            vec![
                (key(1, "r"), ge("r")),
                (key(2, "r"), ge("r")),
                (key(3, "r"), ge("r")),
            ],
            0,
        );
        assert!(freed.is_empty());
        let s = c.stats();
        assert_eq!(s.misses, 3, "1 cold insert + 2 new bulk keys");
        assert_eq!(s.regenerations, 1, "key 1 replaced in place");
        assert_eq!(s.evictions, 0);
        assert_eq!(s.generations(), 4);
        assert_eq!(c.len(), 3);
        // A batch that cannot fit purges the survivors exactly once, up
        // front, then inserts whole.
        let batch: Vec<_> = (100..100 + GUARD_CACHE_CAP as i64)
            .map(|i| (key(i, "r"), ge("r")))
            .collect();
        let n = batch.len();
        c.insert_generated_bulk(batch, 0);
        let s = c.stats();
        assert_eq!(s.evictions, 3, "pre-existing entries purged once");
        assert_eq!(s.misses, 3 + n as u64);
        assert_eq!(c.len(), n);
    }

    #[test]
    fn bulk_insert_dedups_repeated_keys() {
        let mut c = GuardCache::new();
        // The same key three times plus one distinct: two entries, two
        // misses, no phantom counts — and no cap-arithmetic underflow when
        // duplicates outnumber live entries.
        let freed = c.insert_generated_bulk(
            vec![
                (key(1, "r"), ge("r")),
                (key(1, "r"), ge("r")),
                (key(1, "r"), ge("r")),
                (key(2, "r"), ge("r")),
            ],
            0,
        );
        assert!(freed.is_empty());
        assert_eq!(c.len(), 2);
        let s = c.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.regenerations, 0);
        assert_eq!(s.generations(), 2);
    }

    #[test]
    fn regeneration_of_existing_key_is_not_a_miss() {
        let mut c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        c.invalidate_where(9, |_| true);
        c.insert_generated(key(1, "r"), ge("r"), 0);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.regenerations, 1);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.generations(), 2);
    }

    #[test]
    fn entries_record_their_generation_epoch() {
        let mut c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 3);
        assert_eq!(c.get(&key(1, "r")).unwrap().epoch, 3);
        // Regeneration at a later epoch replaces the stamp.
        c.insert_generated(key(1, "r"), ge("r"), 5);
        assert_eq!(c.get(&key(1, "r")).unwrap().epoch, 5);
        assert_eq!(c.stats().regenerations, 1);
    }

    #[test]
    fn fragment_freshness_tracks_pending_and_mode() {
        let mut c = GuardCache::new();
        c.insert_generated(key(1, "r"), ge("r"), 0);
        let e = c.get_mut(&key(1, "r")).unwrap();
        assert!(!e.fragment_fresh(DeltaMode::Auto), "no fragment yet");
        e.fragment = Some(CachedFragment {
            fragment: Arc::new(GuardFragment {
                branches: vec![],
                guard_attrs: vec![],
                est_guard_rows: 0.0,
                delta_guards: 0,
                delta_keys: vec![],
                delta_mode: DeltaMode::Auto,
            }),
            pending_len: 0,
            delta_mode: DeltaMode::Auto,
        });
        assert!(e.fragment_fresh(DeltaMode::Auto));
        assert!(!e.fragment_fresh(DeltaMode::Always), "mode change stales");
        e.pending.push(7);
        assert!(!e.fragment_fresh(DeltaMode::Auto), "pending change stales");
    }
}
