//! SIEVE's cost model (Sections 4, 5.4, 5.5).
//!
//! All quantities are in the engine's simulated cost units (one unit ≈ one
//! in-memory predicate evaluation; see [`minidb::stats::CostWeights`]):
//!
//! * `c_e` — cost of evaluating one policy's object-condition set against a
//!   tuple;
//! * `c_r` — cost of reading one tuple through an index (random access);
//! * `c_r_seq` — cost of reading one tuple in a sequential scan;
//! * `α` — average fraction of a policy list checked per tuple before a
//!   decision (measured experimentally, Section 5.4);
//! * `udf_invoke` — fixed ∆-operator invocation overhead (`UDF_inv`);
//! * `guard_gen` — cost `C_G` of regenerating a guarded expression
//!   (Section 6, treated as a constant dominated by |P|).
//!
//! `c_e`, `c_r` and `α` "are determined experimentally using a set of
//! sample policies and tuples" (Section 4) — [`CostModel::calibrate`] does
//! exactly that against a loaded database.

use crate::backend::SqlBackend;
use crate::policy::Policy;
use crate::semantics::{eval_policies, measure_alpha};
use minidb::stats::CostWeights;
use minidb::table::ROWS_PER_PAGE;
use crate::error::SieveResult;

/// Calibrated cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of evaluating a tuple against one policy's object conditions.
    pub ce: f64,
    /// Cost of reading a tuple via an index (random page amortized).
    pub cr: f64,
    /// Cost of reading a tuple during a sequential scan.
    pub cr_seq: f64,
    /// Average fraction of a policy list checked per tuple.
    pub alpha: f64,
    /// Fixed cost of one ∆ invocation (`UDF_inv`).
    pub udf_invoke: f64,
    /// Cost inside ∆ per *relevant* policy evaluated (`UDF_exec` is
    /// `udf_lookup + relevant × ce`).
    pub udf_lookup: f64,
    /// Guard-generation cost constant `C_G` (Section 6).
    pub guard_gen: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        let w = CostWeights::default();
        CostModel {
            // A policy has ~2-3 object conditions → ~2.5 predicate evals.
            ce: 2.5 * w.predicate_eval,
            // Random tuple read: one tuple materialization plus the
            // amortized share of a random page (guards cluster poorly, so
            // assume ~1/8 of a page is useful).
            cr: w.tuple_read + w.rand_page / 8.0,
            // Sequential read amortizes a full page of tuples.
            cr_seq: w.tuple_read + w.seq_page / ROWS_PER_PAGE as f64,
            // Most tuples fail all policies of their partition → α near 1.
            alpha: 0.9,
            udf_invoke: w.udf_invoke,
            udf_lookup: w.index_probe,
            guard_gen: 50_000.0,
        }
    }
}

impl CostModel {
    /// The merge-benefit threshold of Theorem 1: merging two overlapping
    /// candidate guards pays off iff
    /// `ρ(x ∩ y) / ρ(x ∪ y) > ce / (cr + ce)` (Equation 8).
    pub fn merge_threshold(&self) -> f64 {
        self.ce / (self.cr + self.ce)
    }

    /// Cost of evaluating a guarded expression `G_i` (Equation 3):
    /// `ρ(oc_g) · (c_r + α · |P_Gi| · c_e)`.
    pub fn guard_cost(&self, guard_rows: f64, partition_size: usize) -> f64 {
        guard_rows * (self.cr + self.alpha * partition_size as f64 * self.ce)
    }

    /// Benefit of a guard (Section 4.2): the policy evaluations the guard
    /// filter avoids, `c_e · |P_Gi| · (|r| − ρ(oc_g))`.
    pub fn guard_benefit(&self, guard_rows: f64, partition_size: usize, table_rows: f64) -> f64 {
        self.ce * partition_size as f64 * (table_rows - guard_rows).max(0.0)
    }

    /// Read cost of a guard: `ρ(oc_g) · c_r`.
    pub fn guard_read_cost(&self, guard_rows: f64) -> f64 {
        guard_rows * self.cr
    }

    /// Utility heuristic of Algorithm 1: benefit per unit read cost.
    pub fn guard_utility(&self, guard_rows: f64, partition_size: usize, table_rows: f64) -> f64 {
        let read = self.guard_read_cost(guard_rows).max(f64::EPSILON);
        self.guard_benefit(guard_rows, partition_size, table_rows) / read
    }

    /// Per-tuple cost of inlining a partition (Section 5.4):
    /// `α · |P_Gi| · c_e`.
    pub fn inline_cost_per_tuple(&self, partition_size: usize) -> f64 {
        self.alpha * partition_size as f64 * self.ce
    }

    /// Per-tuple cost of the ∆ operator (Section 5.4): invocation overhead
    /// plus a context lookup plus evaluation of only the policies relevant
    /// to the tuple's owner (`expected_relevant`).
    pub fn delta_cost_per_tuple(&self, expected_relevant: f64) -> f64 {
        self.udf_invoke + self.udf_lookup + self.alpha * expected_relevant * self.ce
    }

    /// Decide inline vs ∆ for a partition with `partition_size` policies
    /// spread over `distinct_owners` owners. Returns `true` when ∆ wins.
    /// (The paper's Experiment 2.1 found the crossover near 120 policies.)
    pub fn prefer_delta(&self, partition_size: usize, distinct_owners: usize) -> bool {
        let expected_relevant = partition_size as f64 / distinct_owners.max(1) as f64;
        self.delta_cost_per_tuple(expected_relevant) < self.inline_cost_per_tuple(partition_size)
    }

    /// The partition size where ∆ starts to win, assuming each owner
    /// contributes equally (`distinct_owners = partition / per_owner`).
    pub fn delta_threshold(&self, policies_per_owner: f64) -> usize {
        let mut n = 1usize;
        while n < 100_000 {
            let owners = (n as f64 / policies_per_owner).max(1.0);
            if self.prefer_delta(n, owners as usize) {
                return n;
            }
            n += 1;
        }
        n
    }

    /// Strategy costs of Section 5.5. `guard_rows_total = Σ ρ(G_i)`;
    /// `query_rows` is the optimizer's estimate for the query predicate
    /// (`None` when no index is usable — cost ∞). Assumes every guard is
    /// index-backed; see [`CostModel::strategy_costs_split`] when some are
    /// not.
    pub fn strategy_costs(
        &self,
        table_rows: f64,
        guard_rows_total: f64,
        query_rows: Option<f64>,
    ) -> StrategyCosts {
        self.strategy_costs_split(table_rows, guard_rows_total, 0.0, query_rows)
    }

    /// [`CostModel::strategy_costs`] with the guard cardinality split by
    /// whether each guard's attribute is indexed. Guards on unindexed
    /// attributes cannot drive index probes: as soon as any guard must be
    /// answered by scanning, the IndexGuards strategy degrades to reading
    /// the whole relation sequentially (the engine's FORCE-hint union
    /// falls back to a scan when a disjunct has no usable index), so its
    /// cost is the full scan rather than `Σ ρ(G_i) · c_r`.
    pub fn strategy_costs_split(
        &self,
        table_rows: f64,
        guard_rows_indexed: f64,
        guard_rows_scanned: f64,
        query_rows: Option<f64>,
    ) -> StrategyCosts {
        let index_guards = if guard_rows_scanned > 0.0 {
            table_rows * self.cr_seq
        } else {
            guard_rows_indexed * self.cr
        };
        StrategyCosts {
            linear_scan: table_rows * self.cr_seq,
            index_query: query_rows.map_or(f64::INFINITY, |r| r * self.cr),
            index_guards,
        }
    }
}

/// Estimated access cost of the three strategies of Section 5.5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyCosts {
    /// Sequential scan + guarded filter.
    pub linear_scan: f64,
    /// Index scan on the query predicate + guarded filter.
    pub index_query: f64,
    /// Index scans on the guards + partition filters.
    pub index_guards: f64,
}

/// The access strategy SIEVE selects per relation (Section 5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessStrategy {
    /// Sequential scan of the relation.
    LinearScan,
    /// Index scan driven by the query's own selective predicate.
    IndexQuery,
    /// Index scans driven by the guards.
    IndexGuards,
}

impl StrategyCosts {
    /// Pick the cheapest strategy (ties break toward IndexGuards, then
    /// IndexQuery, matching the paper's preference for guard-driven reads).
    pub fn best(&self) -> AccessStrategy {
        let mut best = AccessStrategy::IndexGuards;
        let mut cost = self.index_guards;
        if self.index_query < cost {
            best = AccessStrategy::IndexQuery;
            cost = self.index_query;
        }
        if self.linear_scan < cost {
            best = AccessStrategy::LinearScan;
        }
        best
    }
}

/// Calibrate `c_e`, `c_r`, `c_r_seq` and `α` experimentally against a
/// loaded table and a policy sample, per Sections 4 and 5.4. Uses the
/// deterministic simulated clock so calibration is reproducible.
pub fn calibrate(
    backend: &dyn SqlBackend,
    table: &str,
    sample_policies: &[&Policy],
    sample_rows: usize,
) -> SieveResult<CostModel> {
    let mut model = CostModel::default();
    let entry = backend.table_entry(table)?;
    let schema = entry.schema();
    let rows = entry.table.rows();
    if rows.is_empty() || sample_policies.is_empty() {
        return Ok(model);
    }
    let sample: Vec<minidb::Row> = rows.iter().take(sample_rows.max(1)).cloned().collect();

    // α: measured fraction of policies checked per tuple.
    model.alpha = measure_alpha(sample_policies, schema, &sample, None).clamp(0.05, 1.0);

    // c_e: average predicate evaluations per policy check, converted to
    // cost units. Count conditions actually evaluated via the oracle.
    let mut checks = 0usize;
    let mut conds = 0usize;
    for r in &sample {
        let out = eval_policies(sample_policies, schema, r, None);
        checks += out.policies_checked;
        for p in sample_policies.iter().take(out.policies_checked) {
            conds += p.object_conditions().len();
        }
    }
    if checks > 0 {
        let w = CostWeights::default();
        model.ce = (conds as f64 / checks as f64) * w.predicate_eval;
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CondPredicate, ObjectCondition, QuerierSpec};
    use minidb::value::{DataType, Value};
    use minidb::{Database, DbProfile, TableSchema};

    #[test]
    fn merge_threshold_between_zero_and_one() {
        let m = CostModel::default();
        let t = m.merge_threshold();
        assert!(t > 0.0 && t < 1.0);
    }

    #[test]
    fn guard_cost_monotone_in_partition_and_rows() {
        let m = CostModel::default();
        assert!(m.guard_cost(100.0, 5) < m.guard_cost(100.0, 10));
        assert!(m.guard_cost(100.0, 5) < m.guard_cost(200.0, 5));
    }

    #[test]
    fn utility_prefers_selective_big_partitions() {
        let m = CostModel::default();
        let u_selective = m.guard_utility(10.0, 20, 10_000.0);
        let u_broad = m.guard_utility(5_000.0, 20, 10_000.0);
        assert!(u_selective > u_broad);
        let u_small = m.guard_utility(10.0, 1, 10_000.0);
        assert!(u_selective > u_small);
    }

    #[test]
    fn delta_threshold_in_paper_ballpark() {
        // Paper Experiment 2.1: ∆ pays off beyond ≈120 policies per
        // partition. With default weights the crossover should land in the
        // same order of magnitude (tens to a few hundred).
        let m = CostModel::default();
        let t = m.delta_threshold(2.0);
        assert!(
            (20..=400).contains(&t),
            "delta threshold {t} out of expected band"
        );
    }

    #[test]
    fn prefer_delta_monotone() {
        let m = CostModel::default();
        let thr = m.delta_threshold(2.0);
        assert!(!m.prefer_delta(thr.saturating_sub(2).max(1), (thr / 2).max(1)));
        assert!(m.prefer_delta(thr * 4, thr * 2));
    }

    #[test]
    fn strategy_selection_crossover() {
        let m = CostModel::default();
        // Very selective query predicate → IndexQuery.
        let c = m.strategy_costs(100_000.0, 5_000.0, Some(100.0));
        assert_eq!(c.best(), AccessStrategy::IndexQuery);
        // Broad query predicate but selective guards → IndexGuards.
        let c = m.strategy_costs(100_000.0, 800.0, Some(60_000.0));
        assert_eq!(c.best(), AccessStrategy::IndexGuards);
        // Nothing selective → LinearScan.
        let c = m.strategy_costs(100_000.0, 90_000.0, None);
        assert_eq!(c.best(), AccessStrategy::LinearScan);
    }

    #[test]
    fn unindexed_guards_cost_a_full_scan() {
        let m = CostModel::default();
        // All guards indexed: selective guards win as before.
        let c = m.strategy_costs_split(100_000.0, 800.0, 0.0, Some(60_000.0));
        assert_eq!(c.best(), AccessStrategy::IndexGuards);
        // The same guard rows, but one guard's attribute has no index:
        // IndexGuards degrades to full-scan cost, so the selective query
        // predicate takes over.
        let c = m.strategy_costs_split(100_000.0, 700.0, 100.0, Some(100.0));
        assert_eq!(c.index_guards, c.linear_scan);
        assert_eq!(c.best(), AccessStrategy::IndexQuery);
        // And the split with zero scanned rows matches the legacy shape.
        let a = m.strategy_costs(100_000.0, 5_000.0, Some(100.0));
        let b = m.strategy_costs_split(100_000.0, 5_000.0, 0.0, Some(100.0));
        assert_eq!(a, b);
    }

    #[test]
    fn calibration_runs_on_sample() {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "t",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        for i in 0..500i64 {
            db.insert("t", vec![Value::Int(i), Value::Int(i % 20)]).unwrap();
        }
        let policies: Vec<Policy> = (0..10)
            .map(|o| {
                Policy::new(
                    o,
                    "t",
                    QuerierSpec::User(1),
                    "Any",
                    vec![ObjectCondition::new(
                        "id",
                        CondPredicate::between(Value::Int(0), Value::Int(100)),
                    )],
                )
            })
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let m = calibrate(&db, "t", &refs, 200).unwrap();
        assert!(m.alpha > 0.0 && m.alpha <= 1.0);
        assert!(m.ce > 0.0);
    }
}
