//! The policy-check operator ∆, implemented as a UDF (paper Sections 3.2,
//! 5.2, 5.4).
//!
//! `∆(P_Gi, QM, t_t)` takes a policy partition, the query metadata, and a
//! tuple; it *retrieves the subset of policies relevant to the tuple* —
//! keyed by the tuple's owner, the context attribute of the data model —
//! and evaluates only those. The win over inlining is that a tuple owned
//! by `u` is never checked against other owners' policies; the price is
//! the UDF invocation overhead per tuple (`UDF_inv`), which is why SIEVE
//! only routes partitions past the cost-model crossover through ∆
//! (Experiment 2.1: ≈120 policies in the paper's setup).
//!
//! Like the paper's implementation, partitions are resolved through an id
//! passed as the UDF's first argument ("the implementation … retrieve[s]
//! the policies on the partition of the guard by using the id of the
//! guard, passed as a parameter", Section 5.6). The remaining arguments
//! are the tuple's attributes in schema order.

use crate::backend::SqlBackend;
use crate::policy::{CondPredicate, Policy, UserId};
use minidb::error::{DbError, DbResult};
use minidb::schema::TableSchema;
use minidb::udf::{Udf, UdfContext};
use minidb::value::Value;
use minidb::RangeBound;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Name the ∆ UDF is registered under.
pub const DELTA_UDF: &str = "delta";

/// A compiled object condition: argument slot + check.
#[derive(Debug, Clone)]
enum CondCheck {
    Eq(Value),
    Ne(Value),
    In(Vec<Value>),
    NotIn(Vec<Value>),
    Range { low: RangeBound, high: RangeBound },
}

impl CondCheck {
    fn eval(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        match self {
            CondCheck::Eq(x) => v == x,
            CondCheck::Ne(x) => v != x,
            CondCheck::In(xs) => xs.contains(v),
            CondCheck::NotIn(xs) => !xs.contains(v),
            CondCheck::Range { low, high } => {
                let lo_ok = match low {
                    RangeBound::Unbounded => true,
                    RangeBound::Inclusive(b) => v >= b,
                    RangeBound::Exclusive(b) => v > b,
                };
                let hi_ok = match high {
                    RangeBound::Unbounded => true,
                    RangeBound::Inclusive(b) => v <= b,
                    RangeBound::Exclusive(b) => v < b,
                };
                lo_ok && hi_ok
            }
        }
    }
}

/// One policy compiled against a relation schema: `(arg slot, check)`
/// pairs over the UDF's argument layout.
#[derive(Debug, Clone)]
struct CompiledPolicy {
    conds: Vec<(usize, CondCheck)>,
}

/// A registered partition: owner-keyed policy lists.
#[derive(Debug, Default)]
struct CompiledPartition {
    owner_slot: usize,
    by_owner: HashMap<UserId, Vec<CompiledPolicy>>,
}

/// Partition key handed to the UDF as its first argument.
pub type PartitionKey = i64;

/// RAII lease on a registered ∆ partition: the partition stays resolvable
/// by the UDF for as long as at least one clone of the handle is alive,
/// and is removed from the registry when the last clone drops.
///
/// This is what makes concurrent invalidation safe: a query thread that
/// cloned a compiled fragment (and with it these handles) keeps the
/// partitions its ∆ calls reference alive even if another thread
/// regenerates or evicts the cache entry mid-flight — the superseded
/// partitions are freed only once the in-flight query finishes and drops
/// its pin.
#[derive(Clone)]
pub struct PartitionHandle {
    inner: Arc<HandleInner>,
}

struct HandleInner {
    key: PartitionKey,
    registry: std::sync::Weak<DeltaRegistry>,
}

impl PartitionHandle {
    /// The partition key embedded in rewritten queries.
    pub fn key(&self) -> PartitionKey {
        self.inner.key
    }
}

impl std::fmt::Debug for PartitionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PartitionHandle").field(&self.inner.key).finish()
    }
}

impl Drop for HandleInner {
    fn drop(&mut self) {
        if let Some(registry) = self.registry.upgrade() {
            registry.remove(&[self.key]);
        }
    }
}

/// Shared registry of compiled partitions behind the ∆ UDF.
#[derive(Default)]
pub struct DeltaRegistry {
    inner: RwLock<DeltaInner>,
}

#[derive(Default)]
struct DeltaInner {
    partitions: HashMap<PartitionKey, Arc<CompiledPartition>>,
    next_key: PartitionKey,
}

impl DeltaRegistry {
    /// Fresh registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Register the `delta` UDF on an execution backend, backed by this
    /// registry (a `&mut Database` coerces — the engine is itself a
    /// backend). On a real server this step is the paper's
    /// `CREATE FUNCTION` issued at deploy time.
    pub fn install(self: &Arc<Self>, backend: &mut dyn SqlBackend) {
        backend.install_udf(DELTA_UDF, self.udf());
    }

    /// The ∆ UDF as a registrable value, for callers that wire the engine
    /// directly rather than through [`DeltaRegistry::install`].
    pub fn udf(self: &Arc<Self>) -> Arc<dyn Udf> {
        Arc::new(DeltaUdf {
            registry: Arc::clone(self),
        })
    }

    /// Compile and register a partition of policies against a relation
    /// schema, returning an RAII [`PartitionHandle`] — the partition lives
    /// until the last clone of the handle drops. The UDF's argument layout
    /// is `(key, col_0 … col_{n-1})` in schema order. Policies containing
    /// derived (subquery) conditions are rejected — the rewriter keeps
    /// those inline.
    pub fn register_partition(
        self: &Arc<Self>,
        schema: &TableSchema,
        policies: &[&Policy],
    ) -> DbResult<PartitionHandle> {
        let owner_col = schema
            .column_index(crate::policy::OWNER_ATTR)
            .ok_or_else(|| DbError::UnknownColumn("owner".into()))?;
        let mut part = CompiledPartition {
            owner_slot: owner_col + 1,
            by_owner: HashMap::new(),
        };
        for p in policies {
            let mut conds = Vec::new();
            // The owner condition is the partition key, not re-checked.
            for oc in &p.conditions {
                let slot = schema
                    .column_index(&oc.attr)
                    .ok_or_else(|| DbError::UnknownColumn(oc.attr.clone()))?
                    + 1;
                let check = match &oc.pred {
                    CondPredicate::Eq(v) => CondCheck::Eq(v.clone()),
                    CondPredicate::Ne(v) => CondCheck::Ne(v.clone()),
                    CondPredicate::In(vs) => CondCheck::In(vs.clone()),
                    CondPredicate::NotIn(vs) => CondCheck::NotIn(vs.clone()),
                    CondPredicate::Range { low, high } => CondCheck::Range {
                        low: low.clone(),
                        high: high.clone(),
                    },
                    CondPredicate::Derived(_) => {
                        return Err(DbError::Unsupported(
                            "derived-value policies cannot be routed through ∆".into(),
                        ))
                    }
                };
                conds.push((slot, check));
            }
            part.by_owner
                .entry(p.owner)
                .or_default()
                .push(CompiledPolicy { conds });
        }
        let mut inner = self.inner.write();
        inner.next_key += 1;
        let key = inner.next_key;
        inner.partitions.insert(key, Arc::new(part));
        Ok(PartitionHandle {
            inner: Arc::new(HandleInner {
                key,
                registry: Arc::downgrade(self),
            }),
        })
    }

    /// Force-drop **all** registered partitions, including ones whose
    /// [`PartitionHandle`]s are still alive — a hard reset for tests and
    /// diagnostics, NOT part of the normal lifecycle (the middleware
    /// frees partitions exclusively through handle drops, so in-flight
    /// queries keep theirs resolvable). A query executed against a
    /// cleared-but-still-pinned fragment fails with "unknown partition";
    /// the pinning handles' later drops are harmless no-ops.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.partitions.clear();
    }

    /// Drop specific partitions. Normally driven by [`PartitionHandle`]
    /// drops (a fragment that is regenerated or evicted frees exactly the
    /// partitions its ∆ calls referenced, once no in-flight query pins
    /// them); idempotent, so a manual `remove` followed by a handle drop
    /// is harmless.
    pub fn remove(&self, keys: &[PartitionKey]) {
        if keys.is_empty() {
            return;
        }
        let mut inner = self.inner.write();
        for k in keys {
            inner.partitions.remove(k);
        }
    }

    /// The highest partition key issued so far. Keys are monotonically
    /// increasing, so two watermarks bracket the registrations made in
    /// between (used to reclaim baseline-rewrite partitions).
    pub fn watermark(&self) -> PartitionKey {
        self.inner.read().next_key
    }

    /// Number of live partitions.
    pub fn len(&self) -> usize {
        self.inner.read().partitions.len()
    }

    /// True iff no partitions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct DeltaUdf {
    registry: Arc<DeltaRegistry>,
}

impl Udf for DeltaUdf {
    fn invoke(&self, args: &[Value], ctx: &UdfContext<'_>) -> DbResult<Value> {
        let key = args
            .first()
            .and_then(Value::as_int)
            .ok_or_else(|| DbError::TypeError("delta: first arg must be partition key".into()))?;
        let part = {
            let inner = self.registry.inner.read();
            inner
                .partitions
                .get(&key)
                .cloned()
                .ok_or_else(|| DbError::Unsupported(format!("delta: unknown partition {key}")))?
        };
        // Context filtering: fetch only the tuple owner's policies. This
        // lookup stands in for the paper's indexed rP ⋈ rOC cursor and is
        // charged as one probe.
        ctx.stats.index_probes(1);
        let owner = match args.get(part.owner_slot).and_then(Value::as_int) {
            Some(o) => o,
            None => return Ok(Value::Bool(false)),
        };
        let Some(policies) = part.by_owner.get(&owner) else {
            return Ok(Value::Bool(false));
        };
        for cp in policies {
            ctx.stats.policies(1);
            let mut ok = true;
            for (slot, check) in &cp.conds {
                ctx.stats.predicates(1);
                let v = args
                    .get(*slot)
                    .ok_or_else(|| DbError::TypeError("delta: missing attribute arg".into()))?;
                if !check.eval(v) {
                    ok = false;
                    break;
                }
            }
            if ok {
                return Ok(Value::Bool(true));
            }
        }
        Ok(Value::Bool(false))
    }
}

/// Build the ∆-call expression for a relation: `delta(key, col_0, …)` with
/// columns referenced bare (bound inside the WITH body's layout).
pub fn delta_call_expr(key: PartitionKey, schema: &TableSchema) -> minidb::Expr {
    use minidb::expr::{ColumnRef, Expr};
    let mut args = Vec::with_capacity(schema.arity() + 1);
    args.push(Expr::Literal(Value::Int(key)));
    for c in &schema.columns {
        args.push(Expr::Column(ColumnRef::bare(c.name.clone())));
    }
    Expr::Udf {
        name: DELTA_UDF.to_string(),
        args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ObjectCondition, QuerierSpec};
    use minidb::value::DataType;
    use minidb::StatsSink;

    fn schema() -> TableSchema {
        TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        )
    }

    fn policy(owner: i64, ap: i64) -> Policy {
        Policy::new(
            owner,
            "wifi_dataset",
            QuerierSpec::User(1),
            "Any",
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Eq(Value::Int(ap)),
            )],
        )
    }

    fn invoke(reg: &Arc<DeltaRegistry>, key: PartitionKey, row: &[Value]) -> bool {
        let udf = DeltaUdf {
            registry: Arc::clone(reg),
        };
        let stats = StatsSink::new();
        let ctx = UdfContext { stats: &stats };
        let mut args = vec![Value::Int(key)];
        args.extend_from_slice(row);
        udf.invoke(&args, &ctx).unwrap().as_bool().unwrap()
    }

    #[test]
    fn owner_scoped_evaluation() {
        let reg = DeltaRegistry::new();
        let p1 = policy(7, 1200);
        let p2 = policy(8, 1300);
        let handle = reg
            .register_partition(&schema(), &[&p1, &p2])
            .unwrap();
        let key = handle.key();
        // Owner 7 at AP 1200 → allowed by p1.
        assert!(invoke(
            &reg,
            key,
            &[Value::Int(0), Value::Int(7), Value::Int(1200), Value::Time(0)]
        ));
        // Owner 7 at AP 1300 → p2 belongs to owner 8, never consulted.
        assert!(!invoke(
            &reg,
            key,
            &[Value::Int(0), Value::Int(7), Value::Int(1300), Value::Time(0)]
        ));
        // Unknown owner → deny.
        assert!(!invoke(
            &reg,
            key,
            &[Value::Int(0), Value::Int(99), Value::Int(1200), Value::Time(0)]
        ));
    }

    #[test]
    fn policy_eval_counts_only_owner_policies() {
        let reg = DeltaRegistry::new();
        let policies: Vec<Policy> = (0..50).map(|o| policy(o, 1200)).collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let handle = reg.register_partition(&schema(), &refs).unwrap();
        let key = handle.key();
        let udf = DeltaUdf {
            registry: Arc::clone(&reg),
        };
        let stats = StatsSink::new();
        let ctx = UdfContext { stats: &stats };
        let args = vec![
            Value::Int(key),
            Value::Int(0),
            Value::Int(3),
            Value::Int(1200),
            Value::Time(0),
        ];
        udf.invoke(&args, &ctx).unwrap();
        // Only owner 3's single policy was checked, not all 50.
        assert_eq!(stats.snapshot().policy_evals, 1);
    }

    #[test]
    fn derived_policies_rejected() {
        let reg = DeltaRegistry::new();
        let mut p = policy(7, 1200);
        p.conditions.push(ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Derived(Box::new(minidb::SelectQuery::star_from("wifi_dataset"))),
        ));
        assert!(reg.register_partition(&schema(), &[&p]).is_err());
    }

    #[test]
    fn installed_udf_reachable_through_database() {
        use minidb::{Database, DbProfile};
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(schema()).unwrap();
        db.insert(
            "wifi_dataset",
            vec![Value::Int(0), Value::Int(7), Value::Int(1200), Value::Time(0)],
        )
        .unwrap();
        let reg = DeltaRegistry::new();
        reg.install(&mut db);
        let p = policy(7, 1200);
        let handle = reg.register_partition(&schema(), &[&p]).unwrap();
        let q = minidb::SelectQuery::star_from("wifi_dataset")
            .filter(delta_call_expr(handle.key(), &schema()));
        let res = db.run_query(&q).unwrap();
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn clear_drops_partitions() {
        let reg = DeltaRegistry::new();
        let p = policy(1, 1);
        let handle = reg.register_partition(&schema(), &[&p]).unwrap();
        assert_eq!(reg.len(), 1);
        reg.clear();
        assert!(reg.is_empty());
        // The handle's eventual drop re-removes the key: idempotent.
        drop(handle);
        assert!(reg.is_empty());
    }

    #[test]
    fn dropping_the_last_handle_frees_the_partition() {
        let reg = DeltaRegistry::new();
        let p1 = policy(1, 1200);
        let p2 = policy(2, 1300);
        let h1 = reg.register_partition(&schema(), &[&p1]).unwrap();
        let h2 = reg.register_partition(&schema(), &[&p2]).unwrap();
        let k2 = h2.key();
        // A clone pins the partition past the original's drop.
        let h1_clone = h1.clone();
        drop(h1);
        assert_eq!(reg.len(), 2, "clone still pins the partition");
        drop(h1_clone);
        assert_eq!(reg.len(), 1, "last drop frees it");
        // The surviving partition still evaluates.
        assert!(invoke(
            &reg,
            k2,
            &[Value::Int(0), Value::Int(2), Value::Int(1300), Value::Time(0)]
        ));
    }

    #[test]
    fn watermarks_bracket_registrations() {
        let reg = DeltaRegistry::new();
        let p = policy(1, 1200);
        let before = reg.watermark();
        let h1 = reg.register_partition(&schema(), &[&p]).unwrap();
        let h2 = reg.register_partition(&schema(), &[&p]).unwrap();
        let after = reg.watermark();
        let bracketed: Vec<PartitionKey> = ((before + 1)..=after).collect();
        assert_eq!(bracketed, vec![h1.key(), h2.key()]);
    }
}
