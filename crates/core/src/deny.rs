//! Deny-policy factoring (paper Section 3.1).
//!
//! SIEVE's enforcement model only stores *allow* policies: "If a user
//! expresses a policy with a deny action (e.g., to limit the scope of an
//! allow policy), we can factor in such a deny policy into the explicitly
//! listed allow policies." The paper's example: *allow John access to my
//! location* minus *deny everyone access when in my office* becomes
//! *allow John access when I am in locations other than my office*.
//!
//! Formally, an allow `A` with overlapping deny `D` (a conjunction
//! `d_1 ∧ … ∧ d_n` of object conditions over the same owner/relation)
//! becomes the disjoint expansion of `A ∧ ¬D`:
//!
//! ```text
//! A ∧ ¬d_1
//! A ∧ d_1 ∧ ¬d_2
//! …
//! A ∧ d_1 ∧ … ∧ d_{n-1} ∧ ¬d_n
//! ```
//!
//! each of which is again a plain conjunctive allow policy (negations of
//! the supported predicate shapes stay within the shape language, with
//! ranges splitting into up to two policies).

use crate::policy::{CondPredicate, ObjectCondition, Policy};
use minidb::error::{DbError, DbResult};
use minidb::RangeBound;

/// Negate one object condition within the conjunctive shape language.
/// Returns the disjuncts of the complement (1 entry for Eq/Ne/In/NotIn,
/// up to 2 for ranges). Unbounded sides produce no disjunct on that side.
pub fn negate_condition(oc: &ObjectCondition) -> DbResult<Vec<ObjectCondition>> {
    let mk = |pred| ObjectCondition::new(oc.attr.clone(), pred);
    Ok(match &oc.pred {
        CondPredicate::Eq(v) => vec![mk(CondPredicate::Ne(v.clone()))],
        CondPredicate::Ne(v) => vec![mk(CondPredicate::Eq(v.clone()))],
        CondPredicate::In(vs) => vec![mk(CondPredicate::NotIn(vs.clone()))],
        CondPredicate::NotIn(vs) => vec![mk(CondPredicate::In(vs.clone()))],
        CondPredicate::Range { low, high } => {
            let mut out = Vec::new();
            match low {
                RangeBound::Inclusive(v) => out.push(mk(CondPredicate::Range {
                    low: RangeBound::Unbounded,
                    high: RangeBound::Exclusive(v.clone()),
                })),
                RangeBound::Exclusive(v) => out.push(mk(CondPredicate::Range {
                    low: RangeBound::Unbounded,
                    high: RangeBound::Inclusive(v.clone()),
                })),
                RangeBound::Unbounded => {}
            }
            match high {
                RangeBound::Inclusive(v) => out.push(mk(CondPredicate::Range {
                    low: RangeBound::Exclusive(v.clone()),
                    high: RangeBound::Unbounded,
                })),
                RangeBound::Exclusive(v) => out.push(mk(CondPredicate::Range {
                    low: RangeBound::Inclusive(v.clone()),
                    high: RangeBound::Unbounded,
                })),
                RangeBound::Unbounded => {}
            }
            out
        }
        CondPredicate::Derived(_) => {
            return Err(DbError::Unsupported(
                "cannot factor a deny policy with derived-value conditions".into(),
            ))
        }
    })
}

/// Factor a deny (given as its extra object conditions, beyond the owner
/// condition) into an allow policy: returns the disjoint set of allow
/// policies equivalent to `allow ∧ ¬deny`.
///
/// A deny with an empty condition list blocks the allow entirely
/// (returns no policies). The caller is responsible for only pairing
/// policies with matching owner/relation/querier scope.
pub fn factor_deny(allow: &Policy, deny_conditions: &[ObjectCondition]) -> DbResult<Vec<Policy>> {
    if deny_conditions.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    // Prefix of asserted deny conditions d_1 … d_{k-1}.
    let mut asserted: Vec<ObjectCondition> = Vec::new();
    for d in deny_conditions {
        for neg in negate_condition(d)? {
            let mut p = allow.clone();
            p.conditions.extend(asserted.iter().cloned());
            p.conditions.push(neg);
            out.push(p);
        }
        asserted.push(d.clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::QuerierSpec;
    use crate::semantics::{eval_condition, policy_allows};
    use minidb::value::{DataType, Value};
    use minidb::{Row, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        )
    }

    fn allow_all_day(owner: i64) -> Policy {
        Policy::new(
            owner,
            "wifi_dataset",
            QuerierSpec::User(1),
            "Any",
            vec![ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(8 * 3600), Value::Time(18 * 3600)),
            )],
        )
    }

    fn row(owner: i64, ap: i64, t: u32) -> Row {
        vec![
            Value::Int(0),
            Value::Int(owner),
            Value::Int(ap),
            Value::Time(t),
        ]
    }

    /// Reference semantics: allow ∧ ¬deny via direct evaluation.
    fn reference(allow: &Policy, deny: &[ObjectCondition], s: &TableSchema, r: &Row) -> bool {
        policy_allows(allow, s, r, None) && !deny.iter().all(|d| eval_condition(d, s, r, None))
    }

    #[test]
    fn paper_example_office_deny() {
        // "allow John access to my location" minus "deny when in my
        // office (AP 1300)" → allow only at other APs.
        let allow = allow_all_day(7);
        let deny = vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(1300)),
        )];
        let factored = factor_deny(&allow, &deny).unwrap();
        assert_eq!(factored.len(), 1);
        let s = schema();
        // Visible elsewhere, hidden in the office.
        assert!(factored
            .iter()
            .any(|p| policy_allows(p, &s, &row(7, 1200, 9 * 3600), None)));
        assert!(!factored
            .iter()
            .any(|p| policy_allows(p, &s, &row(7, 1300, 9 * 3600), None)));
    }

    #[test]
    fn range_deny_splits_into_two() {
        // Deny lunch hours: the allow splits into morning and afternoon.
        let allow = allow_all_day(7);
        let deny = vec![ObjectCondition::new(
            "ts_time",
            CondPredicate::between(Value::Time(12 * 3600), Value::Time(13 * 3600)),
        )];
        let factored = factor_deny(&allow, &deny).unwrap();
        assert_eq!(factored.len(), 2);
        let s = schema();
        let visible = |t: u32| {
            factored
                .iter()
                .any(|p| policy_allows(p, &s, &row(7, 1, t), None))
        };
        assert!(visible(9 * 3600));
        assert!(visible(15 * 3600));
        assert!(!visible(12 * 3600 + 1800));
        // Boundary: BETWEEN is inclusive, so 12:00 and 13:00 are denied.
        assert!(!visible(12 * 3600));
        assert!(!visible(13 * 3600));
    }

    #[test]
    fn multi_condition_deny_expansion_is_equivalent_and_disjoint() {
        // Deny (office AP ∧ morning): the expansion must equal A ∧ ¬D on
        // every probe point and its policies must be pairwise disjoint.
        let allow = allow_all_day(7);
        let deny = vec![
            ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1300))),
            ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(9 * 3600), Value::Time(12 * 3600)),
            ),
        ];
        let factored = factor_deny(&allow, &deny).unwrap();
        let s = schema();
        for ap in [1200i64, 1300] {
            for t in (6 * 3600..20 * 3600).step_by(1800) {
                let r = row(7, ap, t);
                let got: Vec<bool> = factored
                    .iter()
                    .map(|p| policy_allows(p, &s, &r, None))
                    .collect();
                let any = got.iter().any(|b| *b);
                assert_eq!(
                    any,
                    reference(&allow, &deny, &s, &r),
                    "mismatch at ap={ap} t={t}"
                );
                // Disjointness: at most one factored policy accepts.
                assert!(
                    got.iter().filter(|b| **b).count() <= 1,
                    "expansion overlaps at ap={ap} t={t}"
                );
            }
        }
    }

    #[test]
    fn unconditional_deny_erases_allow() {
        let allow = allow_all_day(7);
        assert!(factor_deny(&allow, &[]).unwrap().is_empty());
    }

    #[test]
    fn in_list_deny() {
        let allow = allow_all_day(7);
        let deny = vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::In(vec![Value::Int(1), Value::Int(2)]),
        )];
        let factored = factor_deny(&allow, &deny).unwrap();
        let s = schema();
        assert!(!factored
            .iter()
            .any(|p| policy_allows(p, &s, &row(7, 1, 9 * 3600), None)));
        assert!(factored
            .iter()
            .any(|p| policy_allows(p, &s, &row(7, 3, 9 * 3600), None)));
    }

    #[test]
    fn derived_deny_rejected() {
        let allow = allow_all_day(7);
        let deny = vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Derived(Box::new(minidb::SelectQuery::star_from("wifi_dataset"))),
        )];
        assert!(factor_deny(&allow, &deny).is_err());
    }

    #[test]
    fn half_open_range_negation() {
        let oc = ObjectCondition::new("ts_time", CondPredicate::ge(Value::Time(3600)));
        let neg = negate_condition(&oc).unwrap();
        assert_eq!(neg.len(), 1);
        let s = schema();
        assert!(eval_condition(&neg[0], &s, &row(7, 1, 0), None));
        assert!(!eval_condition(&neg[0], &s, &row(7, 1, 3600), None));
    }
}
