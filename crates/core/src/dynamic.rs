//! Dynamic policy management (paper Section 6).
//!
//! Guarded expressions go stale as policies arrive. Regenerating after
//! every insertion wastes work when no queries run in between; never
//! regenerating makes queries pay for un-guarded policies. Section 6
//! derives the optimal number of insertions `k̃` between regenerations:
//!
//! ```text
//! k̃ = sqrt( 4 · C_G / (ρ(oc_G) · α · c_e · r_pq) )        (Equation 19)
//! ```
//!
//! where `C_G` is the (constant) guard-generation cost, `ρ(oc_G)` the
//! guard cardinality, and `r_pq = r_q / r_p` the number of queries posed
//! per policy insertion. Theorem 2 shows regeneration should happen
//! immediately once the k-th policy arrives.

use crate::cost::CostModel;

/// When the middleware regenerates a stale guarded expression.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum RegenerationPolicy {
    /// Regenerate as soon as a query finds the expression outdated
    /// (the trigger-based behaviour of Section 5.1).
    #[default]
    Immediate,
    /// Regenerate after `k̃` pending insertions (Equation 19), evaluating
    /// queries in between against the stale guards plus the pending
    /// policies appended as extra owner-guard branches.
    OptimalRate {
        /// Queries posed per policy insertion (`r_pq`).
        queries_per_insertion: f64,
    },
    /// Never regenerate automatically (caller drives it).
    Manual,
}


/// Equation 19: the optimal number of policy insertions before
/// regenerating, given the average guard cardinality `rho_guard`.
pub fn optimal_regeneration_interval(
    cost: &CostModel,
    rho_guard: f64,
    queries_per_insertion: f64,
) -> f64 {
    let denom = rho_guard.max(1.0) * cost.alpha * cost.ce * queries_per_insertion.max(f64::EPSILON);
    (4.0 * cost.guard_gen / denom).sqrt()
}

/// Equation 18's objective: total cost of query evaluation plus guard
/// regeneration over `n_policies` insertions with interval `k`. Used by
/// tests and the ablation bench to verify `k̃` minimizes the total.
pub fn total_cost_for_interval(
    cost: &CostModel,
    rho_guard: f64,
    queries_per_insertion: f64,
    n_policies: u64,
    base_policies: u64,
    query_len: u64,
    k: u64,
) -> f64 {
    let k = k.max(1);
    let intervals = (n_policies as f64 / k as f64).ceil() as u64;
    let mut total = 0.0;
    for _ in 0..intervals {
        // Queries during the interval pay for the stale guard plus the
        // growing pending set (Equation 17).
        for j in 0..k {
            let pending = j as f64;
            let per_query = rho_guard
                * (cost.cr
                    + cost.alpha * cost.ce * (base_policies as f64 + pending + query_len as f64));
            total += queries_per_insertion * per_query;
        }
        total += cost.guard_gen;
    }
    total
}

/// Scan a range of intervals and return the empirical minimizer of
/// [`total_cost_for_interval`].
pub fn empirical_best_interval(
    cost: &CostModel,
    rho_guard: f64,
    queries_per_insertion: f64,
    n_policies: u64,
    base_policies: u64,
    query_len: u64,
) -> u64 {
    (1..=n_policies.max(1))
        .min_by(|&a, &b| {
            let ca = total_cost_for_interval(
                cost,
                rho_guard,
                queries_per_insertion,
                n_policies,
                base_policies,
                query_len,
                a,
            );
            let cb = total_cost_for_interval(
                cost,
                rho_guard,
                queries_per_insertion,
                n_policies,
                base_policies,
                query_len,
                b,
            );
            ca.total_cmp(&cb)
        })
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_shrinks_with_query_rate() {
        let cost = CostModel::default();
        let slow = optimal_regeneration_interval(&cost, 500.0, 0.1);
        let fast = optimal_regeneration_interval(&cost, 500.0, 10.0);
        assert!(
            fast < slow,
            "more queries per insertion should regenerate more often"
        );
    }

    #[test]
    fn interval_shrinks_with_guard_cardinality() {
        let cost = CostModel::default();
        let small = optimal_regeneration_interval(&cost, 100.0, 1.0);
        let big = optimal_regeneration_interval(&cost, 10_000.0, 1.0);
        assert!(big < small);
    }

    #[test]
    fn formula_matches_empirical_minimum() {
        let cost = CostModel::default();
        let rho = 400.0;
        let rpq = 2.0;
        let k_formula = optimal_regeneration_interval(&cost, rho, rpq);
        let k_emp = empirical_best_interval(&cost, rho, rpq, 200, 150, 3) as f64;
        // The closed form uses uniformity simplifications; it should land
        // within a factor of ~2.5 of the empirical optimum.
        let ratio = (k_formula / k_emp).max(k_emp / k_formula);
        assert!(
            ratio < 2.5,
            "formula k̃={k_formula:.1} vs empirical k={k_emp} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn total_cost_convex_around_minimum() {
        let cost = CostModel::default();
        let f = |k| total_cost_for_interval(&cost, 400.0, 2.0, 200, 150, 3, k);
        let kstar = empirical_best_interval(&cost, 400.0, 2.0, 200, 150, 3);
        if kstar > 2 {
            assert!(f(kstar) <= f(kstar / 2));
        }
        assert!(f(kstar) <= f(kstar * 4));
    }
}
