//! The middleware's public error type.
//!
//! SIEVE is a *security* middleware: its guarantee — a querier never sees
//! a row its policies do not allow — has to hold on every execution path,
//! including the failing ones. The error design enforces that **fail
//! closed** posture structurally:
//!
//! * Every fallible public entry point ([`crate::service::SieveService`],
//!   [`crate::session::Session`], [`crate::session::Prepared`],
//!   [`crate::Sieve`]) returns [`SieveResult`]. A failure anywhere in the
//!   rewrite → dispatch pipeline yields a typed [`SieveError`] — never the
//!   unguarded query, never a partial row set.
//! * Backend faults keep their classification
//!   ([`crate::backend::BackendError`]) so callers can distinguish "the
//!   middleware refused the query" ([`SieveError::Rewrite`]) from "the
//!   engine failed under it" ([`SieveError::Backend`]) from "recovery was
//!   attempted and gave up" ([`SieveError::RetriesExhausted`]).
//! * Panics in the query path are converted, not propagated: a worker
//!   thread that dies mid-batch or a broken internal invariant surfaces as
//!   [`SieveError::Poisoned`] / [`SieveError::Internal`], leaving the
//!   service usable and its ∆/cache bookkeeping intact.

use crate::backend::BackendError;
use minidb::error::DbError;
use std::fmt;

/// Error returned by the SIEVE middleware's public API.
#[derive(Debug, Clone, PartialEq)]
pub enum SieveError {
    /// The middleware could not produce a guarded query: parse failure,
    /// unknown relation/column during rewrite, an unsupported baseline
    /// shape, or a policy-store problem. Nothing was dispatched.
    Rewrite(DbError),
    /// The backend failed and the failure is not retryable (or retries are
    /// disabled). Inspect the [`BackendError`] for the classification.
    Backend(BackendError),
    /// The backend kept failing retryably until the retry budget
    /// ([`crate::middleware::RetryPolicy`]) ran out.
    RetriesExhausted {
        /// Total attempts made (initial try + retries).
        attempts: u32,
        /// The error from the final attempt.
        last: BackendError,
    },
    /// A worker thread panicked or an internal lock/invariant broke in the
    /// query path. The panic is contained: the service stays usable and no
    /// partial result escapes.
    Poisoned(&'static str),
    /// An internal invariant did not hold. Fail-closed conversion of what
    /// would otherwise be a panic; indicates a middleware bug.
    Internal(&'static str),
    /// The static soundness verifier
    /// ([`crate::middleware::SieveOptions::verify_rewrites`]) *refuted*
    /// a freshly generated guard: the rewritten predicate would admit a
    /// concrete row outside the querier's allowed policies. The
    /// generation is discarded and the query fails closed — this is the
    /// one error that means "the middleware caught itself widening".
    SoundnessRefuted {
        /// Protected relation the guard was generated for.
        relation: String,
        /// Querier whose guarded expression was refuted.
        querier: i64,
        /// Rendered witness assignment (`col=value, …`) of the leaking
        /// row, as confirmed by the reference evaluator.
        witness: String,
    },
}

/// Result alias for the middleware's public API.
pub type SieveResult<T> = Result<T, SieveError>;

impl SieveError {
    /// The backend-level error behind this failure, if there is one
    /// (either a direct [`SieveError::Backend`] or the final error of a
    /// [`SieveError::RetriesExhausted`]).
    pub fn backend_error(&self) -> Option<&BackendError> {
        match self {
            SieveError::Backend(e) => Some(e),
            SieveError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }

    /// True iff recovering from this failure requires re-preparing
    /// server-side statements (lost connection, evicted statement id).
    /// [`crate::session::Prepared`] re-prepares once and re-executes when
    /// this holds.
    pub fn needs_reprepare(&self) -> bool {
        self.backend_error().is_some_and(BackendError::needs_reprepare)
    }
}

impl fmt::Display for SieveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SieveError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
            SieveError::Backend(e) => write!(f, "backend error: {e}"),
            SieveError::RetriesExhausted { attempts, last } => {
                write!(f, "backend error after {attempts} attempts: {last}")
            }
            SieveError::Poisoned(what) => {
                write!(f, "query path poisoned ({what})")
            }
            SieveError::Internal(what) => {
                write!(f, "internal invariant violated ({what})")
            }
            SieveError::SoundnessRefuted {
                relation,
                querier,
                witness,
            } => {
                write!(
                    f,
                    "soundness verifier refuted the guard for querier {querier} on \
                     `{relation}`: row ({witness}) passes the rewrite but no allow policy"
                )
            }
        }
    }
}

impl std::error::Error for SieveError {}

impl From<DbError> for SieveError {
    fn from(e: DbError) -> Self {
        SieveError::Rewrite(e)
    }
}

impl From<BackendError> for SieveError {
    fn from(e: BackendError) -> Self {
        SieveError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        let lost = SieveError::Backend(BackendError::ConnectionLost("drop".into()));
        assert!(lost.needs_reprepare());
        let evicted = SieveError::RetriesExhausted {
            attempts: 3,
            last: BackendError::UnknownStatement(7),
        };
        assert!(evicted.needs_reprepare());
        assert_eq!(
            evicted.backend_error(),
            Some(&BackendError::UnknownStatement(7))
        );
        let rewrite = SieveError::Rewrite(DbError::UnknownTable("t".into()));
        assert!(!rewrite.needs_reprepare());
        assert!(rewrite.backend_error().is_none());
    }

    #[test]
    fn conversions_preserve_classification() {
        let e: SieveError = DbError::Timeout.into();
        assert!(matches!(e, SieveError::Rewrite(DbError::Timeout)));
        let e: SieveError = BackendError::Timeout.into();
        assert!(matches!(e, SieveError::Backend(BackendError::Timeout)));
    }

    #[test]
    fn display_is_informative() {
        let e = SieveError::RetriesExhausted {
            attempts: 4,
            last: BackendError::Transient("flaky".into()),
        };
        let s = e.to_string();
        assert!(s.contains("4 attempts"), "{s}");
        assert!(s.contains("flaky"), "{s}");
    }
}
