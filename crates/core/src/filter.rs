//! Policy filtering by query metadata (first strategy of Section 3.2:
//! "Reducing Number of Policies").
//!
//! Given `QM = (querier, purpose)`, only policies whose querier condition
//! names the querier or one of the querier's groups, and whose purpose
//! condition matches, are relevant: `P_QM ⊆ P`.

use crate::policy::{GroupId, Policy, QuerierSpec, QueryMetadata, UserId};
use std::collections::BTreeMap;

/// User ↔ group memberships. Groups are hierarchical in the paper's model
/// (a group can subsume another); the directory stores the *transitive
/// closure* per user, so `groups_of` already reflects subsumption.
///
/// Backed by `BTreeMap` (not `HashMap`) so iteration and `Debug` output
/// are deterministic — identically-seeded workload generations must be
/// byte-identical run to run (see `tests/determinism.rs`).
#[derive(Debug, Clone, Default)]
pub struct GroupDirectory {
    user_groups: BTreeMap<UserId, Vec<GroupId>>,
    group_members: BTreeMap<GroupId, Vec<UserId>>,
    /// Direct subsumption edges: child group → parent group.
    parents: BTreeMap<GroupId, Vec<GroupId>>,
}

impl GroupDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a membership.
    pub fn add_member(&mut self, group: GroupId, user: UserId) {
        let groups = self.user_groups.entry(user).or_default();
        if !groups.contains(&group) {
            groups.push(group);
        }
        let members = self.group_members.entry(group).or_default();
        if !members.contains(&user) {
            members.push(user);
        }
    }

    /// Declare that `child` is subsumed by `parent` (e.g. undergraduates ⊂
    /// students). Members of `child` become members of `parent` too.
    pub fn add_subsumption(&mut self, child: GroupId, parent: GroupId) {
        self.parents.entry(child).or_default().push(parent);
        // Propagate current members of child (and transitively) upward.
        let members = self.group_members.get(&child).cloned().unwrap_or_default();
        for m in members {
            self.add_member(parent, m);
        }
    }

    /// The groups a user belongs to (the paper's `group(u_k)`), including
    /// groups reached through subsumption edges added before membership.
    pub fn groups_of(&self, user: UserId) -> Vec<GroupId> {
        let mut out = self.user_groups.get(&user).cloned().unwrap_or_default();
        // Close over subsumption for memberships added after the edge.
        let mut i = 0;
        while i < out.len() {
            if let Some(ps) = self.parents.get(&out[i]) {
                for p in ps {
                    if !out.contains(p) {
                        out.push(*p);
                    }
                }
            }
            i += 1;
        }
        out
    }

    /// Members of a group.
    pub fn members_of(&self, group: GroupId) -> &[UserId] {
        self.group_members
            .get(&group)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True iff `user` is (transitively) a member of `group`.
    pub fn is_member(&self, user: UserId, group: GroupId) -> bool {
        self.groups_of(user).contains(&group)
    }
}

/// True iff policy `p` is relevant to the query metadata:
/// `QM_purpose = qc_purpose ∧ (QM_querier = qc_querier ∨ qc_querier ∈
/// group(QM_querier))` (Section 3.2).
pub fn policy_applies(p: &Policy, qm: &QueryMetadata, groups: &GroupDirectory) -> bool {
    if !p.purpose_matches(&qm.purpose) {
        return false;
    }
    let querier_ok = match &p.querier {
        QuerierSpec::User(u) => *u == qm.querier,
        QuerierSpec::Group(g) => groups.is_member(qm.querier, *g),
    };
    if !querier_ok {
        return false;
    }
    // Extra querier-context conditions (Section 3.1): every (attr, value)
    // pair the policy names must be present in the query metadata.
    p.querier_context
        .iter()
        .all(|(attr, value)| qm.context_value(attr) == Some(value))
}

/// Filter a policy set down to `P_QM` for a given relation.
pub fn relevant_policies<'a>(
    policies: impl IntoIterator<Item = &'a Policy>,
    relation: &str,
    qm: &QueryMetadata,
    groups: &GroupDirectory,
) -> Vec<&'a Policy> {
    policies
        .into_iter()
        .filter(|p| p.relation == relation && policy_applies(p, qm, groups))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ObjectCondition, CondPredicate};
    use minidb::Value;

    fn policy(owner: UserId, querier: QuerierSpec, purpose: &str) -> Policy {
        Policy::new(
            owner,
            "wifi_dataset",
            querier,
            purpose,
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Eq(Value::Int(1200)),
            )],
        )
    }

    #[test]
    fn user_policy_applies_only_to_that_user() {
        let p = policy(1, QuerierSpec::User(500), "Analytics");
        let g = GroupDirectory::new();
        assert!(policy_applies(&p, &QueryMetadata::new(500, "Analytics"), &g));
        assert!(!policy_applies(&p, &QueryMetadata::new(501, "Analytics"), &g));
    }

    #[test]
    fn purpose_must_match() {
        let p = policy(1, QuerierSpec::User(500), "Analytics");
        let g = GroupDirectory::new();
        assert!(!policy_applies(&p, &QueryMetadata::new(500, "Attendance"), &g));
    }

    #[test]
    fn group_policy_applies_to_members() {
        let p = policy(1, QuerierSpec::Group(42), "Analytics");
        let mut g = GroupDirectory::new();
        g.add_member(42, 500);
        assert!(policy_applies(&p, &QueryMetadata::new(500, "Analytics"), &g));
        assert!(!policy_applies(&p, &QueryMetadata::new(501, "Analytics"), &g));
    }

    #[test]
    fn subsumption_extends_membership() {
        // undergrads (10) ⊂ students (11); policy for students.
        let p = policy(1, QuerierSpec::Group(11), "Any");
        let mut g = GroupDirectory::new();
        g.add_member(10, 500);
        g.add_subsumption(10, 11);
        assert!(g.is_member(500, 11));
        assert!(policy_applies(&p, &QueryMetadata::new(500, "Whatever"), &g));
        // Order shouldn't matter: membership added after the edge.
        let mut g2 = GroupDirectory::new();
        g2.add_subsumption(10, 11);
        g2.add_member(10, 501);
        assert!(g2.is_member(501, 11));
    }

    #[test]
    fn context_conditions_gate_applicability() {
        // Policy applies only from the campus network for safety purposes.
        let p = policy(1, QuerierSpec::User(500), "Safety")
            .with_context("network", Value::str("campus"));
        let g = GroupDirectory::new();
        let on_campus = QueryMetadata::new(500, "Safety")
            .with_context("network", Value::str("campus"));
        let off_campus = QueryMetadata::new(500, "Safety")
            .with_context("network", Value::str("public"));
        let no_context = QueryMetadata::new(500, "Safety");
        assert!(policy_applies(&p, &on_campus, &g));
        assert!(!policy_applies(&p, &off_campus, &g));
        assert!(!policy_applies(&p, &no_context, &g));
        // Extra metadata context a policy doesn't mention is ignored.
        let p2 = policy(1, QuerierSpec::User(500), "Safety");
        assert!(policy_applies(&p2, &on_campus, &g));
    }

    #[test]
    fn relevant_policies_filters_by_relation_too() {
        let mut p1 = policy(1, QuerierSpec::User(500), "Analytics");
        p1.relation = "other_table".into();
        let p2 = policy(2, QuerierSpec::User(500), "Analytics");
        let g = GroupDirectory::new();
        let qm = QueryMetadata::new(500, "Analytics");
        let all = [p1, p2];
        let rel = relevant_policies(all.iter(), "wifi_dataset", &qm, &g);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].owner, 2);
    }
}
