//! Candidate-guard generation (paper Section 4.1).
//!
//! Every object condition that is (a) on an indexed attribute and (b) a
//! constant predicate is a candidate guard; identical conditions from
//! different policies collapse into one candidate. Range conditions on the
//! same attribute are then merged pairwise when Theorem 1's benefit test
//!
//! ```text
//! ρ(oc_x ∩ oc_y) / ρ(oc_x ∪ oc_y)  >  c_e / (c_r + c_e)     (Equation 8)
//! ```
//!
//! holds; disjoint ranges are never merged (Theorem 1), and the sweep over
//! left-sorted candidates stops looking past the first non-overlapping
//! candidate (Corollaries 1.1 and 1.2).

use crate::cost::CostModel;
use crate::policy::{CondPredicate, ObjectCondition, Policy, PolicyId};
use minidb::catalog::TableEntry;
use minidb::RangeBound;
use std::collections::BTreeSet;

/// A candidate guard: a guardable condition plus the policies it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateGuard {
    /// The candidate condition.
    pub condition: ObjectCondition,
    /// Policies for which the condition is a valid filter (`oc_j ⟹ oc_g`).
    pub policies: BTreeSet<PolicyId>,
    /// Estimated matching rows `ρ(oc_g)`.
    pub est_rows: f64,
}

/// Estimate the rows matching a condition using the table's histogram
/// (falling back to exact index counts, then to the table size).
pub fn estimate_condition_rows(oc: &ObjectCondition, entry: &TableEntry) -> f64 {
    let hist = entry.histogram(&oc.attr);
    let idx = entry.index_on(&oc.attr);
    match &oc.pred {
        CondPredicate::Eq(v) => hist
            .map(|h| h.estimate_eq(v))
            .or_else(|| idx.map(|i| i.count_eq(v) as f64))
            .unwrap_or(entry.table.len() as f64),
        CondPredicate::In(vs) => hist
            .map(|h| h.estimate_in(vs))
            .or_else(|| idx.map(|i| vs.iter().map(|v| i.count_eq(v) as f64).sum()))
            .unwrap_or(entry.table.len() as f64),
        CondPredicate::Range { low, high } => hist
            .map(|h| h.estimate_range(low, high))
            .or_else(|| idx.map(|i| i.count_range(low, high) as f64))
            .unwrap_or(entry.table.len() as f64),
        // Non-guardable shapes: estimate as the full table (never chosen).
        CondPredicate::Ne(_) | CondPredicate::NotIn(_) | CondPredicate::Derived(_) => {
            entry.table.len() as f64
        }
    }
}

/// True iff the condition can serve as a guard for the relation: simple,
/// constant, and over an indexed attribute (Section 3.2's two properties).
pub fn is_guardable(oc: &ObjectCondition, entry: &TableEntry) -> bool {
    if !entry.has_index(&oc.attr) {
        return false;
    }
    matches!(
        oc.pred,
        CondPredicate::Eq(_) | CondPredicate::In(_) | CondPredicate::Range { .. }
    )
}

/// Generate the candidate set `CG` for a policy list.
pub fn generate_candidates(
    policies: &[&Policy],
    entry: &TableEntry,
    cost: &CostModel,
) -> Vec<CandidateGuard> {
    // Step 1: collect guardable conditions, collapsing identical ones.
    // Collapse probes a map keyed by the condition's debug rendering —
    // `Value` holds `f64` so conditions are not hashable directly, and the
    // derived rendering is injective for the guardable (constant) shapes —
    // keeping this linear in the number of conditions where an equality
    // scan over the distinct list goes quadratic on big policy unions.
    let mut exact: Vec<CandidateGuard> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    for p in policies {
        for oc in p.object_conditions() {
            if !is_guardable(&oc, entry) {
                continue;
            }
            let key = format!("{}\u{1}{:?}", oc.attr, oc.pred);
            match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    exact[*e.get()].policies.insert(p.id);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let est = estimate_condition_rows(&oc, entry);
                    let mut set = BTreeSet::new();
                    set.insert(p.id);
                    e.insert(exact.len());
                    exact.push(CandidateGuard {
                        condition: oc,
                        policies: set,
                        est_rows: est,
                    });
                }
            }
        }
    }

    // Step 2: split into range candidates (mergeable) and the rest.
    let (ranges, mut rest): (Vec<CandidateGuard>, Vec<CandidateGuard>) = exact
        .into_iter()
        .partition(|c| matches!(c.condition.pred, CondPredicate::Range { .. }));

    // Step 3: per attribute, sort ranges by left bound and sweep-merge.
    let mut by_attr: Vec<(String, Vec<CandidateGuard>)> = Vec::new();
    for c in ranges {
        match by_attr.iter_mut().find(|(a, _)| *a == c.condition.attr) {
            Some((_, v)) => v.push(c),
            None => by_attr.push((c.condition.attr.clone(), vec![c])),
        }
    }
    for (_, mut cands) in by_attr {
        cands.sort_by(|a, b| {
            low_key(&a.condition)
                .partial_cmp(&low_key(&b.condition))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let merged = sweep_merge(cands, entry, cost);
        rest.extend(merged);
    }
    rest
}

/// The querier-independent half of candidate generation, built **once**
/// per `(purpose, relation)` batch group over the *union* of the group's
/// policies: guardable-condition collection, identical-condition collapse,
/// histogram row estimates, and the Theorem 1 range-merge sweep all happen
/// here and are shared by every querier in the group. The per-querier
/// phase is only [`SharedCandidates::restrict`] plus set cover.
#[derive(Debug, Clone)]
pub struct SharedCandidates {
    cands: Vec<CandidateGuard>,
    /// Inverted index: policy id → indices of the candidates covering it,
    /// so restriction costs O(|subset|), not O(|candidates|).
    by_policy: std::collections::HashMap<PolicyId, Vec<u32>>,
}

/// Build the shared candidate set for a policy union (see
/// [`SharedCandidates`]).
pub fn generate_shared_candidates(
    policies: &[&Policy],
    entry: &TableEntry,
    cost: &CostModel,
) -> SharedCandidates {
    let cands = generate_candidates(policies, entry, cost);
    let mut by_policy: std::collections::HashMap<PolicyId, Vec<u32>> =
        std::collections::HashMap::new();
    for (i, c) in cands.iter().enumerate() {
        for pid in &c.policies {
            by_policy.entry(*pid).or_default().push(i as u32);
        }
    }
    SharedCandidates { cands, by_policy }
}

impl SharedCandidates {
    /// Number of shared candidates.
    pub fn len(&self) -> usize {
        self.cands.len()
    }

    /// True iff the union produced no candidates.
    pub fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }

    /// Restrict the shared set to one querier's policy subset: each
    /// retained candidate keeps exactly its policies within `subset`;
    /// candidates covering none are dropped. Row estimates are reused —
    /// `ρ(oc_g)` does not depend on which policies a candidate covers. A
    /// range candidate merged against the union may be wider than a
    /// per-querier merge would have produced, but `oc_j ⟹ oc_g` still
    /// holds for every retained policy (merging only widens ranges), so
    /// enforcement semantics are unchanged; only the cost estimate is
    /// (slightly) more conservative.
    ///
    /// Cost is `O(Σ candidates-per-policy)` over the subset via the
    /// inverted index — independent of the union's candidate count, which
    /// is what keeps the per-querier phase cheap in large batches.
    pub fn restrict(&self, subset: &BTreeSet<PolicyId>) -> Vec<CandidateGuard> {
        // Iterating the subset ascending appends each candidate's policy
        // ids in ascending order; the map is keyed by candidate index so
        // output order (and thus set-cover tie-breaking) is deterministic.
        let mut picked: std::collections::BTreeMap<u32, BTreeSet<PolicyId>> =
            std::collections::BTreeMap::new();
        for pid in subset {
            if let Some(idxs) = self.by_policy.get(pid) {
                for &i in idxs {
                    picked.entry(i).or_default().insert(*pid);
                }
            }
        }
        picked
            .into_iter()
            .map(|(i, policies)| {
                let c = &self.cands[i as usize];
                CandidateGuard {
                    condition: c.condition.clone(),
                    policies,
                    est_rows: c.est_rows,
                }
            })
            .collect()
    }
}

/// Numeric position of a range's low bound (−∞ for unbounded).
fn low_key(oc: &ObjectCondition) -> f64 {
    match &oc.pred {
        CondPredicate::Range { low, .. } => match low {
            RangeBound::Unbounded => f64::NEG_INFINITY,
            RangeBound::Inclusive(v) | RangeBound::Exclusive(v) => {
                v.numeric_key().unwrap_or(f64::NEG_INFINITY)
            }
        },
        _ => f64::NEG_INFINITY,
    }
}

fn bounds(oc: &ObjectCondition) -> (&RangeBound, &RangeBound) {
    match &oc.pred {
        CondPredicate::Range { low, high } => (low, high),
        _ => unreachable!("sweep_merge only sees ranges"),
    }
}

/// Take the earlier of two low bounds (for the union).
fn min_low(a: &RangeBound, b: &RangeBound) -> RangeBound {
    match (a, b) {
        (RangeBound::Unbounded, _) | (_, RangeBound::Unbounded) => RangeBound::Unbounded,
        _ => {
            let (ka, kb) = (low_val(a), low_val(b));
            if ka <= kb { a.clone() } else { b.clone() }
        }
    }
}

/// Take the later of two low bounds (for the intersection).
fn max_low(a: &RangeBound, b: &RangeBound) -> RangeBound {
    match (a, b) {
        (RangeBound::Unbounded, other) | (other, RangeBound::Unbounded) => other.clone(),
        _ => {
            let (ka, kb) = (low_val(a), low_val(b));
            if ka >= kb { a.clone() } else { b.clone() }
        }
    }
}

fn min_high(a: &RangeBound, b: &RangeBound) -> RangeBound {
    match (a, b) {
        (RangeBound::Unbounded, other) | (other, RangeBound::Unbounded) => other.clone(),
        _ => {
            let (ka, kb) = (high_val(a), high_val(b));
            if ka <= kb { a.clone() } else { b.clone() }
        }
    }
}

fn max_high(a: &RangeBound, b: &RangeBound) -> RangeBound {
    match (a, b) {
        (RangeBound::Unbounded, _) | (_, RangeBound::Unbounded) => RangeBound::Unbounded,
        _ => {
            let (ka, kb) = (high_val(a), high_val(b));
            if ka >= kb { a.clone() } else { b.clone() }
        }
    }
}

fn low_val(b: &RangeBound) -> f64 {
    match b {
        RangeBound::Unbounded => f64::NEG_INFINITY,
        RangeBound::Inclusive(v) | RangeBound::Exclusive(v) => {
            v.numeric_key().unwrap_or(f64::NEG_INFINITY)
        }
    }
}

fn high_val(b: &RangeBound) -> f64 {
    match b {
        RangeBound::Unbounded => f64::INFINITY,
        RangeBound::Inclusive(v) | RangeBound::Exclusive(v) => {
            v.numeric_key().unwrap_or(f64::INFINITY)
        }
    }
}

/// True iff two range conditions on the same attribute overlap.
fn overlaps(a: &ObjectCondition, b: &ObjectCondition) -> bool {
    let (a_lo, a_hi) = bounds(a);
    let (b_lo, b_hi) = bounds(b);
    // [a_lo, a_hi] ∩ [b_lo, b_hi] ≠ ∅ ⇔ max(lo) <= min(hi) numerically.
    low_val(&max_low(a_lo, b_lo)) <= high_val(&min_high(a_hi, b_hi))
}

/// The sweep of Section 4.1: for each candidate, try merging with the
/// following (left-sorted) candidates while they overlap; once a candidate
/// fails to overlap, Corollary 1.2 guarantees no later candidate merges
/// either.
fn sweep_merge(
    cands: Vec<CandidateGuard>,
    entry: &TableEntry,
    cost: &CostModel,
) -> Vec<CandidateGuard> {
    let threshold = cost.merge_threshold();
    let mut items: Vec<Option<CandidateGuard>> = cands.into_iter().map(Some).collect();
    let mut out = Vec::new();
    for i in 0..items.len() {
        let Some(mut cur) = items[i].take() else {
            continue;
        };
        for slot in items.iter_mut().skip(i + 1) {
            let Some(next) = slot.as_ref() else { continue };
            if !overlaps(&cur.condition, &next.condition) {
                // Sorted by left bound ⇒ nothing later overlaps (Cor 1.2).
                break;
            }
            // Theorem 1 benefit test on the overlap.
            let (c_lo, c_hi) = bounds(&cur.condition);
            let (n_lo, n_hi) = bounds(&next.condition);
            let inter = ObjectCondition::new(
                cur.condition.attr.clone(),
                CondPredicate::Range {
                    low: max_low(c_lo, n_lo),
                    high: min_high(c_hi, n_hi),
                },
            );
            let union = ObjectCondition::new(
                cur.condition.attr.clone(),
                CondPredicate::Range {
                    low: min_low(c_lo, n_lo),
                    high: max_high(c_hi, n_hi),
                },
            );
            let rho_inter = estimate_condition_rows(&inter, entry);
            let rho_union = estimate_condition_rows(&union, entry).max(f64::EPSILON);
            if rho_inter / rho_union > threshold {
                // `slot` was checked non-empty above and nothing between
                // there and here can clear it, but keep the take fallible
                // rather than panicking on the query path.
                if let Some(next) = slot.take() {
                    cur.policies.extend(next.policies);
                }
                cur.condition = union;
                cur.est_rows = rho_union;
            }
        }
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::tests::{mk_policy, wifi_db};
    use minidb::value::Value;

    fn time_range(lo_h: u32, hi_h: u32) -> ObjectCondition {
        ObjectCondition::new(
            "ts_time",
            CondPredicate::between(Value::Time(lo_h * 3600), Value::Time(hi_h * 3600)),
        )
    }

    #[test]
    fn owner_condition_always_candidate() {
        let db = wifi_db(1000, 10);
        let entry = db.table("wifi_dataset").unwrap();
        let p = mk_policy(1, 3, vec![]);
        let cands = generate_candidates(&[&p], entry, &CostModel::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].condition.attr, "owner");
        assert!(cands[0].policies.contains(&1));
    }

    #[test]
    fn identical_conditions_collapse() {
        let db = wifi_db(1000, 10);
        let entry = db.table("wifi_dataset").unwrap();
        let p1 = mk_policy(1, 3, vec![time_range(9, 10)]);
        let p2 = mk_policy(2, 4, vec![time_range(9, 10)]);
        let cands = generate_candidates(&[&p1, &p2], entry, &CostModel::default());
        // owner=3, owner=4, and one shared time range.
        let time_cands: Vec<_> = cands
            .iter()
            .filter(|c| c.condition.attr == "ts_time")
            .collect();
        assert_eq!(time_cands.len(), 1);
        assert_eq!(time_cands[0].policies.len(), 2);
    }

    #[test]
    fn disjoint_ranges_never_merge() {
        let db = wifi_db(5000, 10);
        let entry = db.table("wifi_dataset").unwrap();
        let p1 = mk_policy(1, 1, vec![time_range(1, 2)]);
        let p2 = mk_policy(2, 2, vec![time_range(20, 21)]);
        let cands = generate_candidates(&[&p1, &p2], entry, &CostModel::default());
        let time_cands: Vec<_> = cands
            .iter()
            .filter(|c| c.condition.attr == "ts_time")
            .collect();
        assert_eq!(time_cands.len(), 2, "Theorem 1: disjoint ranges stay split");
    }

    #[test]
    fn heavily_overlapping_ranges_merge() {
        let db = wifi_db(5000, 10);
        let entry = db.table("wifi_dataset").unwrap();
        // [9,11] and [9.25,11.25] hours: overlap ≈ 87% of the union, far
        // above the ~threshold, so they merge into one candidate.
        let p1 = mk_policy(1, 1, vec![time_range(9, 11)]);
        let p2 = mk_policy(
            2,
            2,
            vec![ObjectCondition::new(
                "ts_time",
                CondPredicate::between(
                    Value::Time(9 * 3600 + 900),
                    Value::Time(11 * 3600 + 900),
                ),
            )],
        );
        let cands = generate_candidates(&[&p1, &p2], entry, &CostModel::default());
        let time_cands: Vec<_> = cands
            .iter()
            .filter(|c| c.condition.attr == "ts_time")
            .collect();
        assert_eq!(time_cands.len(), 1, "overlapping ranges should merge");
        assert_eq!(time_cands[0].policies.len(), 2);
    }

    #[test]
    fn barely_overlapping_ranges_do_not_merge() {
        let db = wifi_db(5000, 10);
        let entry = db.table("wifi_dataset").unwrap();
        // [0,10] and [9.9,20] hours: overlap is ~0.5% of the union, far
        // below the threshold.
        let p1 = mk_policy(1, 1, vec![time_range(0, 10)]);
        let p2 = mk_policy(
            2,
            2,
            vec![ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(10 * 3600 - 360), Value::Time(20 * 3600)),
            )],
        );
        let cands = generate_candidates(&[&p1, &p2], entry, &CostModel::default());
        let time_cands: Vec<_> = cands
            .iter()
            .filter(|c| c.condition.attr == "ts_time")
            .collect();
        assert_eq!(time_cands.len(), 2, "marginal overlap must not merge");
    }

    #[test]
    fn transitive_merge_through_chain() {
        let db = wifi_db(5000, 10);
        let entry = db.table("wifi_dataset").unwrap();
        // Three staggered heavily-overlapping ranges: a↔b and b↔c overlap
        // strongly; after merging a⊕b, the widened range still overlaps c
        // strongly enough to absorb it.
        let p1 = mk_policy(1, 1, vec![time_range(9, 12)]);
        let p2 = mk_policy(2, 2, vec![time_range(10, 13)]);
        let p3 = mk_policy(3, 3, vec![time_range(11, 14)]);
        let cands = generate_candidates(&[&p1, &p2, &p3], entry, &CostModel::default());
        let time_cands: Vec<_> = cands
            .iter()
            .filter(|c| c.condition.attr == "ts_time")
            .collect();
        assert_eq!(time_cands.len(), 1);
        assert_eq!(time_cands[0].policies.len(), 3);
    }

    #[test]
    fn unindexed_attr_not_guardable() {
        let db = wifi_db(100, 5);
        let entry = db.table("wifi_dataset").unwrap();
        let oc = ObjectCondition::new("id", CondPredicate::Eq(Value::Int(5)));
        assert!(!is_guardable(&oc, entry)); // `id` has no index in wifi_db
        let oc2 = ObjectCondition::new("owner", CondPredicate::Eq(Value::Int(5)));
        assert!(is_guardable(&oc2, entry));
    }

    #[test]
    fn derived_conditions_not_guardable() {
        let db = wifi_db(100, 5);
        let entry = db.table("wifi_dataset").unwrap();
        let oc = ObjectCondition::new(
            "owner",
            CondPredicate::Derived(Box::new(minidb::SelectQuery::star_from("wifi_dataset"))),
        );
        assert!(!is_guardable(&oc, entry));
    }
}
