//! Guarded policy expressions (paper Sections 3.2 and 4).
//!
//! `G(P) = G_1 ∨ … ∨ G_n` where each `G_i = oc_g ∧ P_Gi` pairs a cheap,
//! index-supported *guard* predicate with the *partition* of policies it
//! filters for. Partitions are disjoint and cover the policy set.

pub mod candidates;
pub mod selection;

use crate::cost::CostModel;
use crate::policy::{ObjectCondition, Policy, PolicyId, UserId};
use minidb::catalog::TableEntry;
use minidb::expr::Expr;
use std::collections::{BTreeSet, HashMap};

pub use candidates::{
    generate_candidates, generate_shared_candidates, CandidateGuard, SharedCandidates,
};
pub use selection::{owner_fallback_guards, select_guards};

/// One guarded expression `G_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Guard {
    /// The guard predicate `oc_g` (simple, constant, on an indexed column).
    pub condition: ObjectCondition,
    /// The policy partition `P_Gi` (policy ids, ascending).
    pub policies: Vec<PolicyId>,
    /// Estimated rows matching the guard (`ρ(oc_g)`), from histograms at
    /// generation time.
    pub est_rows: f64,
}

impl Guard {
    /// Partition size `|P_Gi|`.
    pub fn partition_size(&self) -> usize {
        self.policies.len()
    }
}

/// A guarded policy expression for one (querier, purpose, relation).
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedExpression {
    /// Protected relation.
    pub relation: String,
    /// Querier the expression was generated for.
    pub querier: UserId,
    /// Purpose the expression was generated for.
    pub purpose: String,
    /// The guards, in selection order (highest utility first).
    pub guards: Vec<Guard>,
}

impl GuardedExpression {
    /// Total estimated guard cardinality `Σ ρ(G_i)`.
    pub fn total_guard_rows(&self) -> f64 {
        self.guards.iter().map(|g| g.est_rows).sum()
    }

    /// All policy ids covered (the partitions are disjoint by
    /// construction, so this is also the disjoint union).
    pub fn covered_policies(&self) -> BTreeSet<PolicyId> {
        self.guards
            .iter()
            .flat_map(|g| g.policies.iter().copied())
            .collect()
    }

    /// The full inline expression `⋁_i (oc_g^i ∧ ⋁_{p ∈ P_Gi} OC_p)`,
    /// resolving policies through `by_id`.
    pub fn to_expr(&self, by_id: &HashMap<PolicyId, &Policy>) -> Expr {
        Expr::any(
            self.guards
                .iter()
                .map(|g| {
                    let partition = Expr::any(
                        g.policies
                            .iter()
                            .filter_map(|id| by_id.get(id))
                            .map(|p| p.to_expr())
                            .collect(),
                    );
                    Expr::and(g.condition.to_expr(), partition)
                })
                .collect(),
        )
    }
}

/// How to pick guards from the candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardSelectionStrategy {
    /// Algorithm 1: utility-greedy weighted set cover over merged
    /// candidates (the paper's approach).
    #[default]
    CostOptimal,
    /// Ablation baseline: one guard per owner (`oc_owner` only) — the
    /// trivially correct choice the paper argues produces too-small
    /// partitions (Section 4.1).
    OwnerOnly,
}

/// Generate the guarded expression for a filtered policy set.
///
/// `entry` supplies indexes and histograms of the protected relation;
/// `cost` supplies the calibrated constants for Theorem 1's merge test and
/// Algorithm 1's utility.
pub fn generate_guarded_expression(
    policies: &[&Policy],
    entry: &TableEntry,
    cost: &CostModel,
    strategy: GuardSelectionStrategy,
    querier: UserId,
    purpose: &str,
    relation: &str,
) -> GuardedExpression {
    let guards = match strategy {
        GuardSelectionStrategy::CostOptimal => {
            let cands = generate_candidates(policies, entry, cost);
            select_guards(cands, policies, entry, cost)
        }
        GuardSelectionStrategy::OwnerOnly => owner_only_guards(policies, entry),
    };
    GuardedExpression {
        relation: relation.to_string(),
        querier,
        purpose: purpose.to_string(),
        guards,
    }
}

/// One guard per distinct owner, partitioning policies by owner.
fn owner_only_guards(policies: &[&Policy], entry: &TableEntry) -> Vec<Guard> {
    owner_fallback_guards(policies.iter().map(|p| (p.id, p.owner)), entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CondPredicate, QuerierSpec};
    use minidb::value::{DataType, Value};
    use minidb::{Database, DbProfile, TableSchema};

    pub(crate) fn wifi_db(rows: i64, owners: i64) -> Database {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        ))
        .unwrap();
        for i in 0..rows {
            db.insert(
                "wifi_dataset",
                vec![
                    Value::Int(i),
                    Value::Int(i % owners),
                    Value::Int(1000 + i % 16),
                    Value::Time(((i * 127) % 86400) as u32),
                ],
            )
            .unwrap();
        }
        for col in ["owner", "wifi_ap", "ts_time"] {
            db.create_index("wifi_dataset", col).unwrap();
        }
        db.analyze("wifi_dataset").unwrap();
        db
    }

    pub(crate) fn mk_policy(id: PolicyId, owner: i64, conds: Vec<ObjectCondition>) -> Policy {
        let mut p = Policy::new(owner, "wifi_dataset", QuerierSpec::User(9999), "Any", conds);
        p.id = id;
        p
    }

    #[test]
    fn owner_only_partitions_by_owner() {
        let db = wifi_db(2000, 20);
        let entry = db.table("wifi_dataset").unwrap();
        let policies: Vec<Policy> = (0..10)
            .map(|i| {
                mk_policy(
                    i,
                    (i % 5) as i64,
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1000 + i as i64)),
                    )],
                )
            })
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let ge = generate_guarded_expression(
            &refs,
            entry,
            &CostModel::default(),
            GuardSelectionStrategy::OwnerOnly,
            9999,
            "Any",
            "wifi_dataset",
        );
        assert_eq!(ge.guards.len(), 5);
        assert_eq!(ge.covered_policies().len(), 10);
        // Partition sizes: two policies per owner.
        assert!(ge.guards.iter().all(|g| g.partition_size() == 2));
    }

    #[test]
    fn cost_optimal_covers_every_policy_exactly_once() {
        let db = wifi_db(2000, 20);
        let entry = db.table("wifi_dataset").unwrap();
        let policies: Vec<Policy> = (0..40)
            .map(|i| {
                mk_policy(
                    i,
                    (i % 8) as i64,
                    vec![ObjectCondition::new(
                        "ts_time",
                        CondPredicate::between(
                            Value::Time((8 * 3600 + (i % 4) * 900) as u32),
                            Value::Time((10 * 3600 + (i % 4) * 900) as u32),
                        ),
                    )],
                )
            })
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let ge = generate_guarded_expression(
            &refs,
            entry,
            &CostModel::default(),
            GuardSelectionStrategy::CostOptimal,
            9999,
            "Any",
            "wifi_dataset",
        );
        // Exactly-once cover.
        let covered = ge.covered_policies();
        assert_eq!(covered.len(), 40, "all policies covered");
        let total: usize = ge.guards.iter().map(|g| g.partition_size()).sum();
        assert_eq!(total, 40, "partitions are disjoint");
        // Guarding should group policies: fewer guards than policies.
        assert!(ge.guards.len() < 40, "got {} guards", ge.guards.len());
    }

    #[test]
    fn to_expr_shape() {
        let db = wifi_db(500, 10);
        let entry = db.table("wifi_dataset").unwrap();
        let policies: Vec<Policy> = (0..4)
            .map(|i| mk_policy(i, i as i64, vec![]))
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let ge = generate_guarded_expression(
            &refs,
            entry,
            &CostModel::default(),
            GuardSelectionStrategy::OwnerOnly,
            9999,
            "Any",
            "wifi_dataset",
        );
        let by_id: HashMap<PolicyId, &Policy> = policies.iter().map(|p| (p.id, p)).collect();
        let e = ge.to_expr(&by_id);
        // 4 owners → OR of 4 guard branches.
        assert_eq!(e.disjuncts().len(), 4);
    }
}
