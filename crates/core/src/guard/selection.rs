//! Guard selection — Algorithm 1 of the paper (Section 4.2).
//!
//! Selecting the cost-minimal subset of candidate guards covering every
//! policy exactly once is NP-hard (reduction from weighted Set-Cover), so
//! the paper uses a greedy heuristic ranked by *utility* — benefit per unit
//! read cost. A priority queue holds the candidates; when a candidate is
//! selected, every other candidate sharing policies with it is shrunk, its
//! utility recomputed, and reinserted. We implement the queue with lazy
//! invalidation (version counters) rather than in-place removal.

use super::candidates::{estimate_condition_rows, CandidateGuard};
use super::Guard;
use crate::cost::CostModel;
use crate::policy::{CondPredicate, ObjectCondition, Policy, PolicyId, OWNER_ATTR};
use minidb::catalog::TableEntry;
use minidb::Value;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, BTreeSet, HashMap};

/// Heap entry ordered by utility (then deterministic tie-breaks).
struct HeapEntry {
    utility: f64,
    idx: usize,
    version: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.utility
            .total_cmp(&other.utility)
            // Deterministic tie-break: lower candidate index wins.
            .then_with(|| other.idx.cmp(&self.idx))
            .then_with(|| other.version.cmp(&self.version))
    }
}

struct CandState {
    condition: ObjectCondition,
    policies: BTreeSet<PolicyId>,
    est_rows: f64,
    version: u64,
}

/// Per-owner fallback guards for `(policy id, owner)` pairs: one
/// `owner = k` guard per distinct owner, policy ids ascending. This is the
/// trivially correct cover used for policies no candidate guards (owner
/// attribute unindexed), for the OwnerOnly ablation, and for folding
/// pending policies into a cached expression between regenerations.
pub fn owner_fallback_guards(
    policies: impl IntoIterator<Item = (PolicyId, i64)>,
    entry: &TableEntry,
) -> Vec<Guard> {
    let mut by_owner: HashMap<i64, Vec<PolicyId>> = HashMap::new();
    for (id, owner) in policies {
        by_owner.entry(owner).or_default().push(id);
    }
    let mut entries: Vec<(i64, Vec<PolicyId>)> = by_owner.into_iter().collect();
    entries.sort_unstable_by_key(|(owner, _)| *owner);
    entries
        .into_iter()
        .map(|(owner, mut ids)| {
            ids.sort_unstable();
            let cond = ObjectCondition::new(OWNER_ATTR, CondPredicate::Eq(Value::Int(owner)));
            let est_rows = estimate_condition_rows(&cond, entry);
            Guard {
                condition: cond,
                policies: ids,
                est_rows,
            }
        })
        .collect()
}

/// Run Algorithm 1: pick guards until every policy is covered.
///
/// Policies left uncovered by any candidate (possible only when the owner
/// attribute is not indexed, violating the paper's data-model assumption)
/// are grouped into per-owner fallback guards so enforcement never loses a
/// policy.
pub fn select_guards(
    candidates: Vec<CandidateGuard>,
    policies: &[&Policy],
    entry: &TableEntry,
    cost: &CostModel,
) -> Vec<Guard> {
    let table_rows = entry.table.len() as f64;
    let mut states: Vec<CandState> = candidates
        .into_iter()
        .map(|c| CandState {
            condition: c.condition,
            policies: c.policies,
            est_rows: c.est_rows,
            version: 0,
        })
        .collect();

    // policy → candidate indexes containing it.
    let mut containing: HashMap<PolicyId, Vec<usize>> = HashMap::new();
    for (i, s) in states.iter().enumerate() {
        for pid in &s.policies {
            containing.entry(*pid).or_default().push(i);
        }
    }

    let mut heap: BinaryHeap<HeapEntry> = states
        .iter()
        .enumerate()
        .map(|(idx, s)| HeapEntry {
            utility: cost.guard_utility(s.est_rows, s.policies.len(), table_rows),
            idx,
            version: 0,
        })
        .collect();

    let mut selected: Vec<Guard> = Vec::new();
    let mut covered: BTreeSet<PolicyId> = BTreeSet::new();

    while let Some(entry_) = heap.pop() {
        let state = &states[entry_.idx];
        if entry_.version != state.version || state.policies.is_empty() {
            continue; // stale heap entry
        }
        // Select this candidate.
        let guard_policies: Vec<PolicyId> = state.policies.iter().copied().collect();
        selected.push(Guard {
            condition: state.condition.clone(),
            policies: guard_policies.clone(),
            est_rows: state.est_rows,
        });
        covered.extend(guard_policies.iter().copied());
        let selected_idx = entry_.idx;
        states[selected_idx].policies.clear();
        states[selected_idx].version += 1;

        // Shrink intersecting candidates and reinsert with new utility.
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for pid in &guard_policies {
            if let Some(idxs) = containing.get(pid) {
                for &j in idxs {
                    if j != selected_idx {
                        touched.insert(j);
                    }
                }
            }
        }
        for j in touched {
            let s = &mut states[j];
            let before = s.policies.len();
            for pid in &guard_policies {
                s.policies.remove(pid);
            }
            if s.policies.len() != before {
                s.version += 1;
                if !s.policies.is_empty() {
                    heap.push(HeapEntry {
                        utility: cost.guard_utility(s.est_rows, s.policies.len(), table_rows),
                        idx: j,
                        version: s.version,
                    });
                }
            }
        }
    }

    // Fallback for uncovered policies (no guardable condition at all).
    selected.extend(owner_fallback_guards(
        policies
            .iter()
            .filter(|p| !covered.contains(&p.id))
            .map(|p| (p.id, p.owner)),
        entry,
    ));

    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::candidates::generate_candidates;
    use crate::guard::tests::{mk_policy, wifi_db};
    use crate::policy::ObjectCondition;

    #[test]
    fn partitions_are_disjoint_and_cover() {
        let db = wifi_db(4000, 16);
        let entry = db.table("wifi_dataset").unwrap();
        // Policies share a common AP condition plus per-owner conditions —
        // the shared condition should become a high-utility guard.
        let policies: Vec<_> = (0..30)
            .map(|i| {
                mk_policy(
                    i,
                    (i % 6) as i64,
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1000 + (i % 2) as i64)),
                    )],
                )
            })
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let cost = CostModel::default();
        let cands = generate_candidates(&refs, entry, &cost);
        let guards = select_guards(cands, &refs, entry, &cost);
        let mut seen = BTreeSet::new();
        for g in &guards {
            for pid in &g.policies {
                assert!(seen.insert(*pid), "policy {pid} covered twice");
            }
        }
        assert_eq!(seen.len(), 30, "all policies covered");
    }

    #[test]
    fn shared_condition_groups_policies() {
        let db = wifi_db(4000, 40);
        let entry = db.table("wifi_dataset").unwrap();
        // 20 owners (each matching ~100 rows) with one policy on the same
        // selective AP (~250 rows): the AP condition covers all 20
        // policies at the read cost of a single guard — far cheaper than
        // 20 per-owner guards reading ~2000 rows.
        let policies: Vec<_> = (0..20)
            .map(|i| {
                mk_policy(
                    i,
                    i as i64,
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1003)),
                    )],
                )
            })
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let cost = CostModel::default();
        let cands = generate_candidates(&refs, entry, &cost);
        let guards = select_guards(cands, &refs, entry, &cost);
        assert_eq!(guards.len(), 1, "one shared guard expected, got {guards:?}");
        assert_eq!(guards[0].condition.attr, "wifi_ap");
        assert_eq!(guards[0].partition_size(), 20);
    }

    #[test]
    fn selective_owner_guards_beat_broad_shared_condition() {
        let db = wifi_db(4000, 2000);
        let entry = db.table("wifi_dataset").unwrap();
        // Each owner matches ~2 rows; a shared time-range condition
        // covering 100% of the table is useless as a guard.
        let policies: Vec<_> = (0..5)
            .map(|i| {
                mk_policy(
                    i,
                    i as i64,
                    vec![ObjectCondition::new(
                        "ts_time",
                        CondPredicate::between(Value::Time(0), Value::Time(86399)),
                    )],
                )
            })
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let cost = CostModel::default();
        let cands = generate_candidates(&refs, entry, &cost);
        let guards = select_guards(cands, &refs, entry, &cost);
        assert!(
            guards.iter().all(|g| g.condition.attr == "owner"),
            "owner guards expected, got {guards:?}"
        );
        assert_eq!(guards.len(), 5);
    }

    #[test]
    fn empty_policy_set_yields_no_guards() {
        let db = wifi_db(100, 4);
        let entry = db.table("wifi_dataset").unwrap();
        let cost = CostModel::default();
        let guards = select_guards(Vec::new(), &[], entry, &cost);
        assert!(guards.is_empty());
    }

    #[test]
    fn deterministic_output() {
        let db = wifi_db(2000, 20);
        let entry = db.table("wifi_dataset").unwrap();
        let policies: Vec<_> = (0..25)
            .map(|i| {
                mk_policy(
                    i,
                    (i % 7) as i64,
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1000 + (i % 3) as i64)),
                    )],
                )
            })
            .collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let cost = CostModel::default();
        let run = || {
            let cands = generate_candidates(&refs, entry, &cost);
            select_guards(cands, &refs, entry, &cost)
        };
        assert_eq!(run(), run(), "selection must be deterministic");
    }
}
