//! `sieve-core` — the SIEVE middleware (Pappachan et al., VLDB 2020).
//!
//! SIEVE makes fine-grained access control scale to thousands of per-user
//! policies by combining two reductions (paper Section 3.2):
//!
//! 1. **Fewer policies per tuple** — filter policies by query metadata
//!    ([`filter`]), then use tuple context inside the ∆ operator
//!    ([`delta`]) so each tuple is only checked against its owner's
//!    policies.
//! 2. **Fewer tuples per policy** — factor the policy set into *guarded
//!    expressions* ([`guard`]): cheap index-supported predicates, each
//!    guarding a partition of the policies, selected by the cost model
//!    ([`cost`]) via candidate merging (Theorem 1) and utility-greedy set
//!    cover (Algorithm 1).
//!
//! The middleware surface comes in two shapes over one implementation:
//!
//! * [`service::SieveService`] — the **concurrent** middleware object
//!   (`Send + Sync`, cheap clones, the whole query path at `&self`):
//!   what a server shares across connection threads. Per-querier
//!   [`session::Session`] handles capture the metadata once, and
//!   [`session::Prepared`] statements pin a compiled rewrite for
//!   repeated zero-middleware execution.
//! * [`middleware::Sieve`] — the single-owner façade (a thin wrapper
//!   over the service) with the classic `&mut self` API and direct
//!   `&mut` backend access; experiments and tests use this.
//!
//! Either way, a query plus its metadata is rewritten ([`rewrite`]) with
//! `WITH` clauses, index hints and inline-vs-∆ choices, and executed on a
//! pluggable execution backend ([`backend::SqlBackend`] — the in-process
//! [`backend::MinidbBackend`] by default, or the textual
//! `backend::WireSqlBackend` which ships rendered SQL across a simulated
//! wire as the paper's middleware does against a real server).
//! [`baselines`] implements the paper's comparison
//! strategies and [`semantics`] the reference oracle both are tested
//! against. [`dynamic`] adds the Section 6 machinery for evolving policy
//! sets, and [`store`] persists policies and guards as regular relations
//! (`rP`, `rOC`, `rGE`, `rGG`, `rGP`). [`deny`] folds deny policies into
//! the allow-only model the enforcement path assumes. [`batch`] amortizes
//! guard generation across batches of concurrent queriers — shared
//! candidate generation per `(purpose, relation)` group, per-querier set
//! cover (parallelized across threads under the service).

#![warn(missing_docs)]
// The query path must fail closed with typed errors, never panic: gate
// `unwrap`/`expect`/`panic!` behind clippy's disallowed lists (see the
// root `clippy.toml`). Tests opt back in — a failed assertion *should*
// panic there.
#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]

pub mod analyze;
pub mod backend;
pub mod baselines;
pub mod batch;
pub mod cache;
pub mod cost;
pub mod delta;
pub mod deny;
pub mod dynamic;
pub mod error;
pub mod filter;
pub mod guard;
pub mod lru;
pub mod middleware;
pub mod policy;
pub mod rewrite;
pub mod semantics;
pub mod service;
pub mod session;
pub mod store;
pub mod visitor;

pub use analyze::{AnalysisReport, Finding, FindingKind, Verdict};
pub use backend::{
    BackendError, BackendResult, Fault, FaultConfig, FaultCounts, FaultInjectingBackend,
    MinidbBackend, SqlBackend,
};
#[cfg(feature = "wire-sql")]
pub use backend::WireSqlBackend;
pub use batch::{BatchGroupReport, BatchPrepareReport};
pub use error::{SieveError, SieveResult};
pub use cache::{GuardCache, GuardCacheStats};
pub use cost::{AccessStrategy, CostModel, StrategyCosts};
pub use filter::{policy_applies, relevant_policies, GroupDirectory};
pub use guard::{Guard, GuardSelectionStrategy, GuardedExpression};
pub use middleware::{RetryPolicy, Sieve, SieveOptions};
pub use policy::{
    Action, CondPredicate, ObjectCondition, Policy, PolicyId, QuerierSpec, QueryMetadata,
    UserId, OWNER_ATTR, PURPOSE_ANY,
};
pub use service::{RecoveryStats, SieveService};
pub use session::{Prepared, Session};
