//! A small capacity-bounded map with LRU-on-access eviction — the same
//! retention policy as the sharded [`crate::cache::GuardCache`], packaged
//! for reuse by the parsed-SQL cache and the wire backend's statement
//! template cache.
//!
//! Reads bump a per-entry stamp from a shared atomic clock, so lookups
//! work through `&self` (under an outer read lock); inserts take `&mut
//! self` (an outer write lock) and evict exactly one least-recently-used
//! victim at capacity — never the incoming key, and never the whole map.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// String-keyed LRU map. Callers wrap it in a `RwLock`: `get` only needs
/// the read side, `insert` the write side.
#[derive(Debug)]
pub struct LruMap<V> {
    map: HashMap<String, LruEntry<V>>,
    clock: AtomicU64,
    cap: usize,
}

#[derive(Debug)]
struct LruEntry<V> {
    value: V,
    last_used: AtomicU64,
}

impl<V: Clone> LruMap<V> {
    /// Empty map holding at most `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        LruMap {
            map: HashMap::new(),
            clock: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up a key, marking it most-recently-used on hit.
    pub fn get(&self, key: &str) -> Option<V> {
        let entry = self.map.get(key)?;
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(entry.value.clone())
    }

    /// Insert a key, evicting the single least-recently-used entry when
    /// the map is at capacity (the incoming key is never the victim).
    pub fn insert(&mut self, key: String, value: V) {
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                self.map.remove(&v);
            }
        }
        let stamp = self.tick();
        self.map.insert(
            key,
            LruEntry {
                value,
                last_used: AtomicU64::new(stamp),
            },
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True iff `key` is cached (does not touch recency).
    pub fn contains_key(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut m = LruMap::new(4);
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(1));
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn evicts_single_lru_victim() {
        let mut m = LruMap::new(3);
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        m.insert("c".into(), 3);
        // Touch "a": "b" is now the LRU entry.
        assert_eq!(m.get("a"), Some(1));
        m.insert("d".into(), 4);
        assert_eq!(m.len(), 3);
        assert!(m.contains_key("a"));
        assert!(!m.contains_key("b"), "LRU victim must be evicted");
        assert!(m.contains_key("c"));
        assert!(m.contains_key("d"));
    }

    #[test]
    fn hot_key_survives_churn() {
        let mut m = LruMap::new(8);
        m.insert("hot".into(), 0);
        for i in 0..64 {
            assert_eq!(m.get("hot"), Some(0), "hot key evicted at churn {i}");
            m.insert(format!("cold{i}"), i);
            assert_eq!(m.len(), 8.min(i as usize + 2));
        }
        assert!(m.contains_key("hot"));
    }

    #[test]
    fn reinsert_at_cap_does_not_evict() {
        let mut m = LruMap::new(2);
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        m.insert("a".into(), 10);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("a"), Some(10));
        assert_eq!(m.get("b"), Some(2));
    }
}
