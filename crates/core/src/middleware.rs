//! The single-owner SIEVE middleware façade (paper Section 5).
//!
//! [`Sieve`] is a thin wrapper over the concurrent
//! [`SieveService`](crate::service::SieveService): same enforcement, same
//! caches, same backends — but owned by one caller, with the classic
//! `&mut self` API and direct `&mut` escape hatches
//! ([`Sieve::db_mut`], [`Sieve::backend_mut`], [`Sieve::options_mut`])
//! that a shared service cannot hand out. Experiments, tests and
//! single-threaded embedding use this type; a server that multiplexes
//! connections uses [`SieveService`](crate::service::SieveService) plus
//! per-connection [`Session`](crate::session::Session) handles instead.
//!
//! Queries come in with their metadata, get rewritten against the
//! querier's guarded expressions, and the rewritten query is executed by
//! whatever engine the backend reaches — the in-process
//! [`MinidbBackend`] by default, or the textual `WireSqlBackend` that
//! ships rendered SQL across a simulated wire. Policies enter through
//! [`Sieve::add_policy`], which marks affected guarded expressions
//! outdated; regeneration happens lazily at query time per the
//! configured [`RegenerationPolicy`] (Sections 5.1 and 6).
//!
//! Out-of-band engine mutation ([`Sieve::db_mut`] /
//! [`Sieve::backend_mut`]) bumps a **backend epoch**; cached guards
//! carry the epoch they were generated under and lazily regenerate once
//! it trails, so row estimates, owner-fallback guards and compiled ∆
//! partitions can never act on data mutated underneath them.

use crate::backend::{MinidbBackend, SqlBackend};
use crate::baselines::Baseline;
use crate::batch::BatchPrepareReport;
use crate::cache::GuardCacheStats;
use crate::cost::CostModel;
use crate::dynamic::RegenerationPolicy;
use crate::filter::GroupDirectory;
use crate::guard::{GuardSelectionStrategy, GuardedExpression};
use crate::policy::{Policy, PolicyId, QueryMetadata};
use crate::error::SieveResult;
use crate::rewrite::{RewriteOptions, RewriteOutput};
use crate::service::{MappedReadGuard, RecoveryStats, ServiceShared, SieveService};
use minidb::plan::SelectQuery;
use minidb::stats::ExecStats;
use minidb::{Database, QueryResult};
use parking_lot::RwLockReadGuard;
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How the service retries retryable backend failures
/// ([`crate::backend::BackendError::is_retryable`]): bounded attempts,
/// deterministic exponential backoff, and an optional wall-clock budget.
/// Non-retryable errors ignore this policy entirely and fail closed on
/// the first attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`3` ⇒ up to 4 attempts total).
    /// `0` disables retrying.
    pub max_retries: u32,
    /// Backoff before retry *n* is `base_backoff × 2^(n−1)`, capped at
    /// [`RetryPolicy::max_backoff`]. Deterministic — no jitter — so fault
    /// schedules replay identically under a fixed seed.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Total wall-clock budget across all attempts of one operation;
    /// `None` bounds recovery by attempt count alone.
    pub budget: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
            budget: Some(Duration::from_secs(1)),
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before retry `attempt` (1-based).
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        self.base_backoff
            .saturating_mul(1u32 << shift)
            .min(self.max_backoff)
    }
}

/// Configuration of the middleware.
#[derive(Debug, Clone, Default)]
pub struct SieveOptions {
    /// Guard selection strategy (Algorithm 1 vs the owner-only ablation).
    pub selection: GuardSelectionStrategy,
    /// Rewrite knobs (inline-vs-∆, pushdown, forced strategy).
    pub rewrite: RewriteOptions,
    /// When stale guarded expressions are regenerated.
    pub regeneration: RegenerationPolicy,
    /// Query timeout (the paper's Experiment 3 uses 30 s).
    pub timeout: Option<Duration>,
    /// Worker threads for the engine's morsel-parallel scans (0 or 1 =
    /// sequential). Plumbed into every query's [`minidb::ExecOptions`].
    pub exec_threads: usize,
    /// Mirror policies and guards into the `rP`/`rOC`/`rGE`/`rGG`/`rGP`
    /// relations (Section 5.1).
    pub persist: bool,
    /// Retry/backoff policy for retryable backend failures.
    pub retry: RetryPolicy,
    /// Run the static soundness verifier ([`crate::analyze`]) on every
    /// *cold* guard generation and fragment compilation, hard-failing
    /// the query path with [`crate::SieveError::SoundnessRefuted`] when
    /// a rewritten predicate provably admits a row outside the allowed
    /// policies. `Unknown` verdicts are findings for the audit tooling,
    /// not query failures. Warm (cached) paths never re-verify, so the
    /// steady-state overhead is zero.
    pub verify_rewrites: bool,
}

/// Which enforcement mechanism to run a query under (for experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enforcement {
    /// Full SIEVE (guards + strategy selection + inline/∆).
    Sieve,
    /// One of the paper's baselines.
    Baseline(Baseline),
    /// No access control at all (measures raw query cost).
    NoPolicies,
}

/// The single-owner middleware, generic over its execution backend. The
/// default parameter keeps every pre-existing `Sieve` call site compiling
/// against the in-process engine.
pub struct Sieve<B: SqlBackend = MinidbBackend> {
    service: SieveService<B>,
}

impl Sieve<MinidbBackend> {
    /// Wrap an in-process database behind the default backend. Installs
    /// the ∆ UDF; creates the policy relations when persistence is on.
    pub fn new(db: Database, options: SieveOptions) -> SieveResult<Self> {
        Self::with_backend(MinidbBackend::new(db), options)
    }

    /// The wrapped database (read access; holds the backend read lock
    /// for the guard's lifetime).
    pub fn db(&self) -> MappedReadGuard<'_, MinidbBackend, Database> {
        self.service.db()
    }

    /// The wrapped database (mutable, e.g. for loading data). Bumps the
    /// backend epoch: guards generated before this access regenerate
    /// lazily on their next use, since the caller may mutate rows or
    /// schema underneath them.
    ///
    /// Requires exclusive ownership of the underlying service — panics if
    /// a [`Sieve::service`] clone or session handle is still alive (use
    /// [`SieveService::with_db_mut`] in that case).
    pub fn db_mut(&mut self) -> &mut Database {
        self.bump_backend_epoch();
        self.shared_mut().backend.get_mut().db_mut()
    }
}

impl<B: SqlBackend> Sieve<B> {
    /// Wrap an arbitrary execution backend. Installs the ∆ UDF; creates
    /// the policy relations when persistence is on.
    pub fn with_backend(backend: B, options: SieveOptions) -> SieveResult<Self> {
        Ok(Sieve {
            service: SieveService::with_backend(backend, options)?,
        })
    }

    /// The shared service this façade wraps. Cloning it (or creating
    /// sessions from it) is how a single-owner setup graduates to
    /// concurrent use — but note that while any clone lives, the `&mut`
    /// escape hatches ([`Sieve::db_mut`] and friends) panic; use the
    /// service's `with_*_mut` closures instead.
    pub fn service(&self) -> &SieveService<B> {
        &self.service
    }

    /// Consume the façade, yielding the service handle.
    pub fn into_service(self) -> SieveService<B> {
        self.service
    }

    // A still-alive clone here is a caller contract violation, not a
    // query-path fault — the documented panic stays (allowed past the
    // fail-closed lint gate deliberately).
    #[allow(clippy::disallowed_methods)]
    fn shared_mut(&mut self) -> &mut ServiceShared<B> {
        Arc::get_mut(&mut self.service.inner).expect(
            "Sieve's &mut accessors need exclusive ownership of the underlying \
             SieveService, but a clone/session is still alive; use the \
             SieveService with_*_mut methods instead",
        )
    }

    fn bump_backend_epoch(&self) {
        self.service.inner.backend_epoch.fetch_add(1, Ordering::SeqCst);
        self.service.inner.revision.fetch_add(1, Ordering::SeqCst);
    }

    fn bump_revision(&self) {
        self.service.inner.revision.fetch_add(1, Ordering::SeqCst);
    }

    /// The execution backend (read access; holds the backend read lock).
    pub fn backend(&self) -> RwLockReadGuard<'_, B> {
        self.service.backend()
    }

    /// The execution backend (mutable). Bumps the backend epoch, exactly
    /// like [`Sieve::db_mut`]: any cached guard generated before this
    /// access is treated as stale and regenerated on its next use. Panics
    /// if a service clone or session is still alive.
    pub fn backend_mut(&mut self) -> &mut B {
        self.bump_backend_epoch();
        self.shared_mut().backend.get_mut()
    }

    /// The current backend write-epoch (observability/tests).
    pub fn backend_epoch(&self) -> u64 {
        self.service.backend_epoch()
    }

    /// Current cost model (copy).
    pub fn cost_model(&self) -> CostModel {
        self.service.cost_model()
    }

    /// Replace the cost model (e.g. after [`crate::cost::calibrate`]).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.service.set_cost_model(cost);
    }

    /// Calibrate the cost model against a loaded table (Section 5.4).
    pub fn calibrate(&mut self, table: &str, sample_rows: usize) -> SieveResult<()> {
        self.service.calibrate(table, sample_rows)
    }

    /// Group directory (mutable, for registering memberships). Panics if
    /// a service clone or session is still alive.
    pub fn groups_mut(&mut self) -> &mut GroupDirectory {
        self.bump_revision();
        self.shared_mut().groups.get_mut()
    }

    /// Group directory (read access; holds its read lock).
    pub fn groups(&self) -> RwLockReadGuard<'_, GroupDirectory> {
        self.service.groups()
    }

    /// Options in effect (read access; holds their read lock).
    pub fn options(&self) -> RwLockReadGuard<'_, SieveOptions> {
        self.service.options_ref()
    }

    /// Mutable options (e.g. to force a strategy between runs). Panics if
    /// a service clone or session is still alive.
    pub fn options_mut(&mut self) -> &mut SieveOptions {
        self.bump_revision();
        self.shared_mut().options.get_mut()
    }

    /// Number of registered policies.
    pub fn policy_count(&self) -> usize {
        self.service.policy_count()
    }

    /// Snapshot of the registered policies (clones).
    pub fn policies(&self) -> Vec<Policy> {
        self.service.policies()
    }

    /// Register a policy. Marks affected guarded expressions outdated and
    /// (optionally) persists to the policy relations.
    pub fn add_policy(&mut self, policy: Policy) -> SieveResult<PolicyId> {
        self.service.add_policy(policy)
    }

    /// Bulk registration.
    pub fn add_policies(&mut self, policies: impl IntoIterator<Item = Policy>) -> SieveResult<()> {
        self.service.add_policies(policies)
    }

    /// Drop all cached guarded expressions and free their ∆ partitions.
    pub fn invalidate_all(&mut self) {
        self.service.invalidate_all()
    }

    /// Guard-cache counters (hits, misses, invalidations, fragment work).
    pub fn cache_stats(&self) -> GuardCacheStats {
        self.service.cache_stats()
    }

    /// Recovery counters (retries, reconnects, re-prepares, exhausted
    /// budgets).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.service.recovery_stats()
    }

    /// Guarded-expression generations performed (observability).
    pub fn generations(&self) -> u64 {
        self.service.generations()
    }

    /// Live ∆ partitions (observability: cached fragments keep theirs
    /// registered; precise invalidation must keep this bounded).
    pub fn delta_len(&self) -> usize {
        self.service.delta_len()
    }

    /// Declare a relation access-controlled even before any policy exists
    /// for it. Under the opt-out default (Section 3.1) a protected
    /// relation with no applicable policies yields **no rows** — without
    /// this declaration a brand-new table would be world-readable until
    /// its first policy arrived. [`Sieve::add_policy`] protects the
    /// policy's relation implicitly.
    pub fn protect(&mut self, relation: impl Into<String>) {
        self.service.protect(relation)
    }

    /// Relations currently under access control (read access).
    pub fn protected_relations(&self) -> RwLockReadGuard<'_, HashSet<String>> {
        self.service.protected_relations()
    }

    /// The guarded expression for (querier, purpose, relation), generating
    /// or refreshing it per the regeneration policy.
    pub fn guarded_expression(
        &mut self,
        qm: &QueryMetadata,
        relation: &str,
    ) -> SieveResult<GuardedExpression> {
        self.service.guarded_expression(qm, relation)
    }

    /// Rewrite a query for a querier without executing it (Section 5.6's
    /// output; useful for inspection and tests). Satisfied by the guard
    /// cache on repeat queries.
    pub fn rewrite(&mut self, query: &SelectQuery, qm: &QueryMetadata) -> SieveResult<RewriteOutput> {
        self.service.rewrite(query, qm)
    }

    /// Execute a query under SIEVE enforcement.
    pub fn execute(&mut self, query: &SelectQuery, qm: &QueryMetadata) -> SieveResult<QueryResult> {
        self.service.execute(query, qm)
    }

    /// Execute and time a query under any enforcement mechanism; the
    /// experiment harness's single entry point.
    pub fn run_timed(
        &mut self,
        enforcement: Enforcement,
        query: &SelectQuery,
        qm: &QueryMetadata,
    ) -> (SieveResult<QueryResult>, ExecStats) {
        self.service.run_timed(enforcement, query, qm)
    }

    /// Produce the executable query for an enforcement mechanism without
    /// running it.
    pub fn prepare(
        &mut self,
        enforcement: Enforcement,
        query: &SelectQuery,
        qm: &QueryMetadata,
    ) -> SieveResult<SelectQuery> {
        self.service.prepare(enforcement, query, qm)
    }

    /// Parse SQL, then [`Sieve::execute`]. Repeat textual queries reuse
    /// the cached AST instead of re-parsing.
    pub fn execute_sql(&mut self, sql: &str, qm: &QueryMetadata) -> SieveResult<QueryResult> {
        self.service.execute_sql(sql, qm)
    }

    /// Number of parsed-SQL cache entries (observability/tests).
    pub fn sql_cache_len(&self) -> usize {
        self.service.sql_cache_len()
    }

    /// True iff this exact SQL text is cached (observability/tests).
    pub fn sql_cache_contains(&self, sql: &str) -> bool {
        self.service.sql_cache_contains(sql)
    }

    /// Warm-populate the guard cache for a batch of concurrent queriers;
    /// see [`SieveService::prepare_batch`].
    pub fn prepare_batch(
        &mut self,
        requests: &[(QueryMetadata, SelectQuery)],
    ) -> SieveResult<BatchPrepareReport> {
        self.service.prepare_batch(requests)
    }

    /// Execute a batch of queries under SIEVE enforcement, amortizing
    /// guard generation across queriers via [`Sieve::prepare_batch`].
    /// Results are in request order and identical to calling
    /// [`Sieve::execute`] per request.
    pub fn execute_batch(
        &mut self,
        requests: &[(QueryMetadata, SelectQuery)],
    ) -> SieveResult<Vec<QueryResult>> {
        self.service.execute_batch(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::relevant_policies;
    use crate::policy::{CondPredicate, ObjectCondition, QuerierSpec};
    use crate::service::SQL_CACHE_CAP;
    use minidb::value::DataType;
    use minidb::{DbProfile, TableSchema, Value};

    fn loaded_sieve(profile: DbProfile) -> Sieve {
        let mut db = Database::new(profile);
        db.create_table(TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        ))
        .unwrap();
        for i in 0..4000i64 {
            db.insert(
                "wifi_dataset",
                vec![
                    Value::Int(i),
                    Value::Int(i % 80),
                    Value::Int(1000 + i % 10),
                    Value::Time(((i * 53) % 86400) as u32),
                ],
            )
            .unwrap();
        }
        for col in ["owner", "wifi_ap", "ts_time"] {
            db.create_index("wifi_dataset", col).unwrap();
        }
        db.analyze("wifi_dataset").unwrap();
        let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
        // Owners 0..20 allow querier 500 to see their data at AP 1001.
        for owner in 0..20i64 {
            sieve
                .add_policy(Policy::new(
                    owner,
                    "wifi_dataset",
                    QuerierSpec::User(500),
                    "Analytics",
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1001)),
                    )],
                ))
                .unwrap();
        }
        sieve
    }

    fn oracle_rows(sieve: &Sieve, qm: &QueryMetadata) -> Vec<minidb::Row> {
        let policies = sieve.policies();
        let relevant: Vec<&Policy> =
            relevant_policies(policies.iter(), "wifi_dataset", qm, &sieve.groups());
        let mut rows =
            crate::semantics::visible_rows(&*sieve.db(), "wifi_dataset", &relevant).unwrap();
        rows.sort();
        rows
    }

    #[test]
    fn sieve_matches_oracle_end_to_end() {
        for profile in [DbProfile::MySqlLike, DbProfile::PostgresLike] {
            let mut sieve = loaded_sieve(profile);
            let qm = QueryMetadata::new(500, "Analytics");
            let q = SelectQuery::star_from("wifi_dataset");
            let mut got = sieve.execute(&q, &qm).unwrap().rows;
            got.sort();
            let expect = oracle_rows(&sieve, &qm);
            assert_eq!(got, expect, "profile {profile:?}");
            assert!(!got.is_empty());
        }
    }

    #[test]
    fn unauthorized_querier_sees_nothing() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(501, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        assert!(sieve.execute(&q, &qm).unwrap().is_empty());
    }

    #[test]
    fn wrong_purpose_sees_nothing() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Marketing");
        let q = SelectQuery::star_from("wifi_dataset");
        assert!(sieve.execute(&q, &qm).unwrap().is_empty());
    }

    #[test]
    fn all_enforcement_mechanisms_agree() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let expect = oracle_rows(&sieve, &qm);
        for e in [
            Enforcement::Sieve,
            Enforcement::Baseline(Baseline::P),
            Enforcement::Baseline(Baseline::I),
            Enforcement::Baseline(Baseline::U),
        ] {
            let (res, _) = sieve.run_timed(e, &q, &qm);
            let mut rows = res.unwrap().rows;
            rows.sort();
            assert_eq!(rows, expect, "mechanism {e:?} diverged");
        }
    }

    #[test]
    fn cache_regenerates_on_policy_insert() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let n0 = sieve.execute(&q, &qm).unwrap().len();
        let gens_before = sieve.generations();
        // Re-running does not regenerate.
        sieve.execute(&q, &qm).unwrap();
        assert_eq!(sieve.generations(), gens_before);
        // New policy for owner 71 at AP 1001 (owner 71 ⇒ i%10 == 1 ⇒
        // wifi_ap 1001) → more rows visible.
        sieve
            .add_policy(Policy::new(
                71,
                "wifi_dataset",
                QuerierSpec::User(500),
                "Analytics",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Eq(Value::Int(1001)),
                )],
            ))
            .unwrap();
        let n1 = sieve.execute(&q, &qm).unwrap().len();
        assert!(n1 > n0);
        assert_eq!(sieve.generations(), gens_before + 1);
    }

    #[test]
    fn manual_regeneration_still_enforces_pending() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        sieve.options_mut().regeneration = RegenerationPolicy::Manual;
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let n0 = sieve.execute(&q, &qm).unwrap().len();
        sieve
            .add_policy(Policy::new(
                71,
                "wifi_dataset",
                QuerierSpec::User(500),
                "Analytics",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Eq(Value::Int(1001)),
                )],
            ))
            .unwrap();
        let gens = sieve.generations();
        // No regeneration, but the pending policy must still be enforced
        // (appended as an extra guard branch).
        let n1 = sieve.execute(&q, &qm).unwrap().len();
        assert_eq!(sieve.generations(), gens);
        assert!(n1 > n0);
    }

    #[test]
    fn group_policies_via_directory() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        sieve.groups_mut().add_member(9, 777);
        sieve
            .add_policy(Policy::new(
                42,
                "wifi_dataset",
                QuerierSpec::Group(9),
                "Any",
                vec![],
            ))
            .unwrap();
        let qm = QueryMetadata::new(777, "Whatever");
        let q = SelectQuery::star_from("wifi_dataset");
        let rows = sieve.execute(&q, &qm).unwrap().rows;
        assert_eq!(rows.len(), 50); // owner 42 of 80 owners over 4000 rows
        assert!(rows.iter().all(|r| r[1] == Value::Int(42)));
    }

    #[test]
    fn protected_relation_with_no_policies_denies_all() {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(minidb::TableSchema::of(
            "t",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        db.insert("t", vec![Value::Int(0), Value::Int(1)]).unwrap();
        let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
        let qm = QueryMetadata::new(1, "Any");
        let q = SelectQuery::star_from("t");
        // Without protection the table is outside access control.
        assert_eq!(sieve.execute(&q, &qm).unwrap().len(), 1);
        // Once protected, the empty policy set denies everything.
        sieve.protect("t");
        assert!(sieve.execute(&q, &qm).unwrap().is_empty());
    }

    #[test]
    fn out_of_band_insert_regenerates_stale_guards() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let n0 = sieve.execute(&q, &qm).unwrap().len();
        let gens = sieve.generations();
        // Re-running is a cache hit.
        sieve.execute(&q, &qm).unwrap();
        assert_eq!(sieve.generations(), gens);
        // Out-of-band mutation through db_mut: new rows for owner 0 at the
        // allowed AP. The cached guard (and its ∆/fragment state) was
        // generated against the old data; the epoch bump must force lazy
        // regeneration, and the new rows must be visible.
        let epoch_before = sieve.backend_epoch();
        for i in 0..5i64 {
            sieve
                .db_mut()
                .insert(
                    "wifi_dataset",
                    vec![
                        Value::Int(100_000 + i),
                        Value::Int(0),
                        Value::Int(1001),
                        Value::Time(0),
                    ],
                )
                .unwrap();
        }
        assert!(sieve.backend_epoch() > epoch_before);
        let n1 = sieve.execute(&q, &qm).unwrap().len();
        assert_eq!(n1, n0 + 5, "out-of-band rows must be enforced & visible");
        assert_eq!(
            sieve.generations(),
            gens + 1,
            "stale-epoch entry must regenerate exactly once"
        );
        // And only once: the regenerated entry is fresh again.
        sieve.execute(&q, &qm).unwrap();
        assert_eq!(sieve.generations(), gens + 1);
    }

    #[test]
    fn backend_mut_bumps_epoch_like_db_mut() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let e0 = sieve.backend_epoch();
        let _ = sieve.backend_mut();
        let _ = sieve.db_mut();
        assert_eq!(sieve.backend_epoch(), e0 + 2);
    }

    #[test]
    fn sql_cache_evicts_one_entry_not_all() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        // Churn through more distinct texts than the cache holds: the
        // cache must stay pinned at the cap (single-entry LRU eviction),
        // never empty out the way a full clear() would.
        let sql_for = |i: usize| {
            format!("SELECT * FROM wifi_dataset WHERE wifi_ap = {}", 1000 + i as i64)
        };
        for i in 0..(SQL_CACHE_CAP + 50) {
            sieve.execute_sql(&sql_for(i), &qm).unwrap();
            let len = sieve.sql_cache_len();
            assert!(len >= 1, "cache fully emptied at insertion {i}");
            assert!(len <= SQL_CACHE_CAP, "cache exceeded cap at insertion {i}");
            if i >= SQL_CACHE_CAP {
                assert_eq!(
                    len, SQL_CACHE_CAP,
                    "churn past the cap must keep the cache full, not wipe it"
                );
            }
        }
        // No text was re-read after insertion, so recency order equals
        // insertion order and LRU degenerates to FIFO: the survivors are
        // exactly the most recent SQL_CACHE_CAP texts — a freshly cached
        // query is never the next victim.
        assert!(!sieve.sql_cache_contains(&sql_for(49)), "oldest must be evicted");
        assert!(sieve.sql_cache_contains(&sql_for(50)), "cap-th newest must survive");
        assert!(sieve.sql_cache_contains(&sql_for(SQL_CACHE_CAP + 49)));
    }

    #[test]
    fn sql_cache_lru_keeps_reused_text_under_churn() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let hot = "SELECT * FROM wifi_dataset WHERE wifi_ap = 1001";
        let cold_for =
            |i: usize| format!("SELECT * FROM wifi_dataset WHERE id < {}", i as i64 + 1);
        sieve.execute_sql(hot, &qm).unwrap();
        // Interleave the hot text with SQL_CACHE_CAP + 50 one-shot texts.
        // Under the old FIFO policy the hot entry would be evicted once
        // SQL_CACHE_CAP distinct texts followed it, no matter how often it
        // was re-executed; LRU-on-access must keep it and evict only the
        // stalest one-shot instead.
        for i in 0..(SQL_CACHE_CAP + 50) {
            sieve.execute_sql(&cold_for(i), &qm).unwrap();
            sieve.execute_sql(hot, &qm).unwrap();
            assert!(
                sieve.sql_cache_contains(hot),
                "hot text evicted after {} one-shot texts",
                i + 1
            );
        }
        // The key that survives the churn is the re-accessed one; the
        // oldest untouched one-shot is the victim.
        assert!(sieve.sql_cache_contains(hot));
        assert!(!sieve.sql_cache_contains(&cold_for(0)));
        assert!(sieve.sql_cache_contains(&cold_for(SQL_CACHE_CAP + 49)));
    }

    #[test]
    fn sql_entry_point() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let res = sieve
            .execute_sql(
                "SELECT COUNT(*) AS n FROM wifi_dataset WHERE wifi_ap = 1001",
                &qm,
            )
            .unwrap();
        let n = res.rows[0][0].as_int().unwrap();
        assert!(n > 0);
        // 20 owners × 50 rows at AP 1001 each... exactly the oracle count.
        let expect = oracle_rows(&sieve, &qm).len() as i64;
        assert_eq!(n, expect);
    }

    #[test]
    fn wrapper_graduates_to_service_and_sessions() {
        let sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let expect = oracle_rows(&sieve, &qm);
        let service = sieve.into_service();
        let session = service.session(qm);
        let mut rows = session.execute(&q).unwrap().rows;
        rows.sort();
        assert_eq!(rows, expect, "session path must match the façade path");
    }
}
