//! The SIEVE middleware façade (paper Section 5).
//!
//! [`Sieve`] owns an execution backend ([`SqlBackend`]) the way the
//! paper's middleware sits in front of MySQL/PostgreSQL: queries come in
//! with their metadata, get rewritten against the querier's guarded
//! expressions, and the rewritten query is executed by whatever engine
//! the backend reaches — the in-process [`MinidbBackend`] by default, or
//! the textual `WireSqlBackend` that ships rendered SQL across a
//! simulated wire. Policies enter through [`Sieve::add_policy`], which
//! marks affected guarded expressions outdated; regeneration happens
//! lazily at query time per the configured [`RegenerationPolicy`]
//! (Sections 5.1 and 6).
//!
//! Out-of-band engine mutation ([`Sieve::db_mut`] /
//! [`Sieve::backend_mut`]) bumps a **backend epoch**; cached guards
//! carry the epoch they were generated under and lazily regenerate once
//! it trails, so row estimates, owner-fallback guards and compiled ∆
//! partitions can never act on data mutated underneath them.

use crate::backend::{MinidbBackend, SqlBackend};
use crate::baselines::{
    rewrite_baseline_i, rewrite_baseline_p, rewrite_baseline_u, Baseline,
};
use crate::batch::{BatchGroupReport, BatchPrepareReport};
use crate::cache::{CachedFragment, CachedGuard, GuardCache, GuardCacheKey, GuardCacheStats};
use crate::cost::CostModel;
use crate::delta::{DeltaRegistry, PartitionKey};
use crate::dynamic::{optimal_regeneration_interval, RegenerationPolicy};
use crate::filter::{policy_applies, relevant_policies, GroupDirectory};
use crate::guard::{
    generate_guarded_expression, owner_fallback_guards, GuardSelectionStrategy,
    GuardedExpression,
};
use crate::policy::{Policy, PolicyId, QueryMetadata};
use crate::rewrite::{
    classify_protected_refs, collect_protected, compile_guard_fragment, rewrite_query,
    CompiledRelation, RewriteOptions, RewriteOutput,
};
use crate::store::{
    create_policy_tables, persist_guarded_expression, persist_policy, GuardTableIds,
    PolicyStore,
};
use minidb::error::{DbError, DbResult};
use minidb::exec::ExecOptions;
use minidb::plan::SelectQuery;
use minidb::stats::ExecStats;
use minidb::{Database, QueryResult};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Bound on the parsed-SQL cache (entries); repeat textual queries skip
/// the parser, a full cache is simply dropped.
const SQL_CACHE_CAP: usize = 256;

/// Configuration of the middleware.
#[derive(Debug, Clone, Default)]
pub struct SieveOptions {
    /// Guard selection strategy (Algorithm 1 vs the owner-only ablation).
    pub selection: GuardSelectionStrategy,
    /// Rewrite knobs (inline-vs-∆, pushdown, forced strategy).
    pub rewrite: RewriteOptions,
    /// When stale guarded expressions are regenerated.
    pub regeneration: RegenerationPolicy,
    /// Query timeout (the paper's Experiment 3 uses 30 s).
    pub timeout: Option<Duration>,
    /// Mirror policies and guards into the `rP`/`rOC`/`rGE`/`rGG`/`rGP`
    /// relations (Section 5.1).
    pub persist: bool,
}

/// Which enforcement mechanism to run a query under (for experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enforcement {
    /// Full SIEVE (guards + strategy selection + inline/∆).
    Sieve,
    /// One of the paper's baselines.
    Baseline(Baseline),
    /// No access control at all (measures raw query cost).
    NoPolicies,
}

/// The middleware, generic over its execution backend. The default
/// parameter keeps every pre-existing `Sieve` call site compiling against
/// the in-process engine.
pub struct Sieve<B: SqlBackend = MinidbBackend> {
    backend: B,
    /// Backend write-epoch: bumped on every mutable backend access, so
    /// guards generated before an out-of-band write are detectably stale.
    backend_epoch: u64,
    store: PolicyStore,
    groups: GroupDirectory,
    cost: CostModel,
    delta: Arc<DeltaRegistry>,
    options: SieveOptions,
    cache: GuardCache,
    protected: HashSet<String>,
    guard_ids: GuardTableIds,
    oc_id: i64,
    /// ∆ partitions registered by the last baseline rewrite, reclaimed on
    /// the next one (baselines bypass the guard cache).
    baseline_delta_keys: Vec<PartitionKey>,
    /// Parsed-SQL cache for [`Sieve::execute_sql`]: repeat textual queries
    /// reuse the AST instead of re-parsing.
    sql_cache: HashMap<String, Arc<SelectQuery>>,
    /// Insertion order of `sql_cache` keys — FIFO eviction at the cap, so
    /// a long-lived hot entry survives ~`SQL_CACHE_CAP` insertions rather
    /// than being an arbitrary hash-order victim every round.
    sql_cache_order: std::collections::VecDeque<String>,
    /// Guarded-expression generations performed (observability).
    pub generations: u64,
}

impl Sieve<MinidbBackend> {
    /// Wrap an in-process database behind the default backend. Installs
    /// the ∆ UDF; creates the policy relations when persistence is on.
    pub fn new(db: Database, options: SieveOptions) -> DbResult<Self> {
        Self::with_backend(MinidbBackend::new(db), options)
    }

    /// The wrapped database (read access).
    pub fn db(&self) -> &Database {
        self.backend.db()
    }

    /// The wrapped database (mutable, e.g. for loading data). Bumps the
    /// backend epoch: guards generated before this access regenerate
    /// lazily on their next use, since the caller may mutate rows or
    /// schema underneath them.
    pub fn db_mut(&mut self) -> &mut Database {
        self.backend_epoch += 1;
        self.backend.db_mut()
    }
}

impl<B: SqlBackend> Sieve<B> {
    /// Wrap an arbitrary execution backend. Installs the ∆ UDF; creates
    /// the policy relations when persistence is on.
    pub fn with_backend(mut backend: B, options: SieveOptions) -> DbResult<Self> {
        let delta = DeltaRegistry::new();
        delta.install(&mut backend);
        if options.persist {
            create_policy_tables(&mut backend)?;
        }
        Ok(Sieve {
            backend,
            backend_epoch: 0,
            store: PolicyStore::new(),
            groups: GroupDirectory::new(),
            cost: CostModel::default(),
            delta,
            options,
            cache: GuardCache::new(),
            protected: HashSet::new(),
            guard_ids: GuardTableIds::default(),
            oc_id: 0,
            baseline_delta_keys: Vec::new(),
            sql_cache: HashMap::new(),
            sql_cache_order: std::collections::VecDeque::new(),
            generations: 0,
        })
    }

    /// The execution backend (read access).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The execution backend (mutable). Bumps the backend epoch, exactly
    /// like [`Sieve::db_mut`]: any cached guard generated before this
    /// access is treated as stale and regenerated on its next use.
    pub fn backend_mut(&mut self) -> &mut B {
        self.backend_epoch += 1;
        &mut self.backend
    }

    /// The current backend write-epoch (observability/tests).
    pub fn backend_epoch(&self) -> u64 {
        self.backend_epoch
    }

    /// Current cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Replace the cost model (e.g. after [`crate::cost::calibrate`]).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
        self.invalidate_all();
    }

    /// Calibrate the cost model against a loaded table (Section 5.4).
    pub fn calibrate(&mut self, table: &str, sample_rows: usize) -> DbResult<()> {
        let policies: Vec<&Policy> = self.store.iter().take(64).collect();
        let model = crate::cost::calibrate(&self.backend, table, &policies, sample_rows)?;
        self.cost = model;
        self.invalidate_all();
        Ok(())
    }

    /// Group directory (mutable, for registering memberships).
    pub fn groups_mut(&mut self) -> &mut GroupDirectory {
        &mut self.groups
    }

    /// Group directory.
    pub fn groups(&self) -> &GroupDirectory {
        &self.groups
    }

    /// Options in effect.
    pub fn options(&self) -> &SieveOptions {
        &self.options
    }

    /// Mutable options (e.g. to force a strategy between runs).
    pub fn options_mut(&mut self) -> &mut SieveOptions {
        &mut self.options
    }

    /// Number of registered policies.
    pub fn policy_count(&self) -> usize {
        self.store.len()
    }

    /// Iterate registered policies.
    pub fn policies(&self) -> impl Iterator<Item = &Policy> {
        self.store.iter()
    }

    /// Register a policy. Marks affected guarded expressions outdated and
    /// (optionally) persists to the policy relations.
    pub fn add_policy(&mut self, policy: Policy) -> DbResult<PolicyId> {
        let id = self.store.add(policy);
        let stored = self.store.get(id).expect("just inserted").clone();
        self.protected.insert(stored.relation.clone());
        if self.options.persist {
            persist_policy(&mut self.backend, &stored, &mut self.oc_id)?;
        }
        // Outdate exactly the cached expressions the policy affects (the
        // precise invalidation path of Section 6's delta machinery).
        let groups = &self.groups;
        self.cache.invalidate_where(id, |(querier, purpose, relation)| {
            *relation == stored.relation && {
                let qm = QueryMetadata::new(*querier, purpose.clone());
                policy_applies(&stored, &qm, groups)
            }
        });
        Ok(id)
    }

    /// Bulk registration.
    pub fn add_policies(&mut self, policies: impl IntoIterator<Item = Policy>) -> DbResult<()> {
        for p in policies {
            self.add_policy(p)?;
        }
        Ok(())
    }

    /// Drop all cached guarded expressions and free their ∆ partitions.
    pub fn invalidate_all(&mut self) {
        let keys = self.cache.clear();
        self.delta.remove(&keys);
        self.delta.remove(&std::mem::take(&mut self.baseline_delta_keys));
    }

    /// Guard-cache counters (hits, misses, invalidations, fragment work).
    pub fn cache_stats(&self) -> GuardCacheStats {
        self.cache.stats()
    }

    /// Live ∆ partitions (observability: cached fragments keep theirs
    /// registered; precise invalidation must keep this bounded).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Declare a relation access-controlled even before any policy exists
    /// for it. Under the opt-out default (Section 3.1) a protected
    /// relation with no applicable policies yields **no rows** — without
    /// this declaration a brand-new table would be world-readable until
    /// its first policy arrived. [`Sieve::add_policy`] protects the
    /// policy's relation implicitly.
    pub fn protect(&mut self, relation: impl Into<String>) {
        self.protected.insert(relation.into());
    }

    /// Relations currently under access control.
    pub fn protected_relations(&self) -> &HashSet<String> {
        &self.protected
    }

    /// The guarded expression for (querier, purpose, relation), generating
    /// or refreshing it per the regeneration policy. Returns the
    /// expression actually used for enforcement (stale + pending branches
    /// under `OptimalRate`/`Manual` when below the regeneration threshold).
    pub fn guarded_expression(
        &mut self,
        qm: &QueryMetadata,
        relation: &str,
    ) -> DbResult<GuardedExpression> {
        let key = self.refresh_entry(qm, relation)?;
        Ok((*self.cache.get(&key).expect("refreshed").effective).clone())
    }

    /// True iff the entry must be regenerated before use: its backend
    /// epoch trails (out-of-band data/schema mutation — a correctness
    /// hazard that overrides the regeneration policy), or it is outdated
    /// and due under the configured policy (Section 6's threshold for
    /// `OptimalRate`).
    fn regeneration_due(&self, c: &CachedGuard) -> bool {
        if c.epoch != self.backend_epoch {
            return true;
        }
        c.outdated
            && match self.options.regeneration {
                RegenerationPolicy::Immediate => true,
                RegenerationPolicy::Manual => false,
                RegenerationPolicy::OptimalRate {
                    queries_per_insertion,
                } => {
                    let guards = c.base.guards.len().max(1) as f64;
                    let rho_avg = c.base.total_guard_rows() / guards;
                    let k = optimal_regeneration_interval(
                        &self.cost,
                        rho_avg,
                        queries_per_insertion,
                    );
                    c.pending.len() as f64 >= k
                }
            }
    }

    /// True iff the key requires a fresh generation: no cache entry, or an
    /// outdated one past its regeneration threshold. Shared by the
    /// per-query refresh path and [`Sieve::prepare_batch`].
    fn needs_generation(&self, key: &GuardCacheKey) -> bool {
        match self.cache.get(key) {
            None => true,
            Some(c) => self.regeneration_due(c),
        }
    }

    /// Ensure the cache entry exists and is fresh per the regeneration
    /// policy, with its effective expression (base + pending branches)
    /// up to date. Returns the cache key. The warm path is a single cache
    /// lookup.
    fn refresh_entry(&mut self, qm: &QueryMetadata, relation: &str) -> DbResult<GuardCacheKey> {
        let key = (qm.querier, qm.purpose.clone(), relation.to_string());
        // One lookup decides both whether to regenerate and whether the
        // effective expression must fold in newly pending policies.
        let (needs_generation, stale_pending): (bool, Option<Vec<PolicyId>>) =
            match self.cache.get(&key) {
                None => (true, None),
                Some(c) => {
                    let needs = self.regeneration_due(c);
                    let stale = (!needs && c.effective_pending_len != c.pending.len())
                        .then(|| c.pending.clone());
                    (needs, stale)
                }
            };

        if needs_generation {
            let expr = self.generate(qm, relation)?;
            let freed =
                self.cache
                    .insert_generated(key.clone(), Arc::new(expr), self.backend_epoch);
            self.delta.remove(&freed);
        } else {
            self.cache.record_hit();
        }

        // Fold pending policies into the effective expression as per-owner
        // fallback branches (Section 6: queries between regenerations use
        // G plus the k new policies). Rebuilt only when the pending set
        // changed since the last query; a freshly generated entry has no
        // pending.
        if let Some(pending) = stale_pending {
            let mut expr = (*self.cache.get(&key).expect("present").base).clone();
            let entry = self.backend.table_entry(relation)?;
            expr.guards.extend(owner_fallback_guards(
                pending
                    .iter()
                    .filter_map(|pid| self.store.get(*pid).map(|p| (*pid, p.owner))),
                entry,
            ));
            let c = self.cache.get_mut(&key).expect("present");
            c.effective = Arc::new(expr);
            c.effective_pending_len = pending.len();
        }
        Ok(key)
    }

    /// The compiled relation (effective expression + rewrite fragment) for
    /// a protected relation, reusing the cached fragment when fresh and
    /// recompiling it (freeing the superseded ∆ partitions) when not.
    fn compiled_relation(
        &mut self,
        qm: &QueryMetadata,
        relation: &str,
    ) -> DbResult<CompiledRelation> {
        let key = self.refresh_entry(qm, relation)?;
        let mode = self.options.rewrite.delta_mode;
        // Warm path: one lookup checks freshness and extracts the output.
        let fresh = {
            let c = self.cache.get(&key).expect("refreshed");
            c.fragment_fresh(mode).then(|| CompiledRelation {
                expr: Arc::clone(&c.effective),
                fragment: Arc::clone(&c.fragment.as_ref().expect("fresh implies built").fragment),
            })
        };
        if let Some(out) = fresh {
            self.cache.record_fragment_hit();
            return Ok(out);
        }
        let (old_keys, effective, pending_len) = {
            let c = self.cache.get(&key).expect("refreshed");
            (
                c.fragment
                    .as_ref()
                    .map(|f| f.fragment.delta_keys.clone())
                    .unwrap_or_default(),
                Arc::clone(&c.effective),
                c.pending.len(),
            )
        };
        self.delta.remove(&old_keys);
        let by_id = self.store.by_id();
        let fragment = Arc::new(compile_guard_fragment(
            &self.backend,
            &self.delta,
            &effective,
            &by_id,
            &self.cost,
            mode,
        )?);
        let c = self.cache.get_mut(&key).expect("refreshed");
        c.fragment = Some(CachedFragment {
            fragment: Arc::clone(&fragment),
            pending_len,
            delta_mode: mode,
        });
        self.cache.record_fragment_build();
        Ok(CompiledRelation {
            expr: effective,
            fragment,
        })
    }

    fn generate(&mut self, qm: &QueryMetadata, relation: &str) -> DbResult<GuardedExpression> {
        let relevant = relevant_policies(self.store.iter(), relation, qm, &self.groups);
        let entry = self.backend.table_entry(relation)?;
        let expr = generate_guarded_expression(
            &relevant,
            entry,
            &self.cost,
            self.options.selection,
            qm.querier,
            &qm.purpose,
            relation,
        );
        self.generations += 1;
        if self.options.persist {
            persist_guarded_expression(&mut self.backend, &expr, false, &mut self.guard_ids)?;
        }
        Ok(expr)
    }

    /// Rewrite a query for a querier without executing it (Section 5.6's
    /// output; useful for inspection and tests). Satisfied by the guard
    /// cache on repeat queries: both the guarded expression and its
    /// compiled rewrite fragment (including ∆ registrations) are reused.
    ///
    /// Protected relations are collected over the **whole query tree** —
    /// derived tables, WITH bodies, and scalar subqueries included — with
    /// names resolved against the query's WITH scope first (a CTE that
    /// shadows a protected name is not a base-table read). Every collected
    /// reference is guarded by [`rewrite_query`]; there is no nesting
    /// depth at which enforcement is skipped.
    pub fn rewrite(&mut self, query: &SelectQuery, qm: &QueryMetadata) -> DbResult<RewriteOutput> {
        let mut compiled: HashMap<String, CompiledRelation> = HashMap::new();
        for rel in collect_protected(query, &self.protected) {
            let cr = self.compiled_relation(qm, &rel)?;
            compiled.insert(rel, cr);
        }
        rewrite_query(&self.backend, query, &compiled, &self.cost, &self.options.rewrite)
    }

    fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            timeout: self.options.timeout,
        }
    }

    /// Execute a query under SIEVE enforcement.
    pub fn execute(&mut self, query: &SelectQuery, qm: &QueryMetadata) -> DbResult<QueryResult> {
        let rewritten = self.rewrite(query, qm)?;
        self.backend.exec(&rewritten.query, &self.exec_options())
    }

    /// Execute and time a query under any enforcement mechanism; the
    /// experiment harness's single entry point.
    pub fn run_timed(
        &mut self,
        enforcement: Enforcement,
        query: &SelectQuery,
        qm: &QueryMetadata,
    ) -> (DbResult<QueryResult>, ExecStats) {
        let prepared = match self.prepare(enforcement, query, qm) {
            Ok(q) => q,
            Err(e) => {
                return (
                    Err(e),
                    ExecStats {
                        counters: Default::default(),
                        wall: Duration::ZERO,
                        simulated_cost: 0.0,
                    },
                )
            }
        };
        let opts = self.exec_options();
        self.backend.exec_timed(&prepared, &opts)
    }

    /// Produce the executable query for an enforcement mechanism without
    /// running it (rewriting cost is *not* part of the measured times, as
    /// in the paper, which reports warm per-query execution).
    pub fn prepare(
        &mut self,
        enforcement: Enforcement,
        query: &SelectQuery,
        qm: &QueryMetadata,
    ) -> DbResult<SelectQuery> {
        match enforcement {
            Enforcement::Sieve => Ok(self.rewrite(query, qm)?.query),
            Enforcement::NoPolicies => Ok(query.clone()),
            Enforcement::Baseline(which) => {
                // The baseline rewrites (policy DNF in WHERE, per-policy
                // UNION, per-tuple UDF) attach to top-level FROM entries
                // only; a protected relation read through nesting would
                // escape them, so they fail closed instead of silently
                // under-enforcing. Sieve enforcement mediates all depths.
                let (top, nested) = classify_protected_refs(query, &self.protected);
                if !nested.is_empty() {
                    return Err(DbError::Unsupported(format!(
                        "baseline {which:?} mediates only top-level FROM references; \
                         protected relation(s) {nested:?} are read through a subquery, \
                         WITH body, or derived table — use Sieve enforcement"
                    )));
                }
                // Reclaim the previous baseline rewrite's ∆ partitions;
                // cached guard fragments keep theirs registered.
                self.delta
                    .remove(&std::mem::take(&mut self.baseline_delta_keys));
                let before = self.delta.watermark();
                let mut rewritten = query.clone();
                let rels: Vec<String> = top.into_iter().collect();
                let mut failed = None;
                for rel in rels {
                    let relevant =
                        relevant_policies(self.store.iter(), &rel, qm, &self.groups);
                    rewritten = match which {
                        Baseline::P => rewrite_baseline_p(&rewritten, &rel, &relevant),
                        Baseline::I => rewrite_baseline_i(&rewritten, &rel, &relevant),
                        Baseline::U => match rewrite_baseline_u(
                            &self.backend,
                            &self.delta,
                            &rewritten,
                            &rel,
                            &relevant,
                        ) {
                            Ok(r) => r,
                            Err(e) => {
                                failed = Some(e);
                                break;
                            }
                        },
                    };
                }
                // Record the bracket even on failure, so partitions
                // registered before a mid-loop error are reclaimed by the
                // next baseline rewrite rather than leaked.
                self.baseline_delta_keys = ((before + 1)..=self.delta.watermark()).collect();
                match failed {
                    Some(e) => Err(e),
                    None => Ok(rewritten),
                }
            }
        }
    }

    /// Parse SQL, then [`Sieve::execute`]. Repeat textual queries reuse
    /// the cached AST instead of re-parsing.
    pub fn execute_sql(&mut self, sql: &str, qm: &QueryMetadata) -> DbResult<QueryResult> {
        if let Some(q) = self.sql_cache.get(sql) {
            let q = Arc::clone(q);
            return self.execute(&q, qm);
        }
        let q = Arc::new(minidb::sql::parse(sql)?);
        if self.sql_cache.len() >= SQL_CACHE_CAP {
            // Evict the single oldest entry rather than dropping the
            // whole map: under a churning textual workload a full clear
            // would re-parse every hot query each `SQL_CACHE_CAP`
            // insertions, while FIFO eviction keeps the cache pinned at
            // the cap and guarantees a newly cached query survives the
            // next `SQL_CACHE_CAP - 1` insertions.
            if let Some(victim) = self.sql_cache_order.pop_front() {
                self.sql_cache.remove(&victim);
            }
        }
        self.sql_cache.insert(sql.to_string(), Arc::clone(&q));
        self.sql_cache_order.push_back(sql.to_string());
        self.execute(&q, qm)
    }

    /// Number of parsed-SQL cache entries (observability/tests).
    pub fn sql_cache_len(&self) -> usize {
        self.sql_cache.len()
    }

    /// True iff this exact SQL text is cached (observability/tests).
    pub fn sql_cache_contains(&self, sql: &str) -> bool {
        self.sql_cache.contains_key(sql)
    }

    /// Warm-populate the guard cache for a batch of concurrent queriers
    /// (the ROADMAP's batched multi-querier evaluation). Requests are
    /// grouped by `(purpose, relation)` over the whole query tree; each
    /// group's policy-store scan and candidate generation (policy
    /// filtering, histogram estimates, Theorem 1 merges) run **once**,
    /// and only the per-querier restriction + set cover run individually.
    /// Generated expressions enter the cache through a single bulk insert
    /// (one cap check for the batch). Keys already fresh per the
    /// regeneration policy are left untouched.
    ///
    /// Batching changes the work schedule, not the semantics: each
    /// querier's expression covers exactly its relevant policies, so
    /// rewriting or executing afterwards returns exactly what sequential
    /// [`Sieve::execute`] calls would.
    pub fn prepare_batch(
        &mut self,
        requests: &[(QueryMetadata, SelectQuery)],
    ) -> DbResult<BatchPrepareReport> {
        let groups_map = crate::batch::group_requests(requests, &self.protected);
        let mut report = BatchPrepareReport::default();
        let mut to_insert: Vec<(GuardCacheKey, Arc<GuardedExpression>)> = Vec::new();
        for ((purpose, relation), qms) in groups_map {
            let pending: Vec<&QueryMetadata> = qms
                .iter()
                .copied()
                .filter(|qm| {
                    self.needs_generation(&(
                        qm.querier,
                        purpose.clone(),
                        relation.clone(),
                    ))
                })
                .collect();
            report.reused += qms.len() - pending.len();
            if pending.is_empty() {
                continue;
            }
            let entry = self.backend.table_entry(&relation)?;
            let group = crate::batch::build_shared_group(
                self.store.iter(),
                &relation,
                &purpose,
                entry,
                &self.cost,
            );
            for qm in &pending {
                let expr = group.generate_for(
                    qm,
                    &self.groups,
                    entry,
                    &self.cost,
                    self.options.selection,
                );
                self.generations += 1;
                to_insert.push((
                    (qm.querier, purpose.clone(), relation.clone()),
                    Arc::new(expr),
                ));
            }
            report.generated += pending.len();
            report.groups.push(BatchGroupReport {
                purpose: purpose.clone(),
                relation: relation.clone(),
                queriers: qms.len(),
                generated: pending.len(),
                slice_policies: group.slice_len,
                shared_candidates: group.shared_candidates(),
            });
        }
        if self.options.persist {
            for (_, expr) in &to_insert {
                persist_guarded_expression(&mut self.backend, expr, false, &mut self.guard_ids)?;
            }
        }
        let freed = self
            .cache
            .insert_generated_bulk(to_insert, self.backend_epoch);
        self.delta.remove(&freed);
        Ok(report)
    }

    /// Execute a batch of queries under SIEVE enforcement, amortizing
    /// guard generation across queriers via [`Sieve::prepare_batch`].
    /// Results are in request order and identical to calling
    /// [`Sieve::execute`] per request.
    pub fn execute_batch(
        &mut self,
        requests: &[(QueryMetadata, SelectQuery)],
    ) -> DbResult<Vec<QueryResult>> {
        self.prepare_batch(requests)?;
        requests
            .iter()
            .map(|(qm, q)| self.execute(q, qm))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CondPredicate, ObjectCondition, QuerierSpec};
    use minidb::value::DataType;
    use minidb::{DbProfile, TableSchema, Value};

    fn loaded_sieve(profile: DbProfile) -> Sieve {
        let mut db = Database::new(profile);
        db.create_table(TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        ))
        .unwrap();
        for i in 0..4000i64 {
            db.insert(
                "wifi_dataset",
                vec![
                    Value::Int(i),
                    Value::Int(i % 80),
                    Value::Int(1000 + i % 10),
                    Value::Time(((i * 53) % 86400) as u32),
                ],
            )
            .unwrap();
        }
        for col in ["owner", "wifi_ap", "ts_time"] {
            db.create_index("wifi_dataset", col).unwrap();
        }
        db.analyze("wifi_dataset").unwrap();
        let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
        // Owners 0..20 allow querier 500 to see their data at AP 1001.
        for owner in 0..20i64 {
            sieve
                .add_policy(Policy::new(
                    owner,
                    "wifi_dataset",
                    QuerierSpec::User(500),
                    "Analytics",
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1001)),
                    )],
                ))
                .unwrap();
        }
        sieve
    }

    fn oracle_rows(sieve: &Sieve, qm: &QueryMetadata) -> Vec<minidb::Row> {
        let relevant: Vec<&Policy> = relevant_policies(
            sieve.store.iter(),
            "wifi_dataset",
            qm,
            &sieve.groups,
        );
        let mut rows =
            crate::semantics::visible_rows(sieve.db(), "wifi_dataset", &relevant).unwrap();
        rows.sort();
        rows
    }

    #[test]
    fn sieve_matches_oracle_end_to_end() {
        for profile in [DbProfile::MySqlLike, DbProfile::PostgresLike] {
            let mut sieve = loaded_sieve(profile);
            let qm = QueryMetadata::new(500, "Analytics");
            let q = SelectQuery::star_from("wifi_dataset");
            let mut got = sieve.execute(&q, &qm).unwrap().rows;
            got.sort();
            let expect = oracle_rows(&sieve, &qm);
            assert_eq!(got, expect, "profile {profile:?}");
            assert!(!got.is_empty());
        }
    }

    #[test]
    fn unauthorized_querier_sees_nothing() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(501, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        assert!(sieve.execute(&q, &qm).unwrap().is_empty());
    }

    #[test]
    fn wrong_purpose_sees_nothing() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Marketing");
        let q = SelectQuery::star_from("wifi_dataset");
        assert!(sieve.execute(&q, &qm).unwrap().is_empty());
    }

    #[test]
    fn all_enforcement_mechanisms_agree() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let expect = oracle_rows(&sieve, &qm);
        for e in [
            Enforcement::Sieve,
            Enforcement::Baseline(Baseline::P),
            Enforcement::Baseline(Baseline::I),
            Enforcement::Baseline(Baseline::U),
        ] {
            let (res, _) = sieve.run_timed(e, &q, &qm);
            let mut rows = res.unwrap().rows;
            rows.sort();
            assert_eq!(rows, expect, "mechanism {e:?} diverged");
        }
    }

    #[test]
    fn cache_regenerates_on_policy_insert() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let n0 = sieve.execute(&q, &qm).unwrap().len();
        let gens_before = sieve.generations;
        // Re-running does not regenerate.
        sieve.execute(&q, &qm).unwrap();
        assert_eq!(sieve.generations, gens_before);
        // New policy for owner 71 at AP 1001 (owner 71 ⇒ i%10 == 1 ⇒
        // wifi_ap 1001) → more rows visible.
        sieve
            .add_policy(Policy::new(
                71,
                "wifi_dataset",
                QuerierSpec::User(500),
                "Analytics",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Eq(Value::Int(1001)),
                )],
            ))
            .unwrap();
        let n1 = sieve.execute(&q, &qm).unwrap().len();
        assert!(n1 > n0);
        assert_eq!(sieve.generations, gens_before + 1);
    }

    #[test]
    fn manual_regeneration_still_enforces_pending() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        sieve.options_mut().regeneration = RegenerationPolicy::Manual;
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let n0 = sieve.execute(&q, &qm).unwrap().len();
        sieve
            .add_policy(Policy::new(
                71,
                "wifi_dataset",
                QuerierSpec::User(500),
                "Analytics",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Eq(Value::Int(1001)),
                )],
            ))
            .unwrap();
        let gens = sieve.generations;
        // No regeneration, but the pending policy must still be enforced
        // (appended as an extra guard branch).
        let n1 = sieve.execute(&q, &qm).unwrap().len();
        assert_eq!(sieve.generations, gens);
        assert!(n1 > n0);
    }

    #[test]
    fn group_policies_via_directory() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        sieve.groups_mut().add_member(9, 777);
        sieve
            .add_policy(Policy::new(
                42,
                "wifi_dataset",
                QuerierSpec::Group(9),
                "Any",
                vec![],
            ))
            .unwrap();
        let qm = QueryMetadata::new(777, "Whatever");
        let q = SelectQuery::star_from("wifi_dataset");
        let rows = sieve.execute(&q, &qm).unwrap().rows;
        assert_eq!(rows.len(), 50); // owner 42 of 80 owners over 4000 rows
        assert!(rows.iter().all(|r| r[1] == Value::Int(42)));
    }

    #[test]
    fn protected_relation_with_no_policies_denies_all() {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(minidb::TableSchema::of(
            "t",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        db.insert("t", vec![Value::Int(0), Value::Int(1)]).unwrap();
        let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
        let qm = QueryMetadata::new(1, "Any");
        let q = SelectQuery::star_from("t");
        // Without protection the table is outside access control.
        assert_eq!(sieve.execute(&q, &qm).unwrap().len(), 1);
        // Once protected, the empty policy set denies everything.
        sieve.protect("t");
        assert!(sieve.execute(&q, &qm).unwrap().is_empty());
    }

    #[test]
    fn out_of_band_insert_regenerates_stale_guards() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let n0 = sieve.execute(&q, &qm).unwrap().len();
        let gens = sieve.generations;
        // Re-running is a cache hit.
        sieve.execute(&q, &qm).unwrap();
        assert_eq!(sieve.generations, gens);
        // Out-of-band mutation through db_mut: new rows for owner 0 at the
        // allowed AP. The cached guard (and its ∆/fragment state) was
        // generated against the old data; the epoch bump must force lazy
        // regeneration, and the new rows must be visible.
        let epoch_before = sieve.backend_epoch();
        for i in 0..5i64 {
            sieve
                .db_mut()
                .insert(
                    "wifi_dataset",
                    vec![
                        Value::Int(100_000 + i),
                        Value::Int(0),
                        Value::Int(1001),
                        Value::Time(0),
                    ],
                )
                .unwrap();
        }
        assert!(sieve.backend_epoch() > epoch_before);
        let n1 = sieve.execute(&q, &qm).unwrap().len();
        assert_eq!(n1, n0 + 5, "out-of-band rows must be enforced & visible");
        assert_eq!(
            sieve.generations,
            gens + 1,
            "stale-epoch entry must regenerate exactly once"
        );
        // And only once: the regenerated entry is fresh again.
        sieve.execute(&q, &qm).unwrap();
        assert_eq!(sieve.generations, gens + 1);
    }

    #[test]
    fn backend_mut_bumps_epoch_like_db_mut() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let e0 = sieve.backend_epoch();
        let _ = sieve.backend_mut();
        let _ = sieve.db_mut();
        assert_eq!(sieve.backend_epoch(), e0 + 2);
    }

    #[test]
    fn sql_cache_evicts_one_entry_not_all() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        // Churn through more distinct texts than the cache holds: the
        // cache must stay pinned at the cap (single-entry FIFO eviction),
        // never empty out the way the old full clear() did.
        let sql_for = |i: usize| {
            format!("SELECT * FROM wifi_dataset WHERE wifi_ap = {}", 1000 + i as i64)
        };
        for i in 0..(SQL_CACHE_CAP + 50) {
            sieve.execute_sql(&sql_for(i), &qm).unwrap();
            let len = sieve.sql_cache_len();
            assert!(len >= 1, "cache fully emptied at insertion {i}");
            assert!(len <= SQL_CACHE_CAP, "cache exceeded cap at insertion {i}");
            if i >= SQL_CACHE_CAP {
                assert_eq!(
                    len, SQL_CACHE_CAP,
                    "churn past the cap must keep the cache full, not wipe it"
                );
            }
        }
        // FIFO: the survivors are exactly the most recent SQL_CACHE_CAP
        // texts — a freshly cached query is never the next victim.
        assert!(!sieve.sql_cache_contains(&sql_for(49)), "oldest must be evicted");
        assert!(sieve.sql_cache_contains(&sql_for(50)), "cap-th newest must survive");
        assert!(sieve.sql_cache_contains(&sql_for(SQL_CACHE_CAP + 49)));
    }

    #[test]
    fn sql_entry_point() {
        let mut sieve = loaded_sieve(DbProfile::MySqlLike);
        let qm = QueryMetadata::new(500, "Analytics");
        let res = sieve
            .execute_sql(
                "SELECT COUNT(*) AS n FROM wifi_dataset WHERE wifi_ap = 1001",
                &qm,
            )
            .unwrap();
        let n = res.rows[0][0].as_int().unwrap();
        assert!(n > 0);
        // 20 owners × 50 rows at AP 1001 each... exactly the oracle count.
        let expect = oracle_rows(&sieve, &qm).len() as i64;
        assert_eq!(n, expect);
    }
}
