//! The access-control policy model (paper Section 3.1).
//!
//! A policy `p = ⟨OC, QC, AC⟩` consists of *object conditions* (a
//! conjunction over attributes of the protected relation, always including
//! the owner condition `oc_owner`), *querier conditions* (who may ask, for
//! what purpose — the Purpose-Based Access Control model), and an *action*
//! (allow; deny policies are factored into allows per the paper).

use minidb::expr::{CmpOp, ColumnRef, Expr};
use minidb::plan::SelectQuery;
use minidb::value::Value;
use minidb::RangeBound;
use std::fmt;

/// Policy identifier.
pub type PolicyId = u64;

/// User (device owner / querier) identifier. Matches the integer `owner`
/// column of the datasets.
pub type UserId = i64;

/// Group identifier.
pub type GroupId = i64;

/// Who a policy grants access to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QuerierSpec {
    /// A specific user.
    User(UserId),
    /// Every member of a group (`qc_querier = ⟨QM_querier, =, group(u)⟩`).
    Group(GroupId),
}

/// Policy action. Deny policies are pre-factored into allow policies
/// (Section 3.1), so only `Allow` reaches enforcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Action {
    /// Grant access to the matching tuples.
    #[default]
    Allow,
}

/// The predicate of one object condition.
#[derive(Debug, Clone, PartialEq)]
pub enum CondPredicate {
    /// `attr = v`.
    Eq(Value),
    /// `attr != v`.
    Ne(Value),
    /// `attr IN (…)`.
    In(Vec<Value>),
    /// `attr NOT IN (…)`.
    NotIn(Vec<Value>),
    /// `attr` within a (possibly half-open) range — covers `<`, `<=`, `>`,
    /// `>=` and `BETWEEN`.
    Range {
        /// Lower bound.
        low: RangeBound,
        /// Upper bound.
        high: RangeBound,
    },
    /// `attr = (SELECT …)` — a derived value obtained by a (possibly
    /// correlated) scalar subquery, the paper's "expensive operator"
    /// object condition.
    Derived(Box<SelectQuery>),
}

impl CondPredicate {
    /// Range with both endpoints inclusive (SQL `BETWEEN`).
    pub fn between(low: Value, high: Value) -> Self {
        CondPredicate::Range {
            low: RangeBound::Inclusive(low),
            high: RangeBound::Inclusive(high),
        }
    }

    /// `attr >= v`.
    pub fn ge(v: Value) -> Self {
        CondPredicate::Range {
            low: RangeBound::Inclusive(v),
            high: RangeBound::Unbounded,
        }
    }

    /// `attr <= v`.
    pub fn le(v: Value) -> Self {
        CondPredicate::Range {
            low: RangeBound::Unbounded,
            high: RangeBound::Inclusive(v),
        }
    }

    /// True iff the predicate is a constant shape that can serve as a guard
    /// (Section 3.2: guards are simple predicates with constant values).
    pub fn is_constant(&self) -> bool {
        !matches!(self, CondPredicate::Derived(_))
    }
}

/// One object condition: an attribute plus its predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectCondition {
    /// Attribute (column) of the protected relation.
    pub attr: String,
    /// Predicate over the attribute.
    pub pred: CondPredicate,
}

impl ObjectCondition {
    /// Construct a condition.
    pub fn new(attr: impl Into<String>, pred: CondPredicate) -> Self {
        ObjectCondition {
            attr: attr.into(),
            pred,
        }
    }

    /// Convert to an engine expression over the bare column name (bound
    /// against the protected relation's layout at rewrite time).
    pub fn to_expr(&self) -> Expr {
        let col = Expr::Column(ColumnRef::bare(self.attr.clone()));
        match &self.pred {
            CondPredicate::Eq(v) => Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(col),
                rhs: Box::new(Expr::Literal(v.clone())),
            },
            CondPredicate::Ne(v) => Expr::Cmp {
                op: CmpOp::Ne,
                lhs: Box::new(col),
                rhs: Box::new(Expr::Literal(v.clone())),
            },
            CondPredicate::In(vs) => Expr::InList {
                expr: Box::new(col),
                list: vs.iter().cloned().map(Expr::Literal).collect(),
                negated: false,
            },
            CondPredicate::NotIn(vs) => Expr::InList {
                expr: Box::new(col),
                list: vs.iter().cloned().map(Expr::Literal).collect(),
                negated: true,
            },
            CondPredicate::Range { low, high } => {
                // Render as BETWEEN when both bounds are inclusive, else as
                // conjoined comparisons.
                match (low, high) {
                    (RangeBound::Inclusive(a), RangeBound::Inclusive(b)) => Expr::Between {
                        expr: Box::new(col),
                        low: Box::new(Expr::Literal(a.clone())),
                        high: Box::new(Expr::Literal(b.clone())),
                        negated: false,
                    },
                    _ => {
                        let mut parts = Vec::new();
                        match low {
                            RangeBound::Inclusive(v) => parts.push(Expr::col_cmp(
                                ColumnRef::bare(self.attr.clone()),
                                CmpOp::Ge,
                                v.clone(),
                            )),
                            RangeBound::Exclusive(v) => parts.push(Expr::col_cmp(
                                ColumnRef::bare(self.attr.clone()),
                                CmpOp::Gt,
                                v.clone(),
                            )),
                            RangeBound::Unbounded => {}
                        }
                        match high {
                            RangeBound::Inclusive(v) => parts.push(Expr::col_cmp(
                                ColumnRef::bare(self.attr.clone()),
                                CmpOp::Le,
                                v.clone(),
                            )),
                            RangeBound::Exclusive(v) => parts.push(Expr::col_cmp(
                                ColumnRef::bare(self.attr.clone()),
                                CmpOp::Lt,
                                v.clone(),
                            )),
                            RangeBound::Unbounded => {}
                        }
                        Expr::all(parts)
                    }
                }
            }
            CondPredicate::Derived(q) => Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(col),
                rhs: Box::new(Expr::ScalarSubquery(q.clone())),
            },
        }
    }
}

impl fmt::Display for ObjectCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", minidb::sql::render_expr(&self.to_expr()))
    }
}

/// An access-control policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Identifier (assigned by the store; 0 until registered).
    pub id: PolicyId,
    /// The owner whose data the policy covers. Implies the mandatory
    /// `oc_owner` object condition `owner = <owner>`.
    pub owner: UserId,
    /// The protected relation.
    pub relation: String,
    /// Who is granted access.
    pub querier: QuerierSpec,
    /// Query purpose the grant applies to (`"Any"` is the wildcard).
    pub purpose: String,
    /// Action (always allow).
    pub action: Action,
    /// Object conditions *beyond* `oc_owner`.
    pub conditions: Vec<ObjectCondition>,
    /// Additional querier conditions over query-context attributes
    /// (Section 3.1: "other pieces of querier context, such as the IP of
    /// the machine from where the querier posed the query, or the time of
    /// the day, can easily be added as querier conditions"). Each entry
    /// `(attr, value)` must match the query metadata's context exactly.
    pub querier_context: Vec<(String, Value)>,
    /// Logical insertion timestamp (used by the Section 6 dynamic model).
    pub inserted_at: u64,
}

/// Name of the owner column mandated by the data model ("this ownership is
/// explicitly stated in the tuple by using the attribute r.owner", §3.1).
pub const OWNER_ATTR: &str = "owner";

/// The purpose wildcard.
pub const PURPOSE_ANY: &str = "Any";

impl Policy {
    /// Create a policy; `conditions` must not include the owner condition
    /// (it is implied and added by [`Policy::object_conditions`]).
    pub fn new(
        owner: UserId,
        relation: impl Into<String>,
        querier: QuerierSpec,
        purpose: impl Into<String>,
        conditions: Vec<ObjectCondition>,
    ) -> Self {
        Policy {
            id: 0,
            owner,
            relation: relation.into(),
            querier,
            purpose: purpose.into(),
            action: Action::Allow,
            conditions,
            querier_context: Vec::new(),
            inserted_at: 0,
        }
    }

    /// Add a querier-context condition (builder style).
    pub fn with_context(mut self, attr: impl Into<String>, value: Value) -> Self {
        self.querier_context.push((attr.into(), value));
        self
    }

    /// The mandatory owner condition `oc_owner`.
    pub fn owner_condition(&self) -> ObjectCondition {
        ObjectCondition::new(OWNER_ATTR, CondPredicate::Eq(Value::Int(self.owner)))
    }

    /// All object conditions, owner condition first (the full `OC_l`).
    pub fn object_conditions(&self) -> Vec<ObjectCondition> {
        let mut out = Vec::with_capacity(self.conditions.len() + 1);
        out.push(self.owner_condition());
        out.extend(self.conditions.iter().cloned());
        out
    }

    /// The conjunctive object-condition expression of this policy.
    pub fn to_expr(&self) -> Expr {
        Expr::all(
            self.object_conditions()
                .iter()
                .map(ObjectCondition::to_expr)
                .collect(),
        )
    }

    /// True iff any object condition holds a derived (subquery) value;
    /// such policies are kept inline (never routed through ∆).
    pub fn has_derived_condition(&self) -> bool {
        self.conditions
            .iter()
            .any(|c| matches!(c.pred, CondPredicate::Derived(_)))
    }

    /// True iff the policy's purpose condition accepts a query purpose.
    pub fn purpose_matches(&self, query_purpose: &str) -> bool {
        self.purpose.eq_ignore_ascii_case(PURPOSE_ANY)
            || self.purpose.eq_ignore_ascii_case(query_purpose)
    }
}

/// The DNF policy expression `E(P) = OC_1 ∨ … ∨ OC_|P|` (Section 3.1).
pub fn policy_expression(policies: &[&Policy]) -> Expr {
    Expr::any(policies.iter().map(|p| p.to_expr()).collect())
}

/// Query metadata `QM`: the querier's identity and purpose (Section 3.1),
/// plus any extra context attributes (machine IP, access channel, …).
/// Group memberships are resolved by the middleware's
/// [`GroupDirectory`](crate::filter::GroupDirectory).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMetadata {
    /// Identity of the querier.
    pub querier: UserId,
    /// Purpose of the query (e.g. `"Analytics"`).
    pub purpose: String,
    /// Extra context attributes, matched by policies' querier-context
    /// conditions.
    pub context: Vec<(String, Value)>,
}

impl QueryMetadata {
    /// Construct metadata.
    pub fn new(querier: UserId, purpose: impl Into<String>) -> Self {
        QueryMetadata {
            querier,
            purpose: purpose.into(),
            context: Vec::new(),
        }
    }

    /// Attach a context attribute (builder style).
    pub fn with_context(mut self, attr: impl Into<String>, value: Value) -> Self {
        self.context.push((attr.into(), value));
        self
    }

    /// Look up a context attribute.
    pub fn context_value(&self, attr: &str) -> Option<&Value> {
        self.context
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_policy() -> Policy {
        // John's policy from Section 3.1: allow Prof. Smith (user 500)
        // access between 9 and 10 am at AP 1200 for attendance control.
        Policy::new(
            120,
            "wifi_dataset",
            QuerierSpec::User(500),
            "Attendance",
            vec![
                ObjectCondition::new(
                    "ts_time",
                    CondPredicate::between(Value::Time(9 * 3600), Value::Time(10 * 3600)),
                ),
                ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1200))),
            ],
        )
    }

    #[test]
    fn owner_condition_is_first() {
        let p = sample_policy();
        let ocs = p.object_conditions();
        assert_eq!(ocs.len(), 3);
        assert_eq!(ocs[0].attr, OWNER_ATTR);
        assert_eq!(ocs[0].pred, CondPredicate::Eq(Value::Int(120)));
    }

    #[test]
    fn to_expr_is_conjunction() {
        let p = sample_policy();
        match p.to_expr() {
            Expr::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn purpose_matching() {
        let mut p = sample_policy();
        assert!(p.purpose_matches("attendance"));
        assert!(!p.purpose_matches("Analytics"));
        p.purpose = PURPOSE_ANY.into();
        assert!(p.purpose_matches("Analytics"));
    }

    #[test]
    fn policy_expression_is_disjunction() {
        let p1 = sample_policy();
        let mut p2 = sample_policy();
        p2.owner = 121;
        let e = policy_expression(&[&p1, &p2]);
        match e {
            Expr::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn empty_policy_set_denies_everything() {
        // Opt-out default: no policy → expression FALSE.
        let e = policy_expression(&[]);
        assert_eq!(e, Expr::Literal(Value::Bool(false)));
    }

    #[test]
    fn half_open_range_renders_as_comparison() {
        let oc = ObjectCondition::new("ts_time", CondPredicate::ge(Value::Time(3600)));
        let e = oc.to_expr();
        assert!(matches!(e, Expr::Cmp { op: CmpOp::Ge, .. }));
    }

    #[test]
    fn derived_condition_detected() {
        let q = SelectQuery::star_from("wifi_dataset");
        let mut p = sample_policy();
        p.conditions.push(ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Derived(Box::new(q)),
        ));
        assert!(p.has_derived_condition());
        assert!(!sample_policy().has_derived_condition());
    }
}
