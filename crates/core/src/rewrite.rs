//! Query rewriting (paper Sections 5.3–5.6).
//!
//! For every protected relation in a query, the rewriter builds a `WITH`
//! clause selecting exactly the tuples the querier may see, and repoints
//! the query at it:
//!
//! ```sql
//! WITH r_sieve AS (
//!   SELECT * FROM r FORCE INDEX (g1, …, gn)
//!   WHERE (oc_g1 AND qpred AND (OC_a OR OC_b OR …))
//!      OR (oc_g2 AND qpred AND delta(17, col_0, …))
//!      OR …
//! ) SELECT … FROM r_sieve …
//! ```
//!
//! Three decisions are made per relation, all cost-model driven:
//! the access strategy (`LinearScan` / `IndexQuery` / `IndexGuards`,
//! Section 5.5), per-guard inline-vs-∆ (Section 5.4), and whether to push
//! the query's own selective predicate into the guard branches
//! (Section 5.5).
//!
//! Rewriting is split in two so the middleware's guard cache can amortize
//! the expensive half: [`compile_guard_fragment`] turns a guarded
//! expression into engine expressions once (policy DNF construction and ∆
//! partition registration happen here), and [`rewrite_query`] assembles a
//! concrete query from cached fragments — per-query work is only the
//! strategy choice and predicate pushdown.
//!
//! Mediation is **complete over the query tree**: protected relations are
//! guarded wherever they are read — the top-level `FROM`, derived tables,
//! `WITH` bodies, and scalar subqueries, at any nesting depth (the
//! incomplete-mediation failure mode of guarding only the outermost
//! `FROM` is exactly what Guarnieri et al. warn against). Names are
//! resolved against the query's `WITH` scope first: a CTE that shadows a
//! protected relation name is a reference to the CTE's (already-mediated)
//! result, not a fresh read of the base table.

use crate::backend::SqlBackend;
use crate::cost::{AccessStrategy, CostModel};
use crate::delta::{delta_call_expr, DeltaRegistry, PartitionHandle, PartitionKey};
use crate::guard::GuardedExpression;
use crate::policy::{Policy, PolicyId};
use crate::error::{SieveError, SieveResult};
use minidb::expr::Expr;
use minidb::plan::{IndexHint, SelectQuery, TableRef, TableSource, WithClause};
use minidb::planner::{best_sargable_probe, classify_predicate};
use minidb::Value;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// When to route a guard's partition through the ∆ operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaMode {
    /// Cost-model decision per guard (the paper's behaviour).
    #[default]
    Auto,
    /// Always inline policy DNFs (Guard&Inlining everywhere).
    Never,
    /// Always call ∆ (except partitions with derived-value policies).
    Always,
}

/// Rewrite knobs (defaults reproduce the paper's SIEVE).
#[derive(Debug, Clone, Default)]
pub struct RewriteOptions {
    /// Inline vs ∆ policy.
    pub delta_mode: DeltaMode,
    /// Disable pushing the query's selective predicate into guard branches
    /// (Section 5.5). On by default; the ablation bench turns it off.
    pub no_predicate_pushdown: bool,
    /// Force a specific access strategy instead of the cost model's pick.
    pub forced_strategy: Option<AccessStrategy>,
}

/// What the rewriter decided for one protected relation.
#[derive(Debug, Clone)]
pub struct RelationRewrite {
    /// Base relation name.
    pub relation: String,
    /// Name of the generated WITH clause.
    pub with_name: String,
    /// Chosen access strategy.
    pub strategy: AccessStrategy,
    /// Number of guards in the guarded expression.
    pub guard_count: usize,
    /// How many guards were routed through ∆.
    pub delta_guards: usize,
    /// Σ ρ(G_i): estimated rows the guards read.
    pub est_guard_rows: f64,
    /// Optimizer estimate for the query predicate (None: not sargable).
    pub est_query_rows: Option<f64>,
}

/// A rewritten query plus the per-relation decisions.
#[derive(Debug, Clone)]
pub struct RewriteOutput {
    /// The executable rewritten query.
    pub query: SelectQuery,
    /// Decisions, one per protected relation occurrence.
    pub relations: Vec<RelationRewrite>,
    /// The compiled fragments the query was assembled from. Holding them
    /// pins the fragments' ∆ partitions (see [`PartitionHandle`]): the
    /// rewritten `query` embeds raw partition keys, so it stays executable
    /// for the lifetime of this output even if a concurrent invalidation
    /// replaces the cached fragments meanwhile.
    pub fragments: Vec<Arc<GuardFragment>>,
}

/// One guard branch compiled to engine expressions: the guard predicate
/// and its partition filter (inline policy DNF or a ∆ call), kept apart so
/// the per-query assembler can interleave a pushed query predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledBranch {
    /// The guard predicate `oc_g`.
    pub condition: Expr,
    /// The partition filter `P_Gi` (policy DNF or `delta(key, …)` call).
    pub partition: Expr,
}

/// The cacheable rewrite fragment of one guarded expression: every guard
/// branch rendered to bound-ready expressions, with its ∆ registrations.
/// Building this is the per-query cost the guard cache eliminates.
#[derive(Debug, Clone)]
pub struct GuardFragment {
    /// Compiled branches, in guard order.
    pub branches: Vec<CompiledBranch>,
    /// Distinct guard attributes (sorted) — the FORCE INDEX column list.
    pub guard_attrs: Vec<String>,
    /// Σ ρ(G_i) at compile time.
    pub est_guard_rows: f64,
    /// How many branches route their partition through ∆.
    pub delta_guards: usize,
    /// RAII leases on the ∆ partitions this fragment registered: the
    /// partitions stay resolvable while any clone of the fragment (or of
    /// a [`RewriteOutput`] built from it) is alive, and are freed when the
    /// last one drops — no manual reclamation, no use-after-free under
    /// concurrent invalidation.
    pub partitions: Vec<PartitionHandle>,
    /// The inline-vs-∆ policy the fragment was compiled under; a cached
    /// fragment is stale when the middleware's option has changed.
    pub delta_mode: DeltaMode,
}

impl GuardFragment {
    /// Keys of the ∆ partitions this fragment registered (observability).
    pub fn delta_keys(&self) -> Vec<PartitionKey> {
        self.partitions.iter().map(|h| h.key()).collect()
    }
}

/// A guarded expression paired with its compiled fragment — what the
/// rewriter consumes per protected relation.
#[derive(Debug, Clone)]
pub struct CompiledRelation {
    /// The (effective) guarded expression.
    pub expr: Arc<GuardedExpression>,
    /// Its compiled rewrite fragment.
    pub fragment: Arc<GuardFragment>,
}

/// Cross-querier memo for batched fragment compilation. Guard partitions
/// are sets of policies, and across the queriers of one
/// `prepare_batch` group the same partition recurs constantly (every
/// member of a group grant gets an identical branch). Keyed by the sorted
/// policy-id set, the memo compiles each **distinct** partition once —
/// inline DNF construction or ∆ registration — and later queriers clone
/// the compiled expression (and share the ∆ partition through another
/// RAII handle) instead of redoing the work.
#[derive(Debug, Default)]
pub struct FragmentCompileCache {
    partitions: HashMap<Vec<PolicyId>, (Expr, Option<PartitionHandle>)>,
    /// Partition compilations skipped because an identical policy set was
    /// already compiled in this batch group (observability).
    pub reuses: usize,
}

/// Compile a guarded expression into a reusable rewrite fragment: build
/// each guard's partition expression (inlining the policy DNF or
/// registering a ∆ partition per the cost model) exactly once.
pub fn compile_guard_fragment(
    backend: &dyn SqlBackend,
    delta: &Arc<DeltaRegistry>,
    ge: &GuardedExpression,
    by_id: &HashMap<PolicyId, &Policy>,
    cost: &CostModel,
    delta_mode: DeltaMode,
) -> SieveResult<GuardFragment> {
    compile_guard_fragment_memo(
        backend,
        delta,
        ge,
        by_id,
        cost,
        delta_mode,
        &mut FragmentCompileCache::default(),
    )
}

/// [`compile_guard_fragment`] with a [`FragmentCompileCache`] shared
/// across the queriers of a batch group: each distinct partition policy
/// set compiles once per group instead of once per querier.
pub fn compile_guard_fragment_memo(
    backend: &dyn SqlBackend,
    delta: &Arc<DeltaRegistry>,
    ge: &GuardedExpression,
    by_id: &HashMap<PolicyId, &Policy>,
    cost: &CostModel,
    delta_mode: DeltaMode,
    memo: &mut FragmentCompileCache,
) -> SieveResult<GuardFragment> {
    let entry = backend.table_entry(&ge.relation)?;
    let schema = entry.schema();
    let mut branches = Vec::with_capacity(ge.guards.len());
    let mut partitions = Vec::new();
    let mut delta_guards = 0usize;
    for g in &ge.guards {
        let mut memo_key: Vec<PolicyId> = g.policies.clone();
        memo_key.sort_unstable();
        memo_key.dedup();
        if let Some((expr, handle)) = memo.partitions.get(&memo_key) {
            memo.reuses += 1;
            if let Some(h) = handle {
                delta_guards += 1;
                partitions.push(h.clone());
            }
            branches.push(CompiledBranch {
                condition: g.condition.to_expr(),
                partition: expr.clone(),
            });
            continue;
        }
        let partition_policies: Vec<&Policy> = g
            .policies
            .iter()
            .filter_map(|id| by_id.get(id).copied())
            .collect();
        let has_derived = partition_policies.iter().any(|p| p.has_derived_condition());
        let distinct_owners = {
            let mut owners: Vec<i64> = partition_policies.iter().map(|p| p.owner).collect();
            owners.sort_unstable();
            owners.dedup();
            owners.len()
        };
        let use_delta = !has_derived
            && match delta_mode {
                DeltaMode::Never => false,
                DeltaMode::Always => true,
                DeltaMode::Auto => cost.prefer_delta(partition_policies.len(), distinct_owners),
            };
        let (partition, shared_handle) = if use_delta {
            delta_guards += 1;
            let handle = delta.register_partition(schema, &partition_policies)?;
            let expr = delta_call_expr(handle.key(), schema);
            partitions.push(handle.clone());
            (expr, Some(handle))
        } else {
            (
                Expr::any(partition_policies.iter().map(|p| p.to_expr()).collect()),
                None,
            )
        };
        memo.partitions
            .insert(memo_key, (partition.clone(), shared_handle));
        branches.push(CompiledBranch {
            condition: g.condition.to_expr(),
            partition,
        });
    }
    let mut guard_attrs: Vec<String> =
        ge.guards.iter().map(|g| g.condition.attr.clone()).collect();
    guard_attrs.sort_unstable();
    guard_attrs.dedup();
    Ok(GuardFragment {
        branches,
        guard_attrs,
        est_guard_rows: ge.total_guard_rows(),
        delta_guards,
        partitions,
        delta_mode,
    })
}

/// Compile fragments for a map of guarded expressions (the one-shot path
/// used by tests and direct callers without a middleware cache).
pub fn compile_relations(
    backend: &dyn SqlBackend,
    delta: &Arc<DeltaRegistry>,
    guarded: &HashMap<String, GuardedExpression>,
    by_id: &HashMap<PolicyId, &Policy>,
    cost: &CostModel,
    delta_mode: DeltaMode,
) -> SieveResult<HashMap<String, CompiledRelation>> {
    let mut out = HashMap::new();
    for (rel, ge) in guarded {
        let fragment = compile_guard_fragment(backend, delta, ge, by_id, cost, delta_mode)?;
        out.insert(
            rel.clone(),
            CompiledRelation {
                expr: Arc::new(ge.clone()),
                fragment: Arc::new(fragment),
            },
        );
    }
    Ok(out)
}

// The traversal walkers the rewriter is built on live in the shared
// visitor module (the analyzer uses them too); re-exported here so the
// historical `rewrite::collect_protected` paths keep working.
pub use crate::visitor::{classify_protected_refs, collect_protected};
use crate::visitor::{contains_subquery, strip_alias, visit_subqueries};

/// The recursive rewriter: one instance per [`rewrite_query`] call,
/// accumulating the guard WITH clauses and per-relation decisions while
/// descending through the query tree.
struct Rewriter<'a> {
    backend: &'a dyn SqlBackend,
    compiled: &'a HashMap<String, CompiledRelation>,
    cost: &'a CostModel,
    opts: &'a RewriteOptions,
    /// Scope-aware reference counts per protected relation, over the whole
    /// tree. A relation read more than once shares one WITH clause without
    /// predicate pushdown (the paper's note in Section 5.3).
    occurrences: HashMap<String, usize>,
    /// Every WITH name the original query defines anywhere, plus the guard
    /// names we allocate — guard CTE names must collide with neither.
    used_names: HashSet<String>,
    /// relation → guard WITH name, once created.
    created: HashMap<String, String>,
    guard_withs: Vec<WithClause>,
    decisions: Vec<RelationRewrite>,
}

impl Rewriter<'_> {
    /// First pass: count protected references (scope-aware) and record the
    /// WITH names in use.
    fn survey(&mut self, query: &SelectQuery, scope: &HashSet<String>) {
        let mut scope = scope.clone();
        for wc in &query.with {
            self.used_names.insert(wc.name.clone());
            self.survey(&wc.query, &scope);
            scope.insert(wc.name.clone());
        }
        for tref in &query.from {
            match &tref.source {
                TableSource::Named(rel) => {
                    if self.compiled.contains_key(rel) && !scope.contains(rel) {
                        *self.occurrences.entry(rel.clone()).or_insert(0) += 1;
                    }
                }
                TableSource::Derived(q) => self.survey(q, &scope),
            }
        }
        let mut collect = |q: &SelectQuery| self.survey(q, &scope);
        if let Some(p) = &query.predicate {
            visit_subqueries(p, &mut collect);
        }
    }

    /// Second pass: rebuild one query level, guarding protected reads and
    /// recursing into derived tables, WITH bodies, and scalar subqueries.
    fn rewrite_level(
        &mut self,
        query: &SelectQuery,
        scope: &HashSet<String>,
    ) -> SieveResult<SelectQuery> {
        let mut scope = scope.clone();
        let mut with = Vec::with_capacity(query.with.len());
        for wc in &query.with {
            let body = self.rewrite_level(&wc.query, &scope)?;
            scope.insert(wc.name.clone());
            with.push(WithClause {
                name: wc.name.clone(),
                query: body,
            });
        }

        // FROM schemas for predicate classification at this level
        // (placeholders for derived, CTE, and scope-shadowed sources).
        let mut table_schemas = Vec::new();
        for tref in &query.from {
            let schema = match &tref.source {
                TableSource::Named(name)
                    if !scope.contains(name) && self.backend.has_relation(name) =>
                {
                    self.backend.table_entry(name)?.schema().clone()
                }
                _ => Arc::new(minidb::TableSchema::new(tref.alias.clone(), vec![])),
            };
            table_schemas.push((tref.alias.clone(), schema));
        }
        let classified = query
            .predicate
            .as_ref()
            .map(|p| classify_predicate(p, &table_schemas));

        let mut from = Vec::with_capacity(query.from.len());
        for tref in &query.from {
            match &tref.source {
                TableSource::Named(rel)
                    if !scope.contains(rel) && self.compiled.contains_key(rel) =>
                {
                    let with_name = match self.created.get(rel) {
                        Some(existing) => existing.clone(),
                        None => {
                            // This level's query predicate for the alias is
                            // pushable only when this is the relation's sole
                            // read in the whole tree and the predicate has
                            // no subqueries of its own.
                            let sole =
                                self.occurrences.get(rel.as_str()).copied().unwrap_or(1) == 1;
                            let local_bare = if sole {
                                classified
                                    .as_ref()
                                    .and_then(|c| c.local_predicate(&tref.alias))
                                    .filter(|p| !contains_subquery(p))
                                    .map(|p| strip_alias(&p, &tref.alias))
                            } else {
                                None
                            };
                            self.create_guard_with(rel, local_bare)?
                        }
                    };
                    from.push(TableRef {
                        source: TableSource::Named(with_name),
                        alias: tref.alias.clone(),
                        hint: IndexHint::None,
                    });
                }
                TableSource::Named(_) => from.push(tref.clone()),
                TableSource::Derived(q) => {
                    let inner = self.rewrite_level(q, &scope)?;
                    from.push(TableRef {
                        source: TableSource::Derived(Box::new(inner)),
                        alias: tref.alias.clone(),
                        hint: tref.hint.clone(),
                    });
                }
            }
        }

        let predicate = match &query.predicate {
            Some(p) => Some(self.rewrite_expr(p, &scope)?),
            None => None,
        };

        Ok(SelectQuery {
            with,
            select: query.select.clone(),
            from,
            predicate,
            group_by: query.group_by.clone(),
            limit: query.limit,
        })
    }

    /// Rebuild an expression, descending into scalar subqueries.
    fn rewrite_expr(&mut self, e: &Expr, scope: &HashSet<String>) -> SieveResult<Expr> {
        Ok(match e {
            Expr::ScalarSubquery(q) => {
                Expr::ScalarSubquery(Box::new(self.rewrite_level(q, scope)?))
            }
            Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => e.clone(),
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(self.rewrite_expr(lhs, scope)?),
                rhs: Box::new(self.rewrite_expr(rhs, scope)?),
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.rewrite_expr(expr, scope)?),
                low: Box::new(self.rewrite_expr(low, scope)?),
                high: Box::new(self.rewrite_expr(high, scope)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.rewrite_expr(expr, scope)?),
                list: list
                    .iter()
                    .map(|x| self.rewrite_expr(x, scope))
                    .collect::<SieveResult<Vec<_>>>()?,
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.rewrite_expr(expr, scope)?),
                negated: *negated,
            },
            Expr::And(v) => Expr::And(
                v.iter()
                    .map(|x| self.rewrite_expr(x, scope))
                    .collect::<SieveResult<Vec<_>>>()?,
            ),
            Expr::Or(v) => Expr::Or(
                v.iter()
                    .map(|x| self.rewrite_expr(x, scope))
                    .collect::<SieveResult<Vec<_>>>()?,
            ),
            Expr::Not(x) => Expr::Not(Box::new(self.rewrite_expr(x, scope)?)),
            Expr::Udf { name, args } => Expr::Udf {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|x| self.rewrite_expr(x, scope))
                    .collect::<SieveResult<Vec<_>>>()?,
            },
        })
    }

    /// Build the guard WITH clause for a protected relation (strategy
    /// choice, optional pushdown, branch assembly) and record the decision.
    fn create_guard_with(&mut self, rel: &str, local_bare: Option<Expr>) -> SieveResult<String> {
        let cr = self
            .compiled
            .get(rel)
            .ok_or(SieveError::Internal("rewrite: guard WITH requested for an uncompiled relation"))?;
        let ge = &cr.expr;
        let fragment = &cr.fragment;
        let entry = self.backend.table_entry(rel)?;

        // Optimizer estimate for the query predicate (ρ(p), Section 5.5).
        let query_probe = local_bare
            .as_ref()
            .and_then(|p| best_sargable_probe(entry, rel, p));
        let est_query_rows = query_probe.as_ref().map(|p| p.estimate_rows(entry));

        let est_guard_rows = fragment.est_guard_rows;
        let strategy = self.opts.forced_strategy.unwrap_or_else(|| {
            // Guards whose attribute has no index cannot drive probes: the
            // engine's FORCE-hint union degrades to a scan as soon as one
            // disjunct is unprobeable, so cost those guards as scanned.
            let (indexed, scanned) = ge.guards.iter().fold((0.0, 0.0), |(i, s), g| {
                if entry.has_index(&g.condition.attr) {
                    (i + g.est_rows, s)
                } else {
                    (i, s + g.est_rows)
                }
            });
            self.cost
                .strategy_costs_split(entry.table.len() as f64, indexed, scanned, est_query_rows)
                .best()
        });

        // Assemble one branch per compiled guard. The pushed-down query
        // predicate exists only under IndexGuards with a local predicate.
        let pushed = match (&local_bare, strategy) {
            (Some(q), AccessStrategy::IndexGuards) if !self.opts.no_predicate_pushdown => {
                Some(q.clone())
            }
            _ => None,
        };
        let mut branches = Vec::with_capacity(fragment.branches.len());
        for b in &fragment.branches {
            let mut parts = vec![b.condition.clone()];
            if let Some(q) = &pushed {
                parts.push(q.clone());
            }
            parts.push(b.partition.clone());
            branches.push(Expr::all(parts));
        }
        let delta_guards = fragment.delta_guards;

        // Assemble the WITH body per strategy.
        let guard_or = Expr::any(branches);
        let (body_pred, hint) = match strategy {
            AccessStrategy::IndexGuards => {
                (guard_or, IndexHint::Force(fragment.guard_attrs.clone()))
            }
            AccessStrategy::IndexQuery => {
                let pred = match &local_bare {
                    Some(q) => Expr::and(q.clone(), guard_or),
                    None => guard_or,
                };
                let hint = query_probe
                    .as_ref()
                    .map(|p| IndexHint::Force(vec![p.column().to_string()]))
                    .unwrap_or(IndexHint::None);
                (pred, hint)
            }
            AccessStrategy::LinearScan => {
                let pred = match &local_bare {
                    Some(q) => Expr::and(q.clone(), guard_or),
                    None => guard_or,
                };
                (pred, IndexHint::IgnoreAll)
            }
        };

        let with_name = self.fresh_name(rel);
        self.guard_withs.push(WithClause {
            name: with_name.clone(),
            query: SelectQuery {
                with: vec![],
                select: vec![minidb::SelectItem::Star],
                from: vec![TableRef {
                    source: TableSource::Named(rel.to_string()),
                    alias: rel.to_string(),
                    hint,
                }],
                predicate: Some(body_pred),
                group_by: vec![],
                limit: None,
            },
        });
        self.created.insert(rel.to_string(), with_name.clone());
        self.decisions.push(RelationRewrite {
            relation: rel.to_string(),
            with_name: with_name.clone(),
            strategy,
            guard_count: ge.guards.len(),
            delta_guards,
            est_guard_rows,
            est_query_rows,
        });
        Ok(with_name)
    }

    /// A guard CTE name free of collisions with the query's own WITH
    /// names and with base tables.
    fn fresh_name(&mut self, rel: &str) -> String {
        let mut name = format!("{rel}_sieve");
        let mut i = 2;
        while self.used_names.contains(&name) || self.backend.has_relation(&name) {
            name = format!("{rel}_sieve{i}");
            i += 1;
        }
        self.used_names.insert(name.clone());
        name
    }
}

/// Rewrite a query under the compiled guard fragments of its protected
/// relations. `compiled` maps relation name → the querier's compiled
/// relation (see [`compile_guard_fragment`]); only cheap per-query work
/// happens here — strategy choice, predicate pushdown, WITH assembly.
///
/// The whole query tree is mediated: protected reads inside derived
/// tables, WITH bodies, and scalar subqueries are repointed at the guard
/// WITH clause exactly like top-level reads, with names resolved against
/// the WITH scope first (CTE shadowing). The guard WITH clauses are
/// prepended ahead of the query's own, so the query's CTE bodies may
/// reference them.
pub fn rewrite_query(
    backend: &dyn SqlBackend,
    original: &SelectQuery,
    compiled: &HashMap<String, CompiledRelation>,
    cost: &CostModel,
    opts: &RewriteOptions,
) -> SieveResult<RewriteOutput> {
    let mut rw = Rewriter {
        backend,
        compiled,
        cost,
        opts,
        occurrences: HashMap::new(),
        used_names: HashSet::new(),
        created: HashMap::new(),
        guard_withs: Vec::new(),
        decisions: Vec::new(),
    };
    let empty_scope = HashSet::new();
    rw.survey(original, &empty_scope);
    let mut out_query = rw.rewrite_level(original, &empty_scope)?;

    // Guard WITH clauses go first: they read only base tables, while the
    // query's own (rewritten) CTE bodies may now refer to them.
    let mut with = rw.guard_withs;
    with.append(&mut out_query.with);
    out_query.with = with;

    Ok(RewriteOutput {
        query: out_query,
        relations: rw.decisions,
        fragments: compiled.values().map(|cr| Arc::clone(&cr.fragment)).collect(),
    })
}

/// Convenience used by tests and baselines: constant FALSE (deny all).
pub fn deny_all_expr() -> Expr {
    Expr::Literal(Value::Bool(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::expr::ColumnRef;
    use crate::guard::{generate_guarded_expression, GuardSelectionStrategy};
    use crate::policy::{CondPredicate, ObjectCondition, QuerierSpec};
    use minidb::value::DataType;
    use minidb::{Database, DbProfile, TableSchema};

    fn setup() -> (Database, Vec<Policy>) {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        ))
        .unwrap();
        for i in 0..3000i64 {
            db.insert(
                "wifi_dataset",
                vec![
                    Value::Int(i),
                    Value::Int(i % 60),
                    Value::Int(1000 + i % 12),
                    Value::Time(((i * 97) % 86400) as u32),
                ],
            )
            .unwrap();
        }
        for col in ["owner", "wifi_ap", "ts_time"] {
            db.create_index("wifi_dataset", col).unwrap();
        }
        db.analyze("wifi_dataset").unwrap();
        let policies: Vec<Policy> = (0..12)
            .map(|i| {
                let mut p = Policy::new(
                    (i % 6) as i64,
                    "wifi_dataset",
                    QuerierSpec::User(999),
                    "Any",
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1000 + (i % 3) as i64)),
                    )],
                );
                p.id = i + 1;
                p
            })
            .collect();
        (db, policies)
    }

    fn guarded_for(
        db: &Database,
        policies: &[Policy],
    ) -> (HashMap<String, GuardedExpression>, CostModel) {
        let cost = CostModel::default();
        let refs: Vec<&Policy> = policies.iter().collect();
        let ge = generate_guarded_expression(
            &refs,
            db.table("wifi_dataset").unwrap(),
            &cost,
            GuardSelectionStrategy::CostOptimal,
            999,
            "Any",
            "wifi_dataset",
        );
        let mut m = HashMap::new();
        m.insert("wifi_dataset".to_string(), ge);
        (m, cost)
    }

    fn compiled_for<'a>(
        db: &Database,
        delta: &Arc<DeltaRegistry>,
        guarded: &HashMap<String, GuardedExpression>,
        policies: &'a [Policy],
        cost: &CostModel,
        mode: DeltaMode,
    ) -> HashMap<String, CompiledRelation> {
        let by_id: HashMap<PolicyId, &'a Policy> = policies.iter().map(|p| (p.id, p)).collect();
        compile_relations(db, delta, guarded, &by_id, cost, mode).unwrap()
    }

    #[test]
    fn rewrite_adds_with_clause_and_repoints_from() {
        let (db, policies) = setup();
        let (guarded, cost) = guarded_for(&db, &policies);
        let delta = DeltaRegistry::new();
        let compiled =
            compiled_for(&db, &delta, &guarded, &policies, &cost, DeltaMode::default());
        let q = SelectQuery::star_from("wifi_dataset");
        let out = rewrite_query(&db, &q, &compiled, &cost, &RewriteOptions::default()).unwrap();
        assert_eq!(out.query.with.len(), 1);
        assert_eq!(out.query.with[0].name, "wifi_dataset_sieve");
        assert!(matches!(
            &out.query.from[0].source,
            TableSource::Named(n) if n == "wifi_dataset_sieve"
        ));
        assert_eq!(out.relations.len(), 1);
        assert!(out.relations[0].guard_count > 0);
    }

    #[test]
    fn rewritten_query_enforces_policies() {
        let (db, policies) = setup();
        let (guarded, cost) = guarded_for(&db, &policies);
        let delta = DeltaRegistry::new();
        let compiled =
            compiled_for(&db, &delta, &guarded, &policies, &cost, DeltaMode::default());
        let q = SelectQuery::star_from("wifi_dataset");
        let out = rewrite_query(&db, &q, &compiled, &cost, &RewriteOptions::default()).unwrap();
        let result = db.run_query(&out.query).unwrap();
        // Oracle comparison.
        let refs: Vec<&Policy> = policies.iter().collect();
        let oracle = crate::semantics::visible_rows(&db, "wifi_dataset", &refs).unwrap();
        let mut a = result.rows;
        let mut b = oracle;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn delta_mode_always_routes_partitions() {
        let (mut db, policies) = setup();
        let (guarded, cost) = guarded_for(&db, &policies);
        let delta = DeltaRegistry::new();
        delta.install(&mut db);
        let compiled = compiled_for(&db, &delta, &guarded, &policies, &cost, DeltaMode::Always);
        let q = SelectQuery::star_from("wifi_dataset");
        let opts = RewriteOptions {
            delta_mode: DeltaMode::Always,
            ..Default::default()
        };
        let out = rewrite_query(&db, &q, &compiled, &cost, &opts).unwrap();
        assert!(out.relations[0].delta_guards > 0);
        assert_eq!(out.relations[0].delta_guards, out.relations[0].guard_count);
        // Still correct.
        let result = db.run_query(&out.query).unwrap();
        let refs: Vec<&Policy> = policies.iter().collect();
        let mut oracle = crate::semantics::visible_rows(&db, "wifi_dataset", &refs).unwrap();
        let mut got = result.rows;
        got.sort();
        oracle.sort();
        assert_eq!(got, oracle);
    }

    #[test]
    fn query_predicate_pushdown_preserves_results() {
        let (db, policies) = setup();
        let (guarded, cost) = guarded_for(&db, &policies);
        let delta = DeltaRegistry::new();
        let compiled =
            compiled_for(&db, &delta, &guarded, &policies, &cost, DeltaMode::default());
        let q = SelectQuery::star_from("wifi_dataset").filter(Expr::col_eq(
            ColumnRef::qualified("wifi_dataset", "wifi_ap"),
            Value::Int(1001),
        ));
        let run = |no_push: bool, forced: Option<AccessStrategy>| {
            let opts = RewriteOptions {
                no_predicate_pushdown: no_push,
                forced_strategy: forced,
                ..Default::default()
            };
            let out = rewrite_query(&db, &q, &compiled, &cost, &opts).unwrap();
            let mut rows = db.run_query(&out.query).unwrap().rows;
            rows.sort();
            rows
        };
        let pushed = run(false, Some(AccessStrategy::IndexGuards));
        let unpushed = run(true, Some(AccessStrategy::IndexGuards));
        let via_query_index = run(false, Some(AccessStrategy::IndexQuery));
        let via_scan = run(false, Some(AccessStrategy::LinearScan));
        assert_eq!(pushed, unpushed);
        assert_eq!(pushed, via_query_index);
        assert_eq!(pushed, via_scan);
    }

    #[test]
    fn empty_guarded_expression_denies_all() {
        let (db, _) = setup();
        let cost = CostModel::default();
        let mut guarded = HashMap::new();
        guarded.insert(
            "wifi_dataset".to_string(),
            GuardedExpression {
                relation: "wifi_dataset".into(),
                querier: 999,
                purpose: "Any".into(),
                guards: vec![],
            },
        );
        let by_id = HashMap::new();
        let delta = DeltaRegistry::new();
        let compiled =
            compile_relations(&db, &delta, &guarded, &by_id, &cost, DeltaMode::default())
                .unwrap();
        let q = SelectQuery::star_from("wifi_dataset");
        let out = rewrite_query(&db, &q, &compiled, &cost, &RewriteOptions::default()).unwrap();
        let result = db.run_query(&out.query).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn compiled_fragment_reused_across_queries() {
        // The same compiled fragment rewrites different queries (with and
        // without a selective predicate) without re-registering partitions.
        let (mut db, policies) = setup();
        let (guarded, cost) = guarded_for(&db, &policies);
        let delta = DeltaRegistry::new();
        delta.install(&mut db);
        let compiled =
            compiled_for(&db, &delta, &guarded, &policies, &cost, DeltaMode::default());
        let registered = delta.len();
        let q1 = SelectQuery::star_from("wifi_dataset");
        let q2 = SelectQuery::star_from("wifi_dataset").filter(Expr::col_eq(
            ColumnRef::qualified("wifi_dataset", "wifi_ap"),
            Value::Int(1001),
        ));
        let r1 = rewrite_query(&db, &q1, &compiled, &cost, &RewriteOptions::default()).unwrap();
        let r2 = rewrite_query(&db, &q2, &compiled, &cost, &RewriteOptions::default()).unwrap();
        assert_eq!(delta.len(), registered, "rewrites must not re-register ∆");
        assert!(!db.run_query(&r1.query).unwrap().is_empty());
        db.run_query(&r2.query).unwrap();
    }

    #[test]
    fn collector_walks_all_depths_and_honors_with_scope() {
        let protected: HashSet<String> =
            ["wifi_dataset".to_string(), "orders".to_string()].into();
        // WITH orders AS (SELECT * FROM wifi_dataset) SELECT * FROM orders:
        // the body read of wifi_dataset is a (nested) protected read; the
        // main-body `orders` is the CTE, not the protected base table.
        let q = SelectQuery::star_from("orders")
            .with_clause("orders", SelectQuery::star_from("wifi_dataset"));
        let all = collect_protected(&q, &protected);
        assert_eq!(
            all.into_iter().collect::<Vec<_>>(),
            vec!["wifi_dataset".to_string()]
        );
        let (top, nested) = classify_protected_refs(&q, &protected);
        assert!(top.is_empty(), "CTE reference must not count as base read");
        assert_eq!(nested.into_iter().collect::<Vec<_>>(), vec!["wifi_dataset"]);

        // Derived table + scalar subquery both count as nested reads.
        let derived = SelectQuery {
            with: vec![],
            select: vec![minidb::SelectItem::Star],
            from: vec![TableRef {
                source: TableSource::Derived(Box::new(SelectQuery::star_from("orders"))),
                alias: "d".into(),
                hint: IndexHint::None,
            }],
            predicate: Some(Expr::Cmp {
                op: minidb::CmpOp::Lt,
                lhs: Box::new(Expr::Column(ColumnRef::bare("x"))),
                rhs: Box::new(Expr::ScalarSubquery(Box::new(SelectQuery::star_from(
                    "wifi_dataset",
                )))),
            }),
            group_by: vec![],
            limit: None,
        };
        let (top, nested) = classify_protected_refs(&derived, &protected);
        assert!(top.is_empty());
        assert_eq!(nested.len(), 2);
    }

    #[test]
    fn nested_rewrite_leaves_no_unguarded_base_reads() {
        let (db, policies) = setup();
        let (guarded, cost) = guarded_for(&db, &policies);
        let delta = DeltaRegistry::new();
        let compiled =
            compiled_for(&db, &delta, &guarded, &policies, &cost, DeltaMode::default());
        let protected: HashSet<String> = ["wifi_dataset".to_string()].into();
        // WITH v AS (SELECT * FROM wifi_dataset) over a derived read, plus
        // a scalar-subquery read in the predicate.
        let inner = SelectQuery {
            with: vec![],
            select: vec![minidb::SelectItem::Star],
            from: vec![TableRef {
                source: TableSource::Derived(Box::new(SelectQuery::star_from(
                    "wifi_dataset",
                ))),
                alias: "d".into(),
                hint: IndexHint::None,
            }],
            predicate: None,
            group_by: vec![],
            limit: None,
        };
        let q = SelectQuery::star_from("v")
            .with_clause("v", inner)
            .filter(Expr::Cmp {
                op: minidb::CmpOp::Le,
                lhs: Box::new(Expr::Column(ColumnRef::bare("owner"))),
                rhs: Box::new(Expr::ScalarSubquery(Box::new(SelectQuery::star_from(
                    "wifi_dataset",
                )))),
            });
        let out = rewrite_query(&db, &q, &compiled, &cost, &RewriteOptions::default()).unwrap();
        // One shared guard CTE (the relation is read twice).
        assert_eq!(out.relations.len(), 1);
        // Strip the guard CTEs: no protected base read may remain anywhere.
        let mut stripped = out.query.clone();
        stripped
            .with
            .retain(|w| !out.relations.iter().any(|r| r.with_name == w.name));
        assert!(
            collect_protected(&stripped, &protected).is_empty(),
            "unguarded base reads remain: {stripped:?}"
        );
        // And the rewritten query still renders to parseable SQL.
        let sql = minidb::sql::render_query(&out.query);
        let reparsed = minidb::sql::parse(&sql).unwrap();
        assert_eq!(reparsed, out.query);
    }

    #[test]
    fn guard_cte_name_avoids_collisions() {
        let (db, policies) = setup();
        let (guarded, cost) = guarded_for(&db, &policies);
        let delta = DeltaRegistry::new();
        let compiled =
            compiled_for(&db, &delta, &guarded, &policies, &cost, DeltaMode::default());
        // The user already defines a CTE named wifi_dataset_sieve.
        let q = SelectQuery {
            with: vec![],
            select: vec![minidb::SelectItem::Star],
            from: vec![
                TableRef::aliased("wifi_dataset", "w"),
                TableRef::aliased("wifi_dataset_sieve", "u"),
            ],
            predicate: None,
            group_by: vec![],
            limit: None,
        }
        .with_clause("wifi_dataset_sieve", SelectQuery::star_from("wifi_dataset"));
        let out = rewrite_query(&db, &q, &compiled, &cost, &RewriteOptions::default()).unwrap();
        assert_eq!(out.relations.len(), 1);
        assert_ne!(out.relations[0].with_name, "wifi_dataset_sieve");
        assert!(out
            .query
            .with
            .iter()
            .any(|w| w.name == out.relations[0].with_name));
    }

    #[test]
    fn rendered_rewrite_is_parseable_sql() {
        let (db, policies) = setup();
        let (guarded, cost) = guarded_for(&db, &policies);
        let delta = DeltaRegistry::new();
        let compiled =
            compiled_for(&db, &delta, &guarded, &policies, &cost, DeltaMode::default());
        let q = SelectQuery::star_from("wifi_dataset");
        let out = rewrite_query(&db, &q, &compiled, &cost, &RewriteOptions::default()).unwrap();
        let sql = minidb::sql::render_query(&out.query);
        let reparsed = minidb::sql::parse(&sql).unwrap();
        assert_eq!(reparsed, out.query);
    }
}
