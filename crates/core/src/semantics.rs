//! Reference access-control semantics: the correctness oracle.
//!
//! Implements `eval(E(P), t)` of Section 3.1 *directly* on tuples —
//! independently of the engine's expression machinery — so every
//! enforcement strategy (SIEVE and the three baselines) can be checked
//! against it. A tuple is visible iff **some** relevant allow policy's
//! object conditions all hold (default deny / opt-out).

use crate::backend::SqlBackend;
use crate::policy::{CondPredicate, ObjectCondition, Policy};
use minidb::schema::TableSchema;
use minidb::value::Value;
use minidb::{Database, RangeBound, Row};

/// Result of evaluating one tuple against a policy list, carrying the
/// number of policies inspected (used to measure the paper's α).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Whether some policy allowed the tuple.
    pub allowed: bool,
    /// Policies checked before the decision (α's numerator).
    pub policies_checked: usize,
}

/// Evaluate one object condition against a tuple (schema-resolved).
/// Derived (subquery) conditions need an engine to evaluate — reached
/// through the backend's in-process escape hatch
/// ([`SqlBackend::minidb`]); without one they are conservatively false.
pub fn eval_condition(
    oc: &ObjectCondition,
    schema: &TableSchema,
    row: &Row,
    db: Option<&dyn SqlBackend>,
) -> bool {
    let Some(idx) = schema.column_index(&oc.attr) else {
        // A condition on a column the tuple does not have cannot hold
        // ("tt.attr = oc.attr ⟹ eval(...)": conditions on absent
        // attributes are vacuous per §3.1 — but a policy written against
        // this relation always names its columns, so treat as false to be
        // safe rather than leak).
        return false;
    };
    let v = &row[idx];
    if v.is_null() {
        return false;
    }
    match &oc.pred {
        CondPredicate::Eq(x) => v == x,
        CondPredicate::Ne(x) => v != x,
        CondPredicate::In(xs) => xs.contains(v),
        CondPredicate::NotIn(xs) => !xs.contains(v),
        CondPredicate::Range { low, high } => {
            let lo_ok = match low {
                RangeBound::Unbounded => true,
                RangeBound::Inclusive(b) => v >= b,
                RangeBound::Exclusive(b) => v > b,
            };
            let hi_ok = match high {
                RangeBound::Unbounded => true,
                RangeBound::Inclusive(b) => v <= b,
                RangeBound::Exclusive(b) => v < b,
            };
            lo_ok && hi_ok
        }
        CondPredicate::Derived(q) => match db.and_then(|b| b.minidb()) {
            Some(db) => eval_derived(v, q, schema, row, db),
            None => false,
        },
    }
}

/// Evaluate a derived-value condition: run the subquery with the outer
/// row's values substituted for correlated references, and compare the
/// first value of the first result row to the tuple's value.
fn eval_derived(
    v: &Value,
    q: &minidb::SelectQuery,
    schema: &TableSchema,
    row: &Row,
    db: &Database,
) -> bool {
    // Substitute correlated references textually: build a parameter map of
    // every `alias.column` in scope (single-relation scope, so any alias)
    // and let the engine's subquery runner handle it through an Expr shim.
    use minidb::expr::{bind, EvalContext, Expr, Layout};
    use std::collections::HashMap;
    use std::sync::Arc;

    let layout = Layout::single("__outer", Arc::new(schema.clone()));
    let shim = Expr::Cmp {
        op: minidb::CmpOp::Eq,
        lhs: Box::new(Expr::Literal(v.clone())),
        rhs: Box::new(Expr::ScalarSubquery(Box::new(q.clone()))),
    };
    let Ok(bound) = bind(&shim, &layout, None, &Default::default()) else {
        return false;
    };
    let params = HashMap::new();
    let runner = DbRunner { db };
    let ctx = EvalContext {
        stats: db.stats(),
        udfs: db.udfs(),
        runner: Some(&runner),
        params: &params,
    };
    bound.eval_bool(row, &ctx).unwrap_or(false)
}

struct DbRunner<'a> {
    db: &'a Database,
}

impl minidb::expr::QueryRunner for DbRunner<'_> {
    fn run_subquery(
        &self,
        query: &minidb::SelectQuery,
        params: std::collections::HashMap<String, Value>,
    ) -> minidb::DbResult<Vec<Row>> {
        // Delegate to the engine with parameters carried via a fresh
        // executor; the public `run_query` has no parameter channel, so
        // inline the values as literal predicates is not possible in
        // general — instead re-enter through the engine's internal
        // executor by evaluating a wrapper query. The engine's `execute`
        // path is reachable via Database::run_query only without params,
        // so for correlated oracle evaluation we substitute params into
        // the query predicate before running.
        let substituted = substitute_params(query, &params);
        Ok(self.db.run_query(&substituted)?.rows)
    }
}

/// Replace column references that match parameter names with literals.
fn substitute_params(
    q: &minidb::SelectQuery,
    params: &std::collections::HashMap<String, Value>,
) -> minidb::SelectQuery {
    fn subst_expr(
        e: &minidb::Expr,
        params: &std::collections::HashMap<String, Value>,
    ) -> minidb::Expr {
        use minidb::Expr as E;
        match e {
            E::Column(c) => {
                let name = c.to_string();
                match params.get(&name) {
                    Some(v) => E::Literal(v.clone()),
                    None => e.clone(),
                }
            }
            E::Cmp { op, lhs, rhs } => E::Cmp {
                op: *op,
                lhs: Box::new(subst_expr(lhs, params)),
                rhs: Box::new(subst_expr(rhs, params)),
            },
            E::Between {
                expr,
                low,
                high,
                negated,
            } => E::Between {
                expr: Box::new(subst_expr(expr, params)),
                low: Box::new(subst_expr(low, params)),
                high: Box::new(subst_expr(high, params)),
                negated: *negated,
            },
            E::InList {
                expr,
                list,
                negated,
            } => E::InList {
                expr: Box::new(subst_expr(expr, params)),
                list: list.iter().map(|x| subst_expr(x, params)).collect(),
                negated: *negated,
            },
            E::IsNull { expr, negated } => E::IsNull {
                expr: Box::new(subst_expr(expr, params)),
                negated: *negated,
            },
            E::And(v) => E::And(v.iter().map(|x| subst_expr(x, params)).collect()),
            E::Or(v) => E::Or(v.iter().map(|x| subst_expr(x, params)).collect()),
            E::Not(x) => E::Not(Box::new(subst_expr(x, params))),
            E::Udf { name, args } => E::Udf {
                name: name.clone(),
                args: args.iter().map(|x| subst_expr(x, params)).collect(),
            },
            E::ScalarSubquery(inner) => {
                E::ScalarSubquery(Box::new(substitute_params(inner, params)))
            }
            E::Literal(_) | E::Param(_) => e.clone(),
        }
    }
    let mut out = q.clone();
    if let Some(p) = &out.predicate {
        out.predicate = Some(subst_expr(p, params));
    }
    out
}

/// Evaluate a tuple against a policy: all object conditions (including the
/// implied owner condition) must hold.
pub fn policy_allows(
    p: &Policy,
    schema: &TableSchema,
    row: &Row,
    db: Option<&dyn SqlBackend>,
) -> bool {
    p.object_conditions()
        .iter()
        .all(|oc| eval_condition(oc, schema, row, db))
}

/// Evaluate a tuple against a (relevance-filtered) policy list with
/// short-circuit, counting the checks (the measured α of Section 4).
pub fn eval_policies(
    policies: &[&Policy],
    schema: &TableSchema,
    row: &Row,
    db: Option<&dyn SqlBackend>,
) -> EvalOutcome {
    for (i, p) in policies.iter().enumerate() {
        if policy_allows(p, schema, row, db) {
            return EvalOutcome {
                allowed: true,
                policies_checked: i + 1,
            };
        }
    }
    EvalOutcome {
        allowed: false,
        policies_checked: policies.len(),
    }
}

/// The oracle: all rows of `table` visible under `policies`, by direct
/// evaluation (no indexes, no guards, no rewriting). Works against any
/// backend exposing the catalog (a `&Database` coerces).
pub fn visible_rows(
    db: &dyn SqlBackend,
    table: &str,
    policies: &[&Policy],
) -> crate::error::SieveResult<Vec<Row>> {
    let entry = db.table_entry(table)?;
    let schema = entry.schema();
    Ok(entry
        .table
        .rows()
        .iter()
        .filter(|row| eval_policies(policies, schema, row, Some(db)).allowed)
        .cloned()
        .collect())
}

/// Measure α — the average fraction of the policy list checked per tuple
/// before a decision — over a sample of rows (Section 5.4 obtains it
/// "by executing a query which counts the number of policy checks").
pub fn measure_alpha(
    policies: &[&Policy],
    schema: &TableSchema,
    rows: &[Row],
    db: Option<&dyn SqlBackend>,
) -> f64 {
    if policies.is_empty() || rows.is_empty() {
        return 1.0;
    }
    let total: usize = rows
        .iter()
        .map(|r| eval_policies(policies, schema, r, db).policies_checked)
        .sum();
    total as f64 / (rows.len() as f64 * policies.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ObjectCondition, QuerierSpec};
    use minidb::value::DataType;

    fn schema() -> TableSchema {
        TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        )
    }

    fn row(owner: i64, ap: i64, t: u32) -> Row {
        vec![
            Value::Int(0),
            Value::Int(owner),
            Value::Int(ap),
            Value::Time(t),
        ]
    }

    fn sample_policy(owner: i64) -> Policy {
        Policy::new(
            owner,
            "wifi_dataset",
            QuerierSpec::User(1),
            "Any",
            vec![
                ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1200))),
                ObjectCondition::new(
                    "ts_time",
                    CondPredicate::between(Value::Time(9 * 3600), Value::Time(10 * 3600)),
                ),
            ],
        )
    }

    #[test]
    fn policy_allows_matching_tuple() {
        let p = sample_policy(7);
        let s = schema();
        assert!(policy_allows(&p, &s, &row(7, 1200, 9 * 3600 + 60), None));
        // Wrong owner.
        assert!(!policy_allows(&p, &s, &row(8, 1200, 9 * 3600 + 60), None));
        // Wrong AP.
        assert!(!policy_allows(&p, &s, &row(7, 1300, 9 * 3600 + 60), None));
        // Outside time window.
        assert!(!policy_allows(&p, &s, &row(7, 1200, 11 * 3600), None));
    }

    #[test]
    fn short_circuit_counts_checks() {
        let p1 = sample_policy(7);
        let p2 = sample_policy(8);
        let s = schema();
        let out = eval_policies(&[&p1, &p2], &s, &row(8, 1200, 9 * 3600 + 1), None);
        assert!(out.allowed);
        assert_eq!(out.policies_checked, 2);
        let out2 = eval_policies(&[&p2, &p1], &s, &row(8, 1200, 9 * 3600 + 1), None);
        assert_eq!(out2.policies_checked, 1);
        let out3 = eval_policies(&[&p1, &p2], &s, &row(999, 0, 0), None);
        assert!(!out3.allowed);
        assert_eq!(out3.policies_checked, 2);
    }

    #[test]
    fn default_deny_with_no_policies() {
        let s = schema();
        let out = eval_policies(&[], &s, &row(1, 1, 1), None);
        assert!(!out.allowed);
    }

    #[test]
    fn ne_and_notin_semantics() {
        let s = schema();
        let mut p = sample_policy(7);
        p.conditions = vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::NotIn(vec![Value::Int(1), Value::Int(2)]),
        )];
        assert!(policy_allows(&p, &s, &row(7, 3, 0), None));
        assert!(!policy_allows(&p, &s, &row(7, 2, 0), None));
        p.conditions = vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Ne(Value::Int(5)),
        )];
        assert!(policy_allows(&p, &s, &row(7, 4, 0), None));
        assert!(!policy_allows(&p, &s, &row(7, 5, 0), None));
    }

    #[test]
    fn alpha_measures_fraction() {
        // Two policies; rows matching the first check 1 of 2 → α = 0.5;
        // rows matching none check 2 of 2 → α = 1.0.
        let p1 = sample_policy(7);
        let p2 = sample_policy(8);
        let s = schema();
        let matching = vec![row(7, 1200, 9 * 3600 + 1); 10];
        let a = measure_alpha(&[&p1, &p2], &s, &matching, None);
        assert!((a - 0.5).abs() < 1e-9);
        let failing = vec![row(999, 0, 0); 10];
        let a2 = measure_alpha(&[&p1, &p2], &s, &failing, None);
        assert!((a2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn null_owner_never_matches() {
        let s = schema();
        let p = sample_policy(7);
        let mut r = row(7, 1200, 9 * 3600 + 1);
        r[1] = Value::Null;
        assert!(!policy_allows(&p, &s, &r, None));
    }
}
