//! The concurrent middleware service — SIEVE as a shared `&self` object.
//!
//! The paper positions SIEVE as middleware that many queriers hit
//! *simultaneously*; [`SieveService`] is that deployment shape in code.
//! It is `Send + Sync` and cheaply clonable (all state behind one `Arc`),
//! and the **entire read/query path** — [`SieveService::rewrite`],
//! [`SieveService::execute`], [`SieveService::execute_sql`],
//! [`SieveService::prepare_batch`] — takes `&self`, so any number of
//! connection threads drive one service concurrently. Mutation
//! ([`SieveService::add_policy`], [`SieveService::with_backend_mut`], …)
//! also goes through `&self`, serialized by the write sides of the
//! internal locks.
//!
//! # Internal locking
//!
//! State is split so the warm path shares everything:
//!
//! * policy store, group directory, cost model, options, protected set —
//!   each behind its own `RwLock` (read-mostly; `add_policy` takes the
//!   store's write lock only to append);
//! * the [`GuardCache`] is sharded — a warm hit takes one shard's *read*
//!   lock (see [`crate::cache`]);
//! * the backend sits behind a `RwLock<B>`: queries execute under the
//!   read lock (engines execute through `&self`), out-of-band mutation
//!   takes the write lock and bumps the **backend epoch** exactly like
//!   `Sieve::db_mut` always did;
//! * ∆ partitions are reference-counted
//!   ([`crate::delta::PartitionHandle`]) so invalidation can never free a
//!   partition a concurrent query still references.
//!
//! Lock order (outer → inner): `single-flight generation claim → store →
//! groups → cost/options → protected → backend → cache shard → sql
//! cache`, with the persist state, baseline pins and the ∆ registry as
//! leaves. Cache closures never take other locks.
//!
//! # Single-flight generation
//!
//! A cold `(querier, purpose, relation)` key hit by N sessions at once
//! used to trigger N identical generations (each held the store *read*
//! lock, so nothing serialized them). Generation is now **single-flight**:
//! the first thread claims the key via
//! [`GuardCache::begin_generation`], the rest park until the claim drops,
//! re-check the cache, and reuse the published entry — exactly one
//! generation per cold key, with the avoided duplicates counted in
//! [`GuardCacheStats::coalesced`].
//!
//! # Consistency under concurrent `add_policy`
//!
//! Guard generation runs **while holding the store's read lock** and
//! publishes into the cache before releasing it. `add_policy` appends
//! under the store's *write* lock, then sweeps the cache marking affected
//! keys outdated. The lock forces one of two orders: either the generator
//! read the store after the append (its expression already covers the new
//! policy), or the generator published before the append completed — in
//! which case the sweep, which runs strictly after the append, finds the
//! entry and marks it. A query that *starts* after `add_policy` returns
//! can therefore never run under a guard that silently misses the policy;
//! queries already in flight linearize before it, exactly like a query
//! racing a policy insert on a single thread.
//!
//! Per-querier state lives in [`crate::session::Session`] handles (the
//! object a wire server would hand each connection), and
//! [`crate::session::Prepared`] pins a compiled rewrite for repeated
//! execution with zero cache traffic while fresh.

use crate::analyze;
use crate::backend::{BackendError, MinidbBackend, SqlBackend};
use crate::baselines::{
    rewrite_baseline_i, rewrite_baseline_p, rewrite_baseline_u, Baseline,
};
use crate::batch::{BatchGroupReport, BatchPrepareReport};
use crate::cache::{CachedFragment, CachedGuard, GuardCache, GuardCacheKey, GuardCacheStats};
use crate::cost::CostModel;
use crate::delta::{DeltaRegistry, PartitionHandle};
use crate::dynamic::{optimal_regeneration_interval, RegenerationPolicy};
use crate::filter::{policy_applies, relevant_policies, GroupDirectory};
use crate::guard::{
    generate_guarded_expression, owner_fallback_guards, GuardedExpression,
};
use crate::middleware::{Enforcement, SieveOptions};
use crate::policy::{Policy, PolicyId, QueryMetadata};
use crate::rewrite::{
    classify_protected_refs, collect_protected, compile_guard_fragment,
    compile_guard_fragment_memo, rewrite_query, CompiledRelation, FragmentCompileCache,
    RewriteOutput,
};
use crate::error::{SieveError, SieveResult};
use crate::store::{
    create_policy_tables, persist_guarded_expression, persist_policy, GuardTableIds,
    PolicyStore,
};
use minidb::error::DbError;
use minidb::exec::ExecOptions;
use minidb::plan::SelectQuery;
use minidb::stats::ExecStats;
use minidb::{Database, QueryResult};
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bound on the parsed-SQL cache (entries); repeat textual queries skip
/// the parser. Eviction is LRU-on-access, one entry at a time — the same
/// retention policy as the sharded [`GuardCache`], so a hot query text
/// survives unbounded churn of one-shot texts (FIFO would evict it after
/// `SQL_CACHE_CAP` distinct insertions regardless of use).
pub const SQL_CACHE_CAP: usize = 256;

/// Below this many per-querier generations a batch group stays on the
/// calling thread — spawning costs more than the set covers save.
const PARALLEL_BATCH_MIN: usize = 8;

/// How many recent [`SieveService::prepare`] outputs keep their ∆
/// partitions pinned service-side. Covers the experiment harness's
/// prepare-then-execute pattern (including a handful of interleaved
/// prepares from other threads) without letting discarded prepared
/// queries pin partitions forever.
pub const BASELINE_PIN_SLOTS: usize = 16;

/// Everything that keeps one prepared query executable: the compiled
/// fragments it references (Sieve path) and directly registered ∆
/// handles (Baseline U path).
#[derive(Default)]
struct PreparePins {
    fragments: Vec<Arc<crate::rewrite::GuardFragment>>,
    handles: Vec<PartitionHandle>,
}

/// A read guard projected to a component of the locked value (e.g. the
/// `Database` inside a locked `MinidbBackend`). Derefs to the projection;
/// holding it holds the underlying read lock.
pub struct MappedReadGuard<'a, T: ?Sized, U: ?Sized> {
    guard: RwLockReadGuard<'a, T>,
    map: fn(&T) -> &U,
}

impl<T: ?Sized, U: ?Sized> Deref for MappedReadGuard<'_, T, U> {
    type Target = U;
    fn deref(&self) -> &U {
        (self.map)(&self.guard)
    }
}

pub(crate) struct PersistState {
    pub(crate) guard_ids: GuardTableIds,
    pub(crate) oc_id: i64,
}

/// Internal atomics behind [`RecoveryStats`].
#[derive(Default)]
pub(crate) struct RecoveryCounters {
    retries: AtomicU64,
    reconnects: AtomicU64,
    reprepares: AtomicU64,
    exhausted: AtomicU64,
}

/// Counters for the fault-recovery machinery, the recovery-side
/// complement of [`GuardCacheStats`]. Snapshot via
/// [`SieveService::recovery_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Retry attempts issued after a retryable backend error (each sleep
    /// of the backoff schedule counts once).
    pub retries: u64,
    /// Connection-loss events observed; each one bumps the backend epoch
    /// so every prepared plan re-prepares against the fresh connection.
    pub reconnects: u64,
    /// Prepared-plan rebuilds (staleness- or error-triggered) across all
    /// sessions of this service.
    pub reprepares: u64,
    /// Operations that still failed after exhausting the retry budget.
    pub exhausted: u64,
}

/// Everything one service instance shares across its clones, sessions and
/// prepared statements.
pub(crate) struct ServiceShared<B: SqlBackend> {
    pub(crate) backend: RwLock<B>,
    /// Backend write-epoch: bumped on every mutable backend access, so
    /// guards generated before an out-of-band write are detectably stale.
    pub(crate) backend_epoch: AtomicU64,
    /// Policy/configuration revision: bumped by `add_policy`, `protect`,
    /// option/cost/group mutation and `invalidate_all`. A
    /// [`crate::session::Prepared`] plan records the revision it was
    /// built under and transparently re-prepares when it trails.
    pub(crate) revision: AtomicU64,
    pub(crate) store: RwLock<PolicyStore>,
    pub(crate) groups: RwLock<GroupDirectory>,
    pub(crate) cost: RwLock<CostModel>,
    pub(crate) options: RwLock<SieveOptions>,
    pub(crate) delta: Arc<DeltaRegistry>,
    pub(crate) cache: GuardCache,
    pub(crate) protected: RwLock<HashSet<String>>,
    pub(crate) persist: Mutex<PersistState>,
    /// Pins of the last [`BASELINE_PIN_SLOTS`] `prepare` outputs, oldest
    /// dropped first (see [`SieveService::prepare`] for the contract). A
    /// mutex because `prepare` is an experiment path, not the concurrent
    /// hot path.
    baseline_pins: Mutex<VecDeque<PreparePins>>,
    sql_cache: RwLock<crate::lru::LruMap<Arc<SelectQuery>>>,
    pub(crate) generations: AtomicU64,
    pub(crate) recovery: RecoveryCounters,
}

/// The concurrent SIEVE middleware handle. Clones share all state; see
/// the [module docs](self) for the locking design. The single-owner
/// [`crate::Sieve`] façade is a thin wrapper over this type.
pub struct SieveService<B: SqlBackend = MinidbBackend> {
    pub(crate) inner: Arc<ServiceShared<B>>,
}

impl<B: SqlBackend> Clone for SieveService<B> {
    fn clone(&self) -> Self {
        SieveService {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl SieveService<MinidbBackend> {
    /// Wrap an in-process database behind the default backend. Installs
    /// the ∆ UDF; creates the policy relations when persistence is on.
    pub fn new(db: Database, options: SieveOptions) -> SieveResult<Self> {
        Self::with_backend(MinidbBackend::new(db), options)
    }

    /// Read access to the wrapped database (holds the backend read lock).
    ///
    /// Do not call back into the service while holding this guard: a
    /// writer queued behind it would deadlock the re-entrant read.
    pub fn db(&self) -> MappedReadGuard<'_, MinidbBackend, Database> {
        MappedReadGuard {
            guard: self.inner.backend.read(),
            map: |b| b.db(),
        }
    }

    /// Run `f` with mutable access to the wrapped database (e.g. for
    /// loading data). Takes the backend write lock — waits for in-flight
    /// queries — and bumps the backend epoch: guards generated before
    /// this access regenerate lazily on their next use.
    pub fn with_db_mut<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        self.with_backend_mut(|b| f(b.db_mut()))
    }
}

impl<B: SqlBackend> SieveService<B> {
    /// Wrap an arbitrary execution backend. Installs the ∆ UDF; creates
    /// the policy relations when persistence is on.
    pub fn with_backend(mut backend: B, options: SieveOptions) -> SieveResult<Self> {
        let delta = DeltaRegistry::new();
        delta.install(&mut backend);
        if options.persist {
            create_policy_tables(&mut backend)?;
        }
        Ok(SieveService {
            inner: Arc::new(ServiceShared {
                backend: RwLock::new(backend),
                backend_epoch: AtomicU64::new(0),
                revision: AtomicU64::new(0),
                store: RwLock::new(PolicyStore::new()),
                groups: RwLock::new(GroupDirectory::new()),
                cost: RwLock::new(CostModel::default()),
                options: RwLock::new(options),
                delta,
                cache: GuardCache::new(),
                protected: RwLock::new(HashSet::new()),
                persist: Mutex::new(PersistState {
                    guard_ids: GuardTableIds::default(),
                    oc_id: 0,
                }),
                baseline_pins: Mutex::new(VecDeque::new()),
                sql_cache: RwLock::new(crate::lru::LruMap::new(SQL_CACHE_CAP)),
                generations: AtomicU64::new(0),
                recovery: RecoveryCounters::default(),
            }),
        })
    }

    /// A per-querier session handle carrying `qm` for every call.
    pub fn session(&self, qm: QueryMetadata) -> crate::session::Session<B> {
        crate::session::Session::new(self.clone(), qm)
    }

    /// Read access to the execution backend (holds the backend read
    /// lock). Do not call back into the service while holding the guard.
    pub fn backend(&self) -> RwLockReadGuard<'_, B> {
        self.inner.backend.read()
    }

    /// Run `f` with mutable backend access. Takes the backend write lock
    /// and bumps the backend epoch, exactly like [`crate::Sieve::db_mut`]:
    /// any cached guard generated before this access is treated as stale
    /// and regenerated on its next use.
    pub fn with_backend_mut<R>(&self, f: impl FnOnce(&mut B) -> R) -> R {
        let mut backend = self.inner.backend.write();
        self.inner.backend_epoch.fetch_add(1, Ordering::SeqCst);
        self.inner.revision.fetch_add(1, Ordering::SeqCst);
        f(&mut backend)
    }

    /// The current backend write-epoch (observability/tests).
    pub fn backend_epoch(&self) -> u64 {
        self.inner.backend_epoch.load(Ordering::SeqCst)
    }

    /// The current policy/configuration revision (observability; prepared
    /// statements re-prepare when it moves).
    pub fn revision(&self) -> u64 {
        self.inner.revision.load(Ordering::SeqCst)
    }

    /// Current cost model (copy).
    pub fn cost_model(&self) -> CostModel {
        *self.inner.cost.read()
    }

    /// Replace the cost model (e.g. after [`crate::cost::calibrate`]).
    pub fn set_cost_model(&self, cost: CostModel) {
        *self.inner.cost.write() = cost;
        self.invalidate_all();
    }

    /// Calibrate the cost model against a loaded table (Section 5.4).
    pub fn calibrate(&self, table: &str, sample_rows: usize) -> SieveResult<()> {
        let policies: Vec<Policy> =
            self.inner.store.read().iter().take(64).cloned().collect();
        let refs: Vec<&Policy> = policies.iter().collect();
        let model = {
            let backend = self.inner.backend.read();
            crate::cost::calibrate(&*backend, table, &refs, sample_rows)?
        };
        *self.inner.cost.write() = model;
        self.invalidate_all();
        Ok(())
    }

    /// Read access to the group directory (holds its read lock).
    pub fn groups(&self) -> RwLockReadGuard<'_, GroupDirectory> {
        self.inner.groups.read()
    }

    /// Run `f` with mutable access to the group directory. Bumps the
    /// revision; cached expressions are *not* invalidated (membership
    /// changes have never retro-invalidated guards — parity with the
    /// single-owner façade), but prepared statements re-prepare.
    pub fn with_groups_mut<R>(&self, f: impl FnOnce(&mut GroupDirectory) -> R) -> R {
        let mut groups = self.inner.groups.write();
        self.inner.revision.fetch_add(1, Ordering::SeqCst);
        f(&mut groups)
    }

    /// Options in effect (clone).
    pub fn options(&self) -> SieveOptions {
        self.inner.options.read().clone()
    }

    /// Read access to the options (holds their read lock).
    pub fn options_ref(&self) -> RwLockReadGuard<'_, SieveOptions> {
        self.inner.options.read()
    }

    /// Run `f` with mutable access to the options (e.g. to force a
    /// strategy between runs). Bumps the revision so prepared statements
    /// re-prepare under the new options.
    pub fn with_options_mut<R>(&self, f: impl FnOnce(&mut SieveOptions) -> R) -> R {
        let mut options = self.inner.options.write();
        self.inner.revision.fetch_add(1, Ordering::SeqCst);
        f(&mut options)
    }

    /// Number of registered policies.
    pub fn policy_count(&self) -> usize {
        self.inner.store.read().len()
    }

    /// Snapshot of the registered policies (clones; oracle/test use).
    pub fn policies(&self) -> Vec<Policy> {
        self.inner.store.read().iter().cloned().collect()
    }

    /// Register a policy. Marks affected guarded expressions outdated and
    /// (optionally) persists to the policy relations. See the module docs
    /// for why a query starting after this returns can never miss the
    /// policy.
    pub fn add_policy(&self, policy: Policy) -> SieveResult<PolicyId> {
        let (id, stored) = {
            let mut store = self.inner.store.write();
            let id = store.add(policy);
            let stored = store
                .get(id)
                .ok_or(SieveError::Internal("policy vanished under write lock"))?
                .clone();
            (id, stored)
        };
        self.inner.protected.write().insert(stored.relation.clone());
        // Persist failure must not short-circuit: the policy is already
        // committed to the store, so the invalidation sweep and revision
        // bump below have to run regardless or cached guards would keep
        // serving a view the store contradicts. The error is surfaced
        // after enforcement state is consistent.
        let persisted = if self.inner.options.read().persist {
            let mut backend = self.inner.backend.write();
            let mut persist = self.inner.persist.lock();
            persist_policy(&mut *backend, &stored, &mut persist.oc_id)
        } else {
            Ok(())
        };
        // Outdate exactly the cached expressions the policy affects (the
        // precise invalidation path of Section 6's delta machinery).
        {
            let groups = self.inner.groups.read();
            self.inner
                .cache
                .invalidate_where(id, |(querier, purpose, relation)| {
                    *relation == stored.relation && {
                        let qm = QueryMetadata::new(*querier, purpose.clone());
                        policy_applies(&stored, &qm, &groups)
                    }
                });
        }
        self.inner.revision.fetch_add(1, Ordering::SeqCst);
        persisted.map(|()| id)
    }

    /// Bulk registration.
    pub fn add_policies(&self, policies: impl IntoIterator<Item = Policy>) -> SieveResult<()> {
        for p in policies {
            self.add_policy(p)?;
        }
        Ok(())
    }

    /// Drop all cached guarded expressions; their ∆ partitions are freed
    /// as the last in-flight pins drop.
    pub fn invalidate_all(&self) {
        self.inner.cache.clear();
        self.inner.baseline_pins.lock().clear();
        self.inner.revision.fetch_add(1, Ordering::SeqCst);
    }

    /// Guard-cache counters (hits, misses, invalidations, fragment work).
    pub fn cache_stats(&self) -> GuardCacheStats {
        self.inner.cache.stats()
    }

    /// Guarded-expression generations performed (observability).
    pub fn generations(&self) -> u64 {
        self.inner.generations.load(Ordering::Relaxed)
    }

    /// Live ∆ partitions (observability: cached fragments keep theirs
    /// registered; precise invalidation must keep this bounded).
    pub fn delta_len(&self) -> usize {
        self.inner.delta.len()
    }

    /// Declare a relation access-controlled even before any policy exists
    /// for it. Under the opt-out default (Section 3.1) a protected
    /// relation with no applicable policies yields **no rows**.
    /// [`SieveService::add_policy`] protects the policy's relation
    /// implicitly.
    pub fn protect(&self, relation: impl Into<String>) {
        self.inner.protected.write().insert(relation.into());
        self.inner.revision.fetch_add(1, Ordering::SeqCst);
    }

    /// Read access to the protected-relation set (holds its read lock).
    pub fn protected_relations(&self) -> RwLockReadGuard<'_, HashSet<String>> {
        self.inner.protected.read()
    }

    fn snapshot_config(&self) -> (SieveOptions, CostModel) {
        (self.inner.options.read().clone(), *self.inner.cost.read())
    }

    /// True iff the entry must be regenerated before use: its backend
    /// epoch trails (out-of-band data/schema mutation — a correctness
    /// hazard that overrides the regeneration policy), or it is outdated
    /// and due under the configured policy (Section 6's threshold for
    /// `OptimalRate`).
    fn regeneration_due(&self, c: &CachedGuard, opts: &SieveOptions, cost: &CostModel) -> bool {
        if c.epoch != self.inner.backend_epoch.load(Ordering::SeqCst) {
            return true;
        }
        c.outdated
            && match opts.regeneration {
                RegenerationPolicy::Immediate => true,
                RegenerationPolicy::Manual => false,
                RegenerationPolicy::OptimalRate {
                    queries_per_insertion,
                } => {
                    let guards = c.base.guards.len().max(1) as f64;
                    let rho_avg = c.base.total_guard_rows() / guards;
                    let k = optimal_regeneration_interval(
                        cost,
                        rho_avg,
                        queries_per_insertion,
                    );
                    c.pending.len() as f64 >= k
                }
            }
    }

    /// True iff the key requires a fresh generation: no cache entry, or an
    /// outdated one past its regeneration threshold.
    fn needs_generation(&self, key: &GuardCacheKey, opts: &SieveOptions, cost: &CostModel) -> bool {
        self.inner
            .cache
            .read(key, |c| self.regeneration_due(c, opts, cost))
            .unwrap_or(true)
    }

    /// Ensure the cache entry exists and is fresh per the regeneration
    /// policy, with its effective expression (base + pending branches)
    /// up to date. Returns the cache key. The warm path is a single shard
    /// read lock. Retries on validation failure against concurrent
    /// invalidation — each retry re-reads the world, so the loop
    /// terminates once no writer interleaves.
    fn refresh_entry(
        &self,
        qm: &QueryMetadata,
        relation: &str,
        opts: &SieveOptions,
        cost: &CostModel,
    ) -> SieveResult<GuardCacheKey> {
        let key: GuardCacheKey = (qm.querier, qm.purpose.clone(), relation.to_string());
        enum Need {
            Fresh,
            Generate,
            Fold(Vec<PolicyId>),
        }
        loop {
            let need = self
                .inner
                .cache
                .read(&key, |c| {
                    if self.regeneration_due(c, opts, cost) {
                        Need::Generate
                    } else if c.effective_pending_len != c.pending.len() {
                        Need::Fold(c.pending.clone())
                    } else {
                        Need::Fresh
                    }
                })
                .unwrap_or(Need::Generate);
            match need {
                Need::Fresh => {
                    self.inner.cache.record_hit();
                    return Ok(key);
                }
                Need::Generate => {
                    // Single-flight (the cold-key stampede fix): claim the
                    // key before doing any generation work. Losers of the
                    // race park inside `begin_generation` until the
                    // winner's ticket drops — one generation per cold key,
                    // not one per session.
                    let _ticket = self.inner.cache.begin_generation(&key);
                    if !self.needs_generation(&key, opts, cost) {
                        // Another thread generated while we waited for the
                        // claim; loop back to take the warm path.
                        self.inner.cache.record_coalesced();
                        continue;
                    }
                    // Hold the store read lock across generation AND the
                    // cache publish — the consistency argument with
                    // `add_policy` (module docs) depends on it.
                    let store = self.inner.store.read();
                    let groups = self.inner.groups.read();
                    let epoch = self.inner.backend_epoch.load(Ordering::SeqCst);
                    let expr = {
                        let backend = self.inner.backend.read();
                        let relevant =
                            relevant_policies(store.iter(), relation, qm, &groups);
                        let entry = backend.table_entry(relation)?;
                        let expr = generate_guarded_expression(
                            &relevant,
                            entry,
                            cost,
                            opts.selection,
                            qm.querier,
                            &qm.purpose,
                            relation,
                        );
                        // Cold generations only — the warm path above never
                        // re-verifies, so steady-state overhead is zero.
                        // Refuted hard-fails (the guard would widen);
                        // Unknown is audit-tooling territory, not a query
                        // failure.
                        if opts.verify_rewrites {
                            let by_id = store.by_id();
                            if let analyze::Verdict::Refuted { witness } =
                                analyze::verify_guarded_expression(&expr, &by_id, &relevant)
                            {
                                return Err(SieveError::SoundnessRefuted {
                                    relation: relation.to_string(),
                                    querier: qm.querier,
                                    witness: analyze::render_witness(&witness),
                                });
                            }
                        }
                        expr
                    };
                    self.inner.generations.fetch_add(1, Ordering::Relaxed);
                    if opts.persist {
                        let mut backend = self.inner.backend.write();
                        let mut persist = self.inner.persist.lock();
                        persist_guarded_expression(
                            &mut *backend,
                            &expr,
                            false,
                            &mut persist.guard_ids,
                        )?;
                    }
                    self.inner
                        .cache
                        .insert_generated(key.clone(), Arc::new(expr), epoch);
                    return Ok(key);
                }
                Need::Fold(pending) => {
                    // Fold pending policies into the effective expression
                    // as per-owner fallback branches (Section 6: queries
                    // between regenerations use G plus the k new
                    // policies). Rebuilt only when the pending set changed
                    // since the last query.
                    let store = self.inner.store.read();
                    let base = match self.inner.cache.read(&key, |c| Arc::clone(&c.base)) {
                        Some(b) => b,
                        None => continue, // evicted meanwhile — regenerate
                    };
                    let mut expr = (*base).clone();
                    {
                        let backend = self.inner.backend.read();
                        let entry = backend.table_entry(relation)?;
                        expr.guards.extend(owner_fallback_guards(
                            pending
                                .iter()
                                .filter_map(|pid| store.get(*pid).map(|p| (*pid, p.owner))),
                            entry,
                        ));
                    }
                    let effective = Arc::new(expr);
                    let installed = self
                        .inner
                        .cache
                        .write(&key, |c| {
                            if c.pending == pending {
                                c.effective = Arc::clone(&effective);
                                c.effective_pending_len = pending.len();
                                true
                            } else {
                                false
                            }
                        })
                        .unwrap_or(false);
                    if installed {
                        self.inner.cache.record_hit();
                        return Ok(key);
                    }
                    // Pending set moved under us — retry from the top.
                }
            }
        }
    }

    /// The compiled relation (effective expression + rewrite fragment) for
    /// a protected relation, reusing the cached fragment when fresh and
    /// recompiling it when not. Superseded fragments free their ∆
    /// partitions once the last in-flight query drops its pin.
    fn compiled_relation(
        &self,
        qm: &QueryMetadata,
        relation: &str,
        opts: &SieveOptions,
        cost: &CostModel,
    ) -> SieveResult<CompiledRelation> {
        let mode = opts.rewrite.delta_mode;
        let key = self.refresh_entry(qm, relation, opts, cost)?;
        loop {
            // Warm path: one shard read checks freshness and clones the
            // Arcs out.
            let fresh = self.inner.cache.read(&key, |c| {
                if !c.fragment_fresh(mode) {
                    return None;
                }
                // A fresh stamp with a missing fragment would break an
                // invariant; treat it as stale and recompile rather than
                // panic on the query path.
                c.fragment.as_ref().map(|f| CompiledRelation {
                    expr: Arc::clone(&c.effective),
                    fragment: Arc::clone(&f.fragment),
                })
            });
            match fresh {
                Some(Some(out)) => {
                    self.inner.cache.record_fragment_hit();
                    return Ok(out);
                }
                Some(None) => {}
                None => {
                    // Entry evicted — refresh and retry.
                    self.refresh_entry(qm, relation, opts, cost)?;
                    continue;
                }
            }
            // Compile outside the shard lock; the store lock keeps the
            // policy view consistent with what we install.
            let store = self.inner.store.read();
            let (effective, pending_len) = match self
                .inner
                .cache
                .read(&key, |c| (Arc::clone(&c.effective), c.pending.len()))
            {
                Some(t) => t,
                None => {
                    drop(store);
                    self.refresh_entry(qm, relation, opts, cost)?;
                    continue;
                }
            };
            let fragment = {
                let backend = self.inner.backend.read();
                let by_id = store.by_id();
                let fragment = compile_guard_fragment(
                    &*backend,
                    &self.inner.delta,
                    &effective,
                    &by_id,
                    cost,
                    mode,
                )?;
                // Cold compiles only (the fragment cache above skips this
                // entirely): check the compiled branches — inline DNF and
                // resolved ∆ partitions alike — against the querier's
                // allowed policies.
                if opts.verify_rewrites {
                    let groups = self.inner.groups.read();
                    let relevant = relevant_policies(store.iter(), relation, qm, &groups);
                    if let analyze::Verdict::Refuted { witness } =
                        analyze::verify_fragment(&fragment, &effective, &by_id, &relevant)
                    {
                        return Err(SieveError::SoundnessRefuted {
                            relation: relation.to_string(),
                            querier: qm.querier,
                            witness: analyze::render_witness(&witness),
                        });
                    }
                }
                Arc::new(fragment)
            };
            let installed = self
                .inner
                .cache
                .write(&key, |c| {
                    if c.fragment_fresh(mode) {
                        // Another thread won the compile race; use theirs
                        // (falling through to install ours if its fragment
                        // is unexpectedly missing).
                        if let Some(f) = c.fragment.as_ref() {
                            return Some(CompiledRelation {
                                expr: Arc::clone(&c.effective),
                                fragment: Arc::clone(&f.fragment),
                            });
                        }
                    }
                    if Arc::ptr_eq(&c.effective, &effective) {
                        c.fragment = Some(CachedFragment {
                            fragment: Arc::clone(&fragment),
                            pending_len,
                            delta_mode: mode,
                        });
                        return Some(CompiledRelation {
                            expr: Arc::clone(&effective),
                            fragment: Arc::clone(&fragment),
                        });
                    }
                    None // effective moved under us — ours is stale
                })
                .flatten();
            match installed {
                Some(out) => {
                    self.inner.cache.record_fragment_build();
                    return Ok(out);
                }
                None => {
                    // Entry evicted or regenerated mid-compile; our
                    // fragment drops here, freeing its partitions.
                    drop(store);
                    self.refresh_entry(qm, relation, opts, cost)?;
                }
            }
        }
    }

    /// Rewrite a query for a querier without executing it (Section 5.6's
    /// output). Satisfied by the guard cache on repeat queries: both the
    /// guarded expression and its compiled rewrite fragment (including ∆
    /// registrations) are reused. The returned output pins the fragments
    /// it references, so the query stays executable even if a concurrent
    /// `add_policy` invalidates the cache entries meanwhile.
    ///
    /// Protected relations are collected over the **whole query tree** —
    /// derived tables, WITH bodies, and scalar subqueries included — with
    /// names resolved against the query's WITH scope first (a CTE that
    /// shadows a protected name is not a base-table read). There is no
    /// nesting depth at which enforcement is skipped.
    pub fn rewrite(&self, query: &SelectQuery, qm: &QueryMetadata) -> SieveResult<RewriteOutput> {
        let (opts, cost) = self.snapshot_config();
        let rels = {
            let protected = self.inner.protected.read();
            collect_protected(query, &protected)
        };
        let mut compiled: HashMap<String, CompiledRelation> = HashMap::new();
        for rel in rels {
            let cr = self.compiled_relation(qm, &rel, &opts, &cost)?;
            compiled.insert(rel, cr);
        }
        let backend = self.inner.backend.read();
        rewrite_query(&*backend, query, &compiled, &cost, &opts.rewrite)
    }

    fn exec_options(&self) -> ExecOptions {
        let opts = self.inner.options.read();
        ExecOptions {
            timeout: opts.timeout,
            threads: opts.exec_threads,
        }
    }

    /// Snapshot of the recovery counters (retries, reconnects,
    /// re-prepares, exhausted budgets).
    pub fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            retries: self.inner.recovery.retries.load(Ordering::Relaxed),
            reconnects: self.inner.recovery.reconnects.load(Ordering::Relaxed),
            reprepares: self.inner.recovery.reprepares.load(Ordering::Relaxed),
            exhausted: self.inner.recovery.exhausted.load(Ordering::Relaxed),
        }
    }

    /// Record a prepared-plan rebuild (called by the session layer).
    pub(crate) fn note_reprepare(&self) {
        self.inner.recovery.reprepares.fetch_add(1, Ordering::Relaxed);
    }

    /// Run a backend operation under the configured [`crate::middleware::RetryPolicy`]:
    /// retryable errors ([`BackendError::is_retryable`]) are re-issued with
    /// deterministic exponential backoff until the attempt or time budget
    /// runs out; everything else fails closed on the first attempt.
    ///
    /// A [`BackendError::ConnectionLost`] additionally bumps the backend
    /// epoch — server-side statement state is gone, so every
    /// [`crate::session::Prepared`] plan must detectably re-prepare — and
    /// counts as a reconnect. Each attempt takes the backend read lock
    /// individually and drops it before sleeping, so the retry loop never
    /// starves writers (or other queries) during its backoff.
    fn with_backend_retry<T>(
        &self,
        mut op: impl FnMut(&B) -> Result<T, BackendError>,
    ) -> SieveResult<T> {
        let retry = self.inner.options.read().retry;
        let start = std::time::Instant::now();
        let mut attempts: u32 = 0;
        loop {
            let err = {
                let backend = self.inner.backend.read();
                match op(&backend) {
                    Ok(v) => return Ok(v),
                    Err(e) => e,
                }
            };
            attempts += 1;
            if matches!(err, BackendError::ConnectionLost(_)) {
                self.inner.recovery.reconnects.fetch_add(1, Ordering::Relaxed);
                self.inner.backend_epoch.fetch_add(1, Ordering::SeqCst);
            }
            let budget_ok = retry.budget.map(|b| start.elapsed() < b).unwrap_or(true);
            if !err.is_retryable() || attempts > retry.max_retries || !budget_ok {
                if err.is_retryable() {
                    self.inner.recovery.exhausted.fetch_add(1, Ordering::Relaxed);
                }
                return Err(if attempts == 1 {
                    SieveError::Backend(err)
                } else {
                    SieveError::RetriesExhausted {
                        attempts,
                        last: err,
                    }
                });
            }
            self.inner.recovery.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(retry.backoff_for(attempts));
        }
    }

    /// Execute a query under SIEVE enforcement.
    pub fn execute(&self, query: &SelectQuery, qm: &QueryMetadata) -> SieveResult<QueryResult> {
        let rewritten = self.rewrite(query, qm)?;
        let opts = self.exec_options();
        self.with_backend_retry(|b| b.exec(&rewritten.query, &opts))
    }

    /// Execute an already-rewritten query (the [`crate::session::Prepared`]
    /// hot path: no cache traffic at all — the caller pins the fragments).
    pub(crate) fn exec_prepared(&self, query: &SelectQuery) -> SieveResult<QueryResult> {
        let opts = self.exec_options();
        self.with_backend_retry(|b| b.exec(query, &opts))
    }

    /// Ask the backend for a server-side statement handle over an
    /// already-rewritten query. `Ok(None)` means the backend has no
    /// prepared-statement support and callers must stay on the text path.
    pub(crate) fn prepare_statement(
        &self,
        query: &SelectQuery,
    ) -> SieveResult<Option<crate::backend::PreparedStatement>> {
        self.with_backend_retry(|b| b.prepare(query))
    }

    /// Execute a server-side prepared statement with bound parameters
    /// (the [`crate::session::Prepared`] hot path on wire backends). A
    /// connection drop mid-retry typically resurfaces as
    /// [`BackendError::UnknownStatement`] on the fresh connection — the
    /// typed signal the session layer re-prepares on.
    pub(crate) fn execute_statement(
        &self,
        id: crate::backend::StatementId,
        params: &[minidb::value::Value],
    ) -> SieveResult<QueryResult> {
        let opts = self.exec_options();
        self.with_backend_retry(|b| b.execute_prepared(id, params, &opts))
    }

    /// Close a server-side prepared statement; unknown ids are a no-op.
    pub(crate) fn close_statement(&self, id: crate::backend::StatementId) {
        let backend = self.inner.backend.read();
        backend.close_prepared(id);
    }

    /// Execute and time a query under any enforcement mechanism; the
    /// experiment harness's single entry point. Timing shares the
    /// backend's statistics sink — drive it single-threaded. The ∆
    /// partitions of the prepared query are pinned locally across the
    /// execution, so a concurrent invalidation cannot fail the run.
    pub fn run_timed(
        &self,
        enforcement: Enforcement,
        query: &SelectQuery,
        qm: &QueryMetadata,
    ) -> (SieveResult<QueryResult>, ExecStats) {
        let (prepared, _pins) = match self.prepare_pinned(enforcement, query, qm) {
            Ok(t) => t,
            Err(e) => {
                return (
                    Err(e),
                    ExecStats {
                        counters: Default::default(),
                        wall: Duration::ZERO,
                        simulated_cost: 0.0,
                    },
                )
            }
        };
        let opts = self.exec_options();
        // Retry with the stats of the *last* attempt: recovery time is the
        // caller's to observe via wall-clock, not folded into engine
        // counters from failed attempts.
        let mut last_stats = ExecStats {
            counters: Default::default(),
            wall: Duration::ZERO,
            simulated_cost: 0.0,
        };
        let res = self.with_backend_retry(|b| {
            let (r, stats) = b.exec_timed(&prepared, &opts);
            last_stats = stats;
            r
        });
        (res, last_stats)
    }

    /// Produce the executable query for an enforcement mechanism without
    /// running it (rewriting cost is *not* part of the measured times, as
    /// in the paper, which reports warm per-query execution).
    ///
    /// The returned query's ∆ partitions are pinned in a bounded
    /// service-side slot until [`BASELINE_PIN_SLOTS`] further `prepare`
    /// calls have happened — enough for the harness's
    /// prepare-then-execute pattern, but **not** a concurrency guarantee:
    /// a prepared query held across many other prepares (or an
    /// invalidation, for the Sieve path) may stop executing. Concurrent
    /// callers should use [`crate::session::Session::prepare`], whose
    /// [`crate::session::Prepared`] handle pins its plan for its whole
    /// lifetime and re-prepares transparently.
    pub fn prepare(
        &self,
        enforcement: Enforcement,
        query: &SelectQuery,
        qm: &QueryMetadata,
    ) -> SieveResult<SelectQuery> {
        let (prepared, pins) = self.prepare_pinned(enforcement, query, qm)?;
        if !(pins.handles.is_empty() && pins.fragments.is_empty()) {
            let mut slots = self.inner.baseline_pins.lock();
            if slots.len() >= BASELINE_PIN_SLOTS {
                slots.pop_front();
            }
            slots.push_back(pins);
        }
        Ok(prepared)
    }

    /// [`SieveService::prepare`] returning the pins explicitly: the query
    /// stays executable exactly as long as the caller holds them.
    fn prepare_pinned(
        &self,
        enforcement: Enforcement,
        query: &SelectQuery,
        qm: &QueryMetadata,
    ) -> SieveResult<(SelectQuery, PreparePins)> {
        match enforcement {
            Enforcement::Sieve => {
                let out = self.rewrite(query, qm)?;
                Ok((
                    out.query,
                    PreparePins {
                        fragments: out.fragments,
                        handles: Vec::new(),
                    },
                ))
            }
            Enforcement::NoPolicies => Ok((query.clone(), PreparePins::default())),
            Enforcement::Baseline(which) => {
                // The baseline rewrites (policy DNF in WHERE, per-policy
                // UNION, per-tuple UDF) attach to top-level FROM entries
                // only; a protected relation read through nesting would
                // escape them, so they fail closed instead of silently
                // under-enforcing. Sieve enforcement mediates all depths.
                let (top, nested) = {
                    let protected = self.inner.protected.read();
                    classify_protected_refs(query, &protected)
                };
                if !nested.is_empty() {
                    return Err(SieveError::Rewrite(DbError::Unsupported(format!(
                        "baseline {which:?} mediates only top-level FROM references; \
                         protected relation(s) {nested:?} are read through a subquery, \
                         WITH body, or derived table — use Sieve enforcement"
                    ))));
                }
                let mut handles: Vec<PartitionHandle> = Vec::new();
                let store = self.inner.store.read();
                let groups = self.inner.groups.read();
                let backend = self.inner.backend.read();
                let mut rewritten = query.clone();
                for rel in top {
                    let relevant = relevant_policies(store.iter(), &rel, qm, &groups);
                    rewritten = match which {
                        Baseline::P => rewrite_baseline_p(&rewritten, &rel, &relevant),
                        Baseline::I => rewrite_baseline_i(&rewritten, &rel, &relevant),
                        Baseline::U => {
                            // On error the handles collected so far drop
                            // right here — no leak to reclaim later.
                            let (q, h) = rewrite_baseline_u(
                                &*backend,
                                &self.inner.delta,
                                &rewritten,
                                &rel,
                                &relevant,
                            )?;
                            handles.extend(h);
                            q
                        }
                    };
                }
                Ok((
                    rewritten,
                    PreparePins {
                        fragments: Vec::new(),
                        handles,
                    },
                ))
            }
        }
    }

    /// The guarded expression for (querier, purpose, relation), generating
    /// or refreshing it per the regeneration policy. Returns the
    /// expression actually used for enforcement (stale + pending branches
    /// under `OptimalRate`/`Manual` when below the regeneration threshold).
    pub fn guarded_expression(
        &self,
        qm: &QueryMetadata,
        relation: &str,
    ) -> SieveResult<GuardedExpression> {
        let (opts, cost) = self.snapshot_config();
        loop {
            let key = self.refresh_entry(qm, relation, &opts, &cost)?;
            // A concurrent bulk insert can LRU-evict the entry between the
            // refresh and this read; that's churn, not an error — refresh
            // again (same recovery as compiled_relation).
            if let Some(expr) = self.inner.cache.read(&key, |c| (*c.effective).clone()) {
                return Ok(expr);
            }
        }
    }

    /// Parse SQL, then [`SieveService::execute`]. Repeat textual queries
    /// reuse the cached AST instead of re-parsing; warm lookups take only
    /// the cache's read lock.
    pub fn execute_sql(&self, sql: &str, qm: &QueryMetadata) -> SieveResult<QueryResult> {
        // The read-side `get` marks the entry most-recently-used, so a hot
        // query text survives churn of one-shot texts (LRU-on-access, same
        // policy as the guard cache).
        if let Some(q) = self.inner.sql_cache.read().get(sql) {
            return self.execute(&q, qm);
        }
        let q = Arc::new(minidb::sql::parse(sql)?);
        {
            let mut cache = self.inner.sql_cache.write();
            // Re-check: another thread may have inserted while we parsed.
            // (Re-inserting would be harmless — same parse result — but
            // would reset the entry's recency from this thread's stale
            // view.)
            if !cache.contains_key(sql) {
                cache.insert(sql.to_string(), Arc::clone(&q));
            }
        }
        self.execute(&q, qm)
    }

    /// Number of parsed-SQL cache entries (observability/tests).
    pub fn sql_cache_len(&self) -> usize {
        self.inner.sql_cache.read().len()
    }

    /// True iff this exact SQL text is cached (observability/tests).
    pub fn sql_cache_contains(&self, sql: &str) -> bool {
        self.inner.sql_cache.read().contains_key(sql)
    }

    /// Warm-populate the guard cache for a batch of concurrent queriers
    /// (the ROADMAP's batched multi-querier evaluation). Requests are
    /// grouped by `(purpose, relation)` over the whole query tree; each
    /// group's policy-store scan and candidate generation (policy
    /// filtering, histogram estimates, Theorem 1 merges) run **once**,
    /// and only the per-querier restriction + set cover run individually —
    /// spread across `available_parallelism` threads now that the shared
    /// half is immutable borrowed state.
    ///
    /// Batching changes the work schedule, not the semantics: each
    /// querier's expression covers exactly its relevant policies, so
    /// rewriting or executing afterwards returns exactly what sequential
    /// [`SieveService::execute`] calls would.
    pub fn prepare_batch(
        &self,
        requests: &[(QueryMetadata, SelectQuery)],
    ) -> SieveResult<BatchPrepareReport> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.prepare_batch_with_threads(requests, threads)
    }

    /// [`SieveService::prepare_batch`] with an explicit thread count for
    /// the per-querier phase (`1` forces the sequential schedule; tests
    /// pin parallel-vs-sequential equivalence through this).
    pub fn prepare_batch_with_threads(
        &self,
        requests: &[(QueryMetadata, SelectQuery)],
        threads: usize,
    ) -> SieveResult<BatchPrepareReport> {
        let (opts, cost) = self.snapshot_config();
        let groups_map = {
            let protected = self.inner.protected.read();
            crate::batch::group_requests(requests, &protected)
        };
        let mut report = BatchPrepareReport::default();
        let mut to_insert: Vec<(GuardCacheKey, Arc<GuardedExpression>, Option<CachedFragment>)> =
            Vec::new();
        // Hold the store lock across generation and publish, as the
        // single-key path does (see module docs).
        let store = self.inner.store.read();
        let groups = self.inner.groups.read();
        let epoch = self.inner.backend_epoch.load(Ordering::SeqCst);
        let mode = opts.rewrite.delta_mode;
        {
            let backend = self.inner.backend.read();
            let by_id = store.by_id();
            for ((purpose, relation), qms) in groups_map {
                let pending: Vec<&QueryMetadata> = qms
                    .iter()
                    .copied()
                    .filter(|qm| {
                        self.needs_generation(
                            &(qm.querier, purpose.clone(), relation.clone()),
                            &opts,
                            &cost,
                        )
                    })
                    .collect();
                report.reused += qms.len() - pending.len();
                if pending.is_empty() {
                    continue;
                }
                let entry = backend.table_entry(&relation)?;
                let group = crate::batch::build_shared_group(
                    store.iter(),
                    &relation,
                    &purpose,
                    entry,
                    &cost,
                );
                let exprs: Vec<GuardedExpression> =
                    if threads <= 1 || pending.len() < PARALLEL_BATCH_MIN {
                        pending
                            .iter()
                            .map(|qm| {
                                group.generate_for(qm, &groups, entry, &cost, opts.selection)
                            })
                            .collect()
                    } else {
                        // The per-querier phase: restriction + set cover
                        // over shared immutable state, chunked across
                        // scoped threads. Chunks preserve request order.
                        let n = threads.min(pending.len());
                        let chunk = pending.len().div_ceil(n);
                        let groups_ref = &*groups;
                        let group_ref = &group;
                        let cost_ref = &cost;
                        std::thread::scope(|s| {
                            let handles: Vec<_> = pending
                                .chunks(chunk)
                                .map(|part| {
                                    s.spawn(move || {
                                        part.iter()
                                            .map(|qm| {
                                                group_ref.generate_for(
                                                    qm,
                                                    groups_ref,
                                                    entry,
                                                    cost_ref,
                                                    opts.selection,
                                                )
                                            })
                                            .collect::<Vec<_>>()
                                    })
                                })
                                .collect();
                            // Join every handle before surfacing a panic:
                            // an unjoined panicked thread would re-raise
                            // when the scope closes, escaping the typed
                            // error path.
                            let mut parts = Vec::with_capacity(handles.len());
                            let mut panicked = false;
                            for h in handles {
                                match h.join() {
                                    Ok(v) => parts.push(v),
                                    Err(_) => panicked = true,
                                }
                            }
                            if panicked {
                                Err(SieveError::Poisoned("prepare_batch worker panicked"))
                            } else {
                                Ok(parts.into_iter().flatten().collect())
                            }
                        })?
                    };
                self.inner
                    .generations
                    .fetch_add(exprs.len() as u64, Ordering::Relaxed);
                // Compile each generated expression's rewrite fragment
                // here too, sharing partition compilations (inline DNFs
                // and ∆ registrations) across the group's queriers via the
                // memo — fragment compilation is batched per group, not
                // redone per querier on the first post-batch rewrite.
                let mut memo = FragmentCompileCache::default();
                for (qm, expr) in pending.iter().zip(exprs) {
                    // Batch generations are cold by definition — same
                    // verification contract as `refresh_entry`.
                    if opts.verify_rewrites {
                        let relevant = relevant_policies(store.iter(), &relation, qm, &groups);
                        if let analyze::Verdict::Refuted { witness } =
                            analyze::verify_guarded_expression(&expr, &by_id, &relevant)
                        {
                            return Err(SieveError::SoundnessRefuted {
                                relation: relation.clone(),
                                querier: qm.querier,
                                witness: analyze::render_witness(&witness),
                            });
                        }
                    }
                    let expr = Arc::new(expr);
                    let fragment = compile_guard_fragment_memo(
                        &*backend,
                        &self.inner.delta,
                        &expr,
                        &by_id,
                        &cost,
                        mode,
                        &mut memo,
                    )?;
                    to_insert.push((
                        (qm.querier, purpose.clone(), relation.clone()),
                        expr,
                        Some(CachedFragment {
                            fragment: Arc::new(fragment),
                            pending_len: 0,
                            delta_mode: mode,
                        }),
                    ));
                }
                report.generated += pending.len();
                report.fragments_compiled += pending.len();
                report.partition_reuses += memo.reuses;
                report.groups.push(BatchGroupReport {
                    purpose: purpose.clone(),
                    relation: relation.clone(),
                    queriers: qms.len(),
                    generated: pending.len(),
                    slice_policies: group.slice_len,
                    shared_candidates: group.shared_candidates(),
                    partition_reuses: memo.reuses,
                });
            }
        }
        if opts.persist {
            let mut backend = self.inner.backend.write();
            let mut persist = self.inner.persist.lock();
            for (_, expr, _) in &to_insert {
                persist_guarded_expression(&mut *backend, expr, false, &mut persist.guard_ids)?;
            }
        }
        self.inner
            .cache
            .insert_generated_bulk_compiled(to_insert, epoch);
        Ok(report)
    }

    /// Execute a batch of queries under SIEVE enforcement, amortizing
    /// guard generation across queriers via
    /// [`SieveService::prepare_batch`]. Results are in request order and
    /// identical to calling [`SieveService::execute`] per request.
    pub fn execute_batch(
        &self,
        requests: &[(QueryMetadata, SelectQuery)],
    ) -> SieveResult<Vec<QueryResult>> {
        self.prepare_batch(requests)?;
        requests.iter().map(|(qm, q)| self.execute(q, qm)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The service must be shareable across threads by construction.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_and_handles_are_send_sync() {
        assert_send_sync::<SieveService<MinidbBackend>>();
        assert_send_sync::<crate::session::Session<MinidbBackend>>();
        assert_send_sync::<crate::session::Prepared<MinidbBackend>>();
        #[cfg(feature = "wire-sql")]
        assert_send_sync::<SieveService<crate::backend::WireSqlBackend>>();
        assert_send_sync::<SieveService<crate::backend::DynBackend>>();
    }
}
