//! Per-querier session and prepared-statement handles.
//!
//! A wire server fronting [`crate::service::SieveService`] hands each
//! connection a [`Session`]: the querier's [`QueryMetadata`] (identity,
//! purpose, context) is captured **once** at session creation — the
//! principal carries its authority in the handle instead of re-passing it
//! per call (cf. Zigmond et al., "Fine-Grained, Language-Based Access
//! Control for Database-Backed Applications"). Sessions are cheap clones
//! of the service handle plus the metadata; any number may live and query
//! concurrently.
//!
//! [`Prepared`] is the repeat-query hot path: it pins a fully rewritten
//! query (guards compiled, ∆ partitions registered and reference-held) so
//! repeated [`Prepared::execute`] calls skip *all* middleware work — no
//! cache lookup, no rewrite, just backend execution under the shared read
//! lock. Staleness is detected by two service-level counters captured at
//! prepare time: the **backend epoch** (out-of-band data/schema mutation)
//! and the **revision** (policy/option/cost/group changes). When either
//! moves, the next `execute` transparently re-prepares — through the
//! guard cache, so a re-prepare after an unrelated change is two warm
//! lookups, not a regeneration.

use crate::backend::{MinidbBackend, SqlBackend, StatementId};
use crate::guard::GuardedExpression;
use crate::policy::QueryMetadata;
use crate::rewrite::{GuardFragment, RewriteOutput};
use crate::service::SieveService;
use crate::error::SieveResult;
use minidb::plan::SelectQuery;
use minidb::QueryResult;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A per-querier handle onto a [`SieveService`]: query metadata captured
/// once, every read path at `&self`. Clone freely; clones share the
/// service and copy the metadata.
pub struct Session<B: SqlBackend = MinidbBackend> {
    service: SieveService<B>,
    qm: QueryMetadata,
}

impl<B: SqlBackend> Clone for Session<B> {
    fn clone(&self) -> Self {
        Session {
            service: self.service.clone(),
            qm: self.qm.clone(),
        }
    }
}

impl<B: SqlBackend> Session<B> {
    pub(crate) fn new(service: SieveService<B>, qm: QueryMetadata) -> Self {
        Session { service, qm }
    }

    /// The metadata this session queries under.
    pub fn metadata(&self) -> &QueryMetadata {
        &self.qm
    }

    /// The shared service behind this session.
    pub fn service(&self) -> &SieveService<B> {
        &self.service
    }

    /// Execute a query under SIEVE enforcement as this session's querier.
    pub fn execute(&self, query: &SelectQuery) -> SieveResult<QueryResult> {
        self.service.execute(query, &self.qm)
    }

    /// Parse SQL, then [`Session::execute`] (shares the service-wide
    /// parsed-AST cache).
    pub fn execute_sql(&self, sql: &str) -> SieveResult<QueryResult> {
        self.service.execute_sql(sql, &self.qm)
    }

    /// Rewrite a query without executing it.
    pub fn rewrite(&self, query: &SelectQuery) -> SieveResult<RewriteOutput> {
        self.service.rewrite(query, &self.qm)
    }

    /// The session's guarded expression for a protected relation.
    pub fn guarded_expression(&self, relation: &str) -> SieveResult<GuardedExpression> {
        self.service.guarded_expression(&self.qm, relation)
    }

    /// Prepare a query for repeated execution: rewrite it now, pin the
    /// compiled fragments, and hand back a [`Prepared`] whose `execute`
    /// skips the middleware entirely while the plan stays fresh.
    pub fn prepare(&self, query: SelectQuery) -> SieveResult<Prepared<B>> {
        let prepared = Prepared {
            service: self.service.clone(),
            qm: self.qm.clone(),
            source: query,
            plan: Mutex::new(None),
            reprepares: AtomicU64::new(0),
        };
        prepared.refresh_plan(None)?;
        Ok(prepared)
    }

    /// Parse SQL and [`Session::prepare`] it.
    pub fn prepare_sql(&self, sql: &str) -> SieveResult<Prepared<B>> {
        self.prepare(minidb::sql::parse(sql)?)
    }
}

/// A server-side statement held open for a plan's lifetime. Closing on
/// `Drop` (of the last `Arc<Plan>` clone) rather than at re-prepare time
/// means an in-flight `execute` on another thread can never race a close
/// of the statement it is running.
struct StatementPin<B: SqlBackend> {
    service: SieveService<B>,
    id: StatementId,
    /// The literal values lifted out of the rewritten query, in placeholder
    /// order — re-sent on every execute, as a wire client would.
    params: Vec<minidb::value::Value>,
}

impl<B: SqlBackend> Drop for StatementPin<B> {
    fn drop(&mut self) {
        self.service.close_statement(self.id);
    }
}

/// A rewritten plan plus the validity stamps it was built under. Shared
/// as one `Arc`, so a warm execute pins query + fragments (and through
/// them the ∆ partitions) with a single refcount bump.
struct Plan<B: SqlBackend> {
    query: SelectQuery,
    /// Pins the plan's ∆ partitions for as long as the plan is held.
    _fragments: Vec<Arc<GuardFragment>>,
    /// Server-side statement over `query`, when the backend supports
    /// prepared execution (`None` keeps the in-process AST path). A stale
    /// plan's statement closes when its last holder drops.
    statement: Option<StatementPin<B>>,
    backend_epoch: u64,
    revision: u64,
}

/// A statement prepared for one querier: the compiled rewrite is pinned
/// and re-executed without touching the guard cache. Stale plans (backend
/// epoch or service revision moved) transparently re-prepare on the next
/// [`Prepared::execute`]. Shareable across threads (`&self` API).
pub struct Prepared<B: SqlBackend = MinidbBackend> {
    service: SieveService<B>,
    qm: QueryMetadata,
    source: SelectQuery,
    plan: Mutex<Option<Arc<Plan<B>>>>,
    reprepares: AtomicU64,
}

impl<B: SqlBackend> Prepared<B> {
    /// The metadata this statement executes under.
    pub fn metadata(&self) -> &QueryMetadata {
        &self.qm
    }

    /// The original (pre-rewrite) query.
    pub fn source(&self) -> &SelectQuery {
        &self.source
    }

    /// How many times the plan was rebuilt after the initial prepare
    /// (observability: an epoch/revision bump shows up here).
    pub fn reprepares(&self) -> u64 {
        self.reprepares.load(Ordering::Relaxed)
    }

    /// The server-side statement id behind the current plan, if the
    /// backend prepared one (observability: a re-prepare shows up as a
    /// fresh id, an AST-path backend as `None`).
    pub fn statement_id(&self) -> Option<StatementId> {
        let slot = self.plan.lock();
        slot.as_ref().and_then(|p| p.statement.as_ref().map(|s| s.id))
    }

    /// True iff the plan's validity stamps still match the service.
    fn plan_fresh(&self, p: &Plan<B>) -> bool {
        p.backend_epoch == self.service.backend_epoch()
            && p.revision == self.service.revision()
    }

    /// Rebuild the plan from the current service state.
    ///
    /// `observed` is the plan the caller found stale or failing (`None`
    /// at initial prepare). The plan mutex is held across the whole
    /// rebuild, making recovery **single-flight**: a storm of threads
    /// that all observed the same dead plan queue here, the first
    /// rebuilds, and every later one finds the slot holds a *different*,
    /// fresh plan and reuses it — one re-prepare total, not one per
    /// thread.
    fn refresh_plan(&self, observed: Option<&Arc<Plan<B>>>) -> SieveResult<Arc<Plan<B>>> {
        let mut slot = self.plan.lock();
        if let Some(cur) = slot.as_ref() {
            let replaced = observed.map(|o| !Arc::ptr_eq(o, cur)).unwrap_or(false);
            if replaced && self.plan_fresh(cur) {
                return Ok(Arc::clone(cur));
            }
        }
        // Stamps are captured *before* the rewrite: if a writer bumps
        // either counter mid-rewrite, the stored plan is already marked
        // stale and the next execute re-prepares — conservative, never
        // wrong.
        let backend_epoch = self.service.backend_epoch();
        let revision = self.service.revision();
        let out = self.service.rewrite(&self.source, &self.qm)?;
        // Pin a server-side statement when the backend offers one: the
        // rewritten text is rendered, shipped and parsed once here, and
        // every subsequent warm execute goes by statement id + bound
        // parameters instead of re-crossing the wire as text.
        let statement = self.service.prepare_statement(&out.query)?.map(|ps| StatementPin {
            service: self.service.clone(),
            id: ps.id,
            params: ps.params,
        });
        let plan = Arc::new(Plan {
            query: out.query,
            _fragments: out.fragments,
            statement,
            backend_epoch,
            revision,
        });
        if slot.is_some() {
            self.reprepares.fetch_add(1, Ordering::Relaxed);
            self.service.note_reprepare();
        }
        *slot = Some(Arc::clone(&plan));
        Ok(plan)
    }

    /// Dispatch an already-built plan to the backend.
    fn run_plan(&self, plan: &Plan<B>) -> SieveResult<QueryResult> {
        match &plan.statement {
            Some(pin) => self.service.execute_statement(pin.id, &pin.params),
            None => self.service.exec_prepared(&plan.query),
        }
    }

    /// Execute the statement. While the plan is fresh this is the
    /// middleware's fastest path: one `Arc` clone under a short mutex
    /// (which pins query and ∆ partitions together), then run on the
    /// backend under its shared read lock.
    ///
    /// Recovery: if the backend reports that server-side statement state
    /// was lost ([`crate::SieveError::needs_reprepare`] — a connection
    /// drop or statement eviction), the plan is rebuilt **once** and the
    /// query re-run; a second failure surfaces to the caller. Everything
    /// else fails closed immediately with the typed error.
    pub fn execute(&self) -> SieveResult<QueryResult> {
        let (observed, fresh) = {
            let slot = self.plan.lock();
            match slot.as_ref() {
                Some(p) => (Some(Arc::clone(p)), self.plan_fresh(p)),
                None => (None, false),
            }
        };
        let plan = match (observed, fresh) {
            (Some(p), true) => p,
            (observed, _) => self.refresh_plan(observed.as_ref())?,
        };
        match self.run_plan(&plan) {
            Err(e) if e.needs_reprepare() => {
                let plan = self.refresh_plan(Some(&plan))?;
                self.run_plan(&plan)
            }
            done => done,
        }
    }
}
