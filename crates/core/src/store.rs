//! Policy and guard persistence (paper Section 5.1).
//!
//! SIEVE stores policies and guarded expressions in ordinary relations so
//! the DBMS itself hosts them: `rP` (policies), `rOC` (object conditions),
//! `rGE` (guarded expressions per querier/purpose/relation), `rGG`
//! (guards), and `rGP` (guard → policy partition membership).
//!
//! `minidb` tables are append-only, so updates (e.g. flipping a guarded
//! expression's `outdated` flag) are written as new versions with higher
//! ids; readers take the latest version per key. The in-memory
//! [`PolicyStore`] is the authoritative working set; the tables are its
//! queryable, durable mirror.

use crate::backend::SqlBackend;
use crate::policy::{
    CondPredicate, ObjectCondition, Policy, PolicyId, QuerierSpec, UserId,
};
use minidb::error::{DbError, DbResult};
use crate::error::SieveResult;
use minidb::value::{DataType, Value};
use minidb::{RangeBound, TableSchema};
use std::collections::{BTreeMap, HashMap};

/// Table name for `rP`.
pub const RP_TABLE: &str = "sieve_policies";
/// Table name for `rOC`.
pub const ROC_TABLE: &str = "sieve_object_conditions";
/// Table name for `rGE`.
pub const RGE_TABLE: &str = "sieve_guard_expressions";
/// Table name for `rGG`.
pub const RGG_TABLE: &str = "sieve_guards";
/// Table name for `rGP`.
pub const RGP_TABLE: &str = "sieve_guard_policies";

/// Attribute prefix marking querier-context conditions inside `rOC`.
pub const QM_ATTR_PREFIX: &str = "__qm_";

/// In-memory policy registry: id assignment, logical clock, lookups.
#[derive(Debug, Default)]
pub struct PolicyStore {
    policies: BTreeMap<PolicyId, Policy>,
    next_id: PolicyId,
    clock: u64,
}

impl PolicyStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a policy: assigns its id and insertion timestamp.
    pub fn add(&mut self, mut p: Policy) -> PolicyId {
        self.next_id += 1;
        self.clock += 1;
        p.id = self.next_id;
        p.inserted_at = self.clock;
        self.policies.insert(p.id, p);
        self.next_id
    }

    /// Look up by id.
    pub fn get(&self, id: PolicyId) -> Option<&Policy> {
        self.policies.get(&id)
    }

    /// All policies in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Policy> {
        self.policies.values()
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Id → policy map (used by rewriting).
    pub fn by_id(&self) -> HashMap<PolicyId, &Policy> {
        self.policies.iter().map(|(k, v)| (*k, v)).collect()
    }
}

/// Create the five persistence relations on a backend (idempotent).
pub fn create_policy_tables(db: &mut dyn SqlBackend) -> SieveResult<()> {
    let mk = |db: &mut dyn SqlBackend, schema: TableSchema| -> SieveResult<()> {
        if db.has_relation(&schema.name) {
            Ok(())
        } else {
            Ok(db.create_relation(schema)?)
        }
    };
    mk(
        db,
        TableSchema::of(
            RP_TABLE,
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("querier_type", DataType::Str),
                ("querier", DataType::Int),
                ("associated_table", DataType::Str),
                ("purpose", DataType::Str),
                ("action", DataType::Str),
                ("ts_inserted_at", DataType::Int),
            ],
        ),
    )?;
    mk(
        db,
        TableSchema::of(
            ROC_TABLE,
            &[
                ("id", DataType::Int),
                ("policy_id", DataType::Int),
                ("attr", DataType::Str),
                ("op", DataType::Str),
                ("val", DataType::Str),
            ],
        ),
    )?;
    mk(
        db,
        TableSchema::of(
            RGE_TABLE,
            &[
                ("id", DataType::Int),
                ("querier", DataType::Int),
                ("associated_table", DataType::Str),
                ("purpose", DataType::Str),
                ("outdated", DataType::Bool),
                ("ts_inserted_at", DataType::Int),
            ],
        ),
    )?;
    mk(
        db,
        TableSchema::of(
            RGG_TABLE,
            &[
                ("id", DataType::Int),
                ("guard_expression_id", DataType::Int),
                ("attr", DataType::Str),
                ("op", DataType::Str),
                ("val", DataType::Str),
            ],
        ),
    )?;
    mk(
        db,
        TableSchema::of(
            RGP_TABLE,
            &[("guard_id", DataType::Int), ("policy_id", DataType::Int)],
        ),
    )?;
    // Fast policy lookup by querier, as the ∆ implementation requires.
    db.create_relation_index(RP_TABLE, "querier")?;
    db.create_relation_index(ROC_TABLE, "policy_id")?;
    Ok(())
}

/// Render a value to the `val` text column.
pub fn value_to_text(v: &Value) -> String {
    v.to_string()
}

/// Parse a `val` text column back into a value.
pub fn text_to_value(s: &str) -> DbResult<Value> {
    let t = s.trim();
    if t.eq_ignore_ascii_case("NULL") {
        return Ok(Value::Null);
    }
    if t.eq_ignore_ascii_case("TRUE") {
        return Ok(Value::Bool(true));
    }
    if t.eq_ignore_ascii_case("FALSE") {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = t.strip_prefix("TIME ").or_else(|| t.strip_prefix("time ")) {
        let inner = rest.trim().trim_matches('\'');
        return Value::parse_time(inner)
            .map(Value::Time)
            .ok_or_else(|| DbError::Parse(format!("bad TIME value {s}")));
    }
    if let Some(rest) = t.strip_prefix("DATE ").or_else(|| t.strip_prefix("date ")) {
        let inner = rest.trim().trim_matches('\'');
        return Value::parse_date(inner)
            .map(Value::Date)
            .ok_or_else(|| DbError::Parse(format!("bad DATE value {s}")));
    }
    if t.starts_with('\'') && t.ends_with('\'') && t.len() >= 2 {
        return Ok(Value::str(t[1..t.len() - 1].replace("''", "'")));
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = t.parse::<f64>() {
        return Ok(Value::Double(f));
    }
    Err(DbError::Parse(format!("unparseable value text: {s}")))
}

/// Encode one object condition as `(op, val)` rows. Ranges become up to
/// two rows (`>=`/`>` and `<=`/`<`), as in the paper's Table 5.
fn encode_condition(oc: &ObjectCondition) -> Vec<(String, String)> {
    match &oc.pred {
        CondPredicate::Eq(v) => vec![("=".into(), value_to_text(v))],
        CondPredicate::Ne(v) => vec![("!=".into(), value_to_text(v))],
        CondPredicate::In(vs) => vec![(
            "IN".into(),
            vs.iter().map(value_to_text).collect::<Vec<_>>().join(", "),
        )],
        CondPredicate::NotIn(vs) => vec![(
            "NOT IN".into(),
            vs.iter().map(value_to_text).collect::<Vec<_>>().join(", "),
        )],
        CondPredicate::Range { low, high } => {
            let mut rows = Vec::new();
            match low {
                RangeBound::Inclusive(v) => rows.push((">=".into(), value_to_text(v))),
                RangeBound::Exclusive(v) => rows.push((">".into(), value_to_text(v))),
                RangeBound::Unbounded => {}
            }
            match high {
                RangeBound::Inclusive(v) => rows.push(("<=".into(), value_to_text(v))),
                RangeBound::Exclusive(v) => rows.push(("<".into(), value_to_text(v))),
                RangeBound::Unbounded => {}
            }
            rows
        }
        CondPredicate::Derived(q) => {
            vec![("=".into(), format!("({})", minidb::sql::render_query(q)))]
        }
    }
}

/// Persist a policy into `rP`/`rOC`. The policy must already carry its id
/// (i.e. go through [`PolicyStore::add`] first).
pub fn persist_policy(
    db: &mut dyn SqlBackend,
    p: &Policy,
    next_oc_id: &mut i64,
) -> SieveResult<()> {
    let (qt, q) = match &p.querier {
        QuerierSpec::User(u) => ("user", *u),
        QuerierSpec::Group(g) => ("group", *g),
    };
    db.insert_row(
        RP_TABLE,
        vec![
            Value::Int(p.id as i64),
            Value::Int(p.owner),
            Value::str(qt),
            Value::Int(q),
            Value::str(&p.relation),
            Value::str(&p.purpose),
            Value::str("allow"),
            Value::Int(p.inserted_at as i64),
        ],
    )?;
    // Querier-context conditions ride in rOC under a reserved attribute
    // prefix (the paper models them as querier conditions; the relation
    // layout of Section 5.1 has no dedicated table for them).
    for (attr, value) in &p.querier_context {
        *next_oc_id += 1;
        db.insert_row(
            ROC_TABLE,
            vec![
                Value::Int(*next_oc_id),
                Value::Int(p.id as i64),
                Value::str(format!("{QM_ATTR_PREFIX}{attr}")),
                Value::str("="),
                Value::str(value_to_text(value)),
            ],
        )?;
    }
    // Owner condition first, as the paper's examples list it.
    for oc in p.object_conditions() {
        for (op, val) in encode_condition(&oc) {
            *next_oc_id += 1;
            db.insert_row(
                ROC_TABLE,
                vec![
                    Value::Int(*next_oc_id),
                    Value::Int(p.id as i64),
                    Value::str(&oc.attr),
                    Value::str(op),
                    Value::str(val),
                ],
            )?;
        }
    }
    Ok(())
}

/// Decode the `(attr, op, val)` condition rows of one policy back into
/// object conditions, merging range halves on the same attribute.
pub fn decode_conditions(rows: &[(String, String, String)]) -> DbResult<Vec<ObjectCondition>> {
    let mut out: Vec<ObjectCondition> = Vec::new();
    // (attr → index of a pending half-range in `out`).
    let mut pending_range: HashMap<String, usize> = HashMap::new();
    for (attr, op, val) in rows {
        let pred = match op.as_str() {
            "=" if val.trim_start().starts_with('(') => {
                let sql = val.trim();
                let q = minidb::sql::parse(&sql[1..sql.len() - 1])?;
                CondPredicate::Derived(Box::new(q))
            }
            "=" => CondPredicate::Eq(text_to_value(val)?),
            "!=" => CondPredicate::Ne(text_to_value(val)?),
            "IN" | "NOT IN" => {
                let vals: DbResult<Vec<Value>> =
                    val.split(", ").map(text_to_value).collect();
                if op == "IN" {
                    CondPredicate::In(vals?)
                } else {
                    CondPredicate::NotIn(vals?)
                }
            }
            ">=" | ">" => {
                let bound = if op == ">=" {
                    RangeBound::Inclusive(text_to_value(val)?)
                } else {
                    RangeBound::Exclusive(text_to_value(val)?)
                };
                if let Some(&i) = pending_range.get(attr) {
                    if let CondPredicate::Range { low, .. } = &mut out[i].pred {
                        *low = bound;
                        continue;
                    }
                }
                pending_range.insert(attr.clone(), out.len());
                CondPredicate::Range {
                    low: bound,
                    high: RangeBound::Unbounded,
                }
            }
            "<=" | "<" => {
                let bound = if op == "<=" {
                    RangeBound::Inclusive(text_to_value(val)?)
                } else {
                    RangeBound::Exclusive(text_to_value(val)?)
                };
                if let Some(&i) = pending_range.get(attr) {
                    if let CondPredicate::Range { high, .. } = &mut out[i].pred {
                        *high = bound;
                        continue;
                    }
                }
                pending_range.insert(attr.clone(), out.len());
                CondPredicate::Range {
                    low: RangeBound::Unbounded,
                    high: bound,
                }
            }
            other => {
                return Err(DbError::Parse(format!("unknown condition op {other}")))
            }
        };
        out.push(ObjectCondition::new(attr.clone(), pred));
    }
    Ok(out)
}

/// Load all policies back from `rP`/`rOC` (round-trip of
/// [`persist_policy`]). The owner condition row is recognized and folded
/// back into the policy's `owner` field.
pub fn load_policies(db: &dyn SqlBackend) -> SieveResult<Vec<Policy>> {
    let rp = db.table_entry(RP_TABLE)?;
    let roc = db.table_entry(ROC_TABLE)?;
    // Group condition rows by policy id.
    let mut conds: HashMap<i64, Vec<(String, String, String)>> = HashMap::new();
    for row in roc.table.rows() {
        let pid = row[1].as_int().unwrap_or(0);
        conds.entry(pid).or_default().push((
            row[2].as_str().unwrap_or("").to_string(),
            row[3].as_str().unwrap_or("").to_string(),
            row[4].as_str().unwrap_or("").to_string(),
        ));
    }
    let mut out = Vec::new();
    for row in rp.table.rows() {
        let id = row[0].as_int().unwrap_or(0);
        let owner: UserId = row[1].as_int().unwrap_or(0);
        let querier = match row[2].as_str().unwrap_or("user") {
            "group" => QuerierSpec::Group(row[3].as_int().unwrap_or(0)),
            _ => QuerierSpec::User(row[3].as_int().unwrap_or(0)),
        };
        let relation = row[4].as_str().unwrap_or("").to_string();
        let purpose = row[5].as_str().unwrap_or("").to_string();
        let raw = conds.get(&id).cloned().unwrap_or_default();
        // Split out querier-context rows before decoding object conditions.
        let (ctx_rows, oc_rows): (Vec<_>, Vec<_>) = raw
            .into_iter()
            .partition(|(attr, _, _)| attr.starts_with(QM_ATTR_PREFIX));
        let decoded = decode_conditions(&oc_rows)?;
        // Strip the implied owner condition.
        let conditions: Vec<ObjectCondition> = decoded
            .into_iter()
            .filter(|oc| {
                !(oc.attr == crate::policy::OWNER_ATTR
                    && oc.pred == CondPredicate::Eq(Value::Int(owner)))
            })
            .collect();
        let mut p = Policy::new(owner, relation, querier, purpose, conditions);
        for (attr, _, val) in ctx_rows {
            p.querier_context.push((
                attr[QM_ATTR_PREFIX.len()..].to_string(),
                text_to_value(&val)?,
            ));
        }
        p.id = id as PolicyId;
        p.inserted_at = row[7].as_int().unwrap_or(0) as u64;
        out.push(p);
    }
    out.sort_by_key(|p| p.id);
    Ok(out)
}

/// Persist a guarded expression (new version) into `rGE`/`rGG`/`rGP`.
/// Returns the new guarded-expression version id.
pub fn persist_guarded_expression(
    db: &mut dyn SqlBackend,
    ge: &crate::guard::GuardedExpression,
    outdated: bool,
    ids: &mut GuardTableIds,
) -> SieveResult<i64> {
    ids.next_ge += 1;
    let ge_id = ids.next_ge;
    ids.clock += 1;
    db.insert_row(
        RGE_TABLE,
        vec![
            Value::Int(ge_id),
            Value::Int(ge.querier),
            Value::str(&ge.relation),
            Value::str(&ge.purpose),
            Value::Bool(outdated),
            Value::Int(ids.clock),
        ],
    )?;
    for g in &ge.guards {
        ids.next_guard += 1;
        let gid = ids.next_guard;
        for (op, val) in encode_condition(&g.condition) {
            db.insert_row(
                RGG_TABLE,
                vec![
                    Value::Int(gid),
                    Value::Int(ge_id),
                    Value::str(&g.condition.attr),
                    Value::str(op),
                    Value::str(val),
                ],
            )?;
        }
        for pid in &g.policies {
            db.insert_row(
                RGP_TABLE,
                vec![Value::Int(gid), Value::Int(*pid as i64)],
            )?;
        }
    }
    Ok(ge_id)
}

/// Monotonic id counters for the guard tables.
#[derive(Debug, Default, Clone, Copy)]
pub struct GuardTableIds {
    /// Last `rGE` id issued.
    pub next_ge: i64,
    /// Last `rGG` guard id issued.
    pub next_guard: i64,
    /// Logical clock for `ts_inserted_at`.
    pub clock: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{Database, DbProfile};

    fn sample_policies() -> Vec<Policy> {
        vec![
            Policy::new(
                120,
                "wifi_dataset",
                QuerierSpec::User(500),
                "Attendance",
                vec![
                    ObjectCondition::new(
                        "ts_time",
                        CondPredicate::between(Value::Time(9 * 3600), Value::Time(10 * 3600)),
                    ),
                    ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1200))),
                ],
            ),
            Policy::new(
                145,
                "wifi_dataset",
                QuerierSpec::Group(7),
                "Any",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::In(vec![Value::Int(2300), Value::Int(2301)]),
                )],
            ),
            Policy::new(
                146,
                "wifi_dataset",
                QuerierSpec::User(501),
                "Analytics",
                vec![ObjectCondition::new(
                    "ts_time",
                    CondPredicate::ge(Value::Time(8 * 3600)),
                )],
            ),
        ]
    }

    #[test]
    fn store_assigns_ids_and_clock() {
        let mut store = PolicyStore::new();
        let ids: Vec<PolicyId> = sample_policies().into_iter().map(|p| store.add(p)).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(store.len(), 3);
        assert!(store.get(2).unwrap().inserted_at < store.get(3).unwrap().inserted_at);
    }

    #[test]
    fn value_text_roundtrip() {
        for v in [
            Value::Int(-42),
            Value::Double(2.5),
            Value::str("O'Brien"),
            Value::Time(9 * 3600),
            Value::Date(18_000),
            Value::Bool(true),
            Value::Null,
        ] {
            let text = value_to_text(&v);
            let back = text_to_value(&text).unwrap();
            assert_eq!(v, back, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn policy_persistence_roundtrip() {
        let mut db = Database::new(DbProfile::MySqlLike);
        create_policy_tables(&mut db).unwrap();
        let mut store = PolicyStore::new();
        let mut oc_id = 0i64;
        let originals: Vec<Policy> = sample_policies()
            .into_iter()
            .map(|p| {
                let id = store.add(p);
                let stored = store.get(id).unwrap().clone();
                persist_policy(&mut db, &stored, &mut oc_id).unwrap();
                stored
            })
            .collect();
        let loaded = load_policies(&db).unwrap();
        assert_eq!(loaded.len(), originals.len());
        for (a, b) in loaded.iter().zip(originals.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn derived_condition_roundtrip() {
        let mut db = Database::new(DbProfile::MySqlLike);
        create_policy_tables(&mut db).unwrap();
        // The Section 3.1 nested policy: AP derived from Prof. Smith's.
        let sub = minidb::sql::parse(
            "SELECT w2.wifi_ap FROM wifi_dataset AS w2 WHERE w2.owner = 500 LIMIT 1",
        )
        .unwrap();
        let p = Policy::new(
            120,
            "wifi_dataset",
            QuerierSpec::User(500),
            "Any",
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Derived(Box::new(sub)),
            )],
        );
        let mut store = PolicyStore::new();
        let id = store.add(p);
        let stored = store.get(id).unwrap().clone();
        let mut oc_id = 0;
        persist_policy(&mut db, &stored, &mut oc_id).unwrap();
        let loaded = load_policies(&db).unwrap();
        assert_eq!(loaded[0], stored);
    }

    #[test]
    fn guarded_expression_persists() {
        use crate::guard::{Guard, GuardedExpression};
        let mut db = Database::new(DbProfile::MySqlLike);
        create_policy_tables(&mut db).unwrap();
        let ge = GuardedExpression {
            relation: "wifi_dataset".into(),
            querier: 500,
            purpose: "Any".into(),
            guards: vec![Guard {
                condition: ObjectCondition::new("owner", CondPredicate::Eq(Value::Int(1))),
                policies: vec![1, 2],
                est_rows: 10.0,
            }],
        };
        let mut ids = GuardTableIds::default();
        let v1 = persist_guarded_expression(&mut db, &ge, false, &mut ids).unwrap();
        let v2 = persist_guarded_expression(&mut db, &ge, true, &mut ids).unwrap();
        assert!(v2 > v1);
        assert_eq!(db.table(RGE_TABLE).unwrap().table.len(), 2);
        assert_eq!(db.table(RGP_TABLE).unwrap().table.len(), 4);
    }

    #[test]
    fn querier_context_roundtrip() {
        let mut db = Database::new(DbProfile::MySqlLike);
        create_policy_tables(&mut db).unwrap();
        let p = Policy::new(
            9,
            "wifi_dataset",
            QuerierSpec::User(500),
            "Safety",
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Eq(Value::Int(1200)),
            )],
        )
        .with_context("network", Value::str("campus"))
        .with_context("mfa", Value::Bool(true));
        let mut store = PolicyStore::new();
        let id = store.add(p);
        let stored = store.get(id).unwrap().clone();
        let mut oc_id = 0;
        persist_policy(&mut db, &stored, &mut oc_id).unwrap();
        let loaded = load_policies(&db).unwrap();
        assert_eq!(loaded[0], stored);
        assert_eq!(loaded[0].querier_context.len(), 2);
    }

    #[test]
    fn half_open_ranges_decode() {
        let rows = vec![(
            "ts_time".to_string(),
            ">=".to_string(),
            "TIME '08:00:00'".to_string(),
        )];
        let conds = decode_conditions(&rows).unwrap();
        assert_eq!(conds.len(), 1);
        assert_eq!(
            conds[0].pred,
            CondPredicate::ge(Value::Time(8 * 3600))
        );
    }
}
