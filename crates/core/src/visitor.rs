//! Shared expression/query traversal helpers.
//!
//! The rewriter (protected-reference collection, predicate pushdown) and
//! the static analyzer ([`crate::analyze`]) both walk the same `Expr` and
//! `SelectQuery` shapes. The structural recursion lives in
//! [`minidb::expr::Expr::visit`] / [`minidb::expr::Expr::map`]; this
//! module builds the middleware-specific walkers on top so each exists
//! exactly once.

use minidb::expr::{ColumnRef, Expr};
use minidb::plan::{SelectQuery, TableSource};
use std::collections::{BTreeSet, HashSet};

/// Visit every scalar subquery in an expression (not descending into the
/// subqueries' own predicates, which resolve in their own scope).
pub fn visit_subqueries(e: &Expr, f: &mut dyn FnMut(&SelectQuery)) {
    e.visit(&mut |node| {
        if let Expr::ScalarSubquery(q) = node {
            f(q);
        }
    });
}

/// True iff the expression contains a scalar subquery anywhere. Such
/// predicates are never pushed into a guard WITH body: their correlated
/// references resolve against the outer query's FROM layout, which the
/// body does not reproduce.
pub fn contains_subquery(e: &Expr) -> bool {
    let mut found = false;
    visit_subqueries(e, &mut |_| found = true);
    found
}

/// Replace `alias.col` references with bare `col` references so an outer
/// predicate can move inside a single-relation WITH body. Scalar
/// subqueries are left untouched (their references resolve in their own
/// scope — and [`contains_subquery`] predicates are never pushed anyway).
pub fn strip_alias(e: &Expr, alias: &str) -> Expr {
    e.map(&mut |node| match node {
        Expr::Column(c) if c.table.as_deref() == Some(alias) => {
            Some(Expr::Column(ColumnRef::bare(c.column.clone())))
        }
        _ => None,
    })
}

/// Walk every base-table read of a protected relation in the query tree,
/// resolving names against the WITH scope first (a CTE shadowing a
/// protected name is a reference to the CTE, not to the base table).
/// `top` is true only for references in the outermost FROM.
pub fn walk_protected_refs(
    query: &SelectQuery,
    protected: &HashSet<String>,
    scope: &HashSet<String>,
    top: bool,
    f: &mut dyn FnMut(&str, bool),
) {
    let mut scope = scope.clone();
    for wc in &query.with {
        walk_protected_refs(&wc.query, protected, &scope, false, f);
        scope.insert(wc.name.clone());
    }
    for tref in &query.from {
        match &tref.source {
            TableSource::Named(rel) => {
                if protected.contains(rel) && !scope.contains(rel) {
                    f(rel, top);
                }
            }
            TableSource::Derived(q) => walk_protected_refs(q, protected, &scope, false, f),
        }
    }
    if let Some(p) = &query.predicate {
        visit_subqueries(p, &mut |q| {
            walk_protected_refs(q, protected, &scope, false, f)
        });
    }
}

/// All protected relations the query reads at **any** nesting depth
/// (derived tables, WITH bodies, scalar subqueries), after resolving names
/// against the WITH scope. This is the enforcement surface the middleware
/// must compile guards for.
pub fn collect_protected(query: &SelectQuery, protected: &HashSet<String>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    walk_protected_refs(query, protected, &HashSet::new(), true, &mut |rel, _| {
        out.insert(rel.to_string());
    });
    out
}

/// Split the query's protected-relation reads into those named directly in
/// the top-level FROM and those reached through nesting. The sets overlap
/// when a relation is read both ways — and the nested read is still
/// unmediated by a top-level-only rewrite, so callers gating on `nested`
/// must refuse whenever it is non-empty, overlap included.
pub fn classify_protected_refs(
    query: &SelectQuery,
    protected: &HashSet<String>,
) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut top = BTreeSet::new();
    let mut nested = BTreeSet::new();
    walk_protected_refs(query, protected, &HashSet::new(), true, &mut |rel, is_top| {
        if is_top {
            top.insert(rel.to_string());
        } else {
            nested.insert(rel.to_string());
        }
    });
    (top, nested)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::expr::CmpOp;
    use minidb::Value;

    #[test]
    fn strip_alias_rewrites_only_matching_qualifier() {
        let e = Expr::and(
            Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::Column(ColumnRef::qualified("w", "owner"))),
                rhs: Box::new(Expr::Literal(Value::Int(3))),
            },
            Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::Column(ColumnRef::qualified("other", "owner"))),
                rhs: Box::new(Expr::Literal(Value::Int(4))),
            },
        );
        let stripped = strip_alias(&e, "w");
        let mut bare = 0;
        let mut qualified = 0;
        stripped.visit_columns(&mut |c| {
            if c.table.is_none() {
                bare += 1;
            } else {
                qualified += 1;
            }
        });
        assert_eq!((bare, qualified), (1, 1));
    }

    #[test]
    fn contains_subquery_sees_every_position() {
        let sub = Expr::ScalarSubquery(Box::new(SelectQuery::star_from("t")));
        let e = Expr::InList {
            expr: Box::new(Expr::Column(ColumnRef::bare("x"))),
            list: vec![sub],
            negated: false,
        };
        assert!(contains_subquery(&e));
        assert!(!contains_subquery(&Expr::Literal(Value::Bool(true))));
    }
}
