//! The database catalog and top-level façade.
//!
//! A [`Database`] owns tables, their secondary indexes and histograms, the
//! UDF registry, the optimizer profile (MySQL-like vs PostgreSQL-like), and
//! the statistics sink. SIEVE is layered strictly on top of this façade —
//! it only uses the public surface a middleware would have against a real
//! DBMS: run a query, run EXPLAIN, register a UDF, read table statistics.

use crate::error::{DbError, DbResult};
use crate::exec::{execute, ExecOptions, QueryResult};
use crate::explain::{explain_query, ExplainOutput};
use crate::histogram::{Histogram, DEFAULT_BUCKETS};
use crate::index::Index;
use crate::plan::SelectQuery;
use crate::planner::DbProfile;
use crate::schema::TableSchema;
use crate::stats::{CostWeights, ExecStats, StatsSink};
use crate::table::{Row, RowId, Table};
use crate::udf::{Udf, UdfRegistry};
use std::collections::HashMap;
use std::sync::Arc;

/// A table plus its access structures.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// Heap storage.
    pub table: Table,
    /// Secondary indexes (one per indexed column).
    pub indexes: Vec<Index>,
    /// Histograms by column name (built by [`Database::analyze`]).
    pub histograms: HashMap<String, Histogram>,
    schema: Arc<TableSchema>,
}

impl TableEntry {
    /// Shared schema handle.
    pub fn schema(&self) -> &Arc<TableSchema> {
        &self.schema
    }

    /// Index over `column`, if one exists.
    pub fn index_on(&self, column: &str) -> Option<&Index> {
        self.indexes.iter().find(|i| i.column_name == column)
    }

    /// Histogram for `column`, if analyzed.
    pub fn histogram(&self, column: &str) -> Option<&Histogram> {
        self.histograms.get(column)
    }

    /// True iff `column` has an index — the guard property the paper
    /// requires (`oc.attr ∈ I`, Section 3.2).
    pub fn has_index(&self, column: &str) -> bool {
        self.index_on(column).is_some()
    }
}

/// An embedded database instance.
pub struct Database {
    tables: HashMap<String, TableEntry>,
    udfs: UdfRegistry,
    weights: CostWeights,
    profile: DbProfile,
    stats: StatsSink,
}

impl Database {
    /// Create an empty database with the given optimizer profile.
    pub fn new(profile: DbProfile) -> Self {
        Database {
            tables: HashMap::new(),
            udfs: UdfRegistry::new(),
            weights: CostWeights::default(),
            profile,
            stats: StatsSink::new(),
        }
    }

    /// Optimizer profile in effect.
    pub fn profile(&self) -> DbProfile {
        self.profile
    }

    /// Switch optimizer profile (used by the Experiment 4 harness to run
    /// the same loaded data under both profiles).
    pub fn set_profile(&mut self, profile: DbProfile) {
        self.profile = profile;
    }

    /// Cost weights of the simulated clock.
    pub fn weights(&self) -> &CostWeights {
        &self.weights
    }

    /// Override cost weights.
    pub fn set_weights(&mut self, weights: CostWeights) {
        self.weights = weights;
    }

    /// The shared statistics sink.
    pub fn stats(&self) -> &StatsSink {
        &self.stats
    }

    /// Create an empty table. Errors if the name is taken.
    pub fn create_table(&mut self, schema: TableSchema) -> DbResult<()> {
        let name = schema.name.clone();
        if self.tables.contains_key(&name) {
            return Err(DbError::Unsupported(format!("table {name} already exists")));
        }
        let schema = Arc::new(schema);
        self.tables.insert(
            name,
            TableEntry {
                table: Table::new((*schema).clone()),
                indexes: Vec::new(),
                histograms: HashMap::new(),
                schema,
            },
        );
        Ok(())
    }

    /// Insert one row, maintaining indexes.
    pub fn insert(&mut self, table: &str, row: Row) -> DbResult<RowId> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let id = entry.table.insert(row);
        let row_ref = entry.table.row(id).clone();
        for idx in &mut entry.indexes {
            idx.insert(id, &row_ref);
        }
        Ok(id)
    }

    /// Bulk insert rows, maintaining indexes.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> DbResult<()> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// Create a secondary index over `column`. No-op if one already exists.
    pub fn create_index(&mut self, table: &str, column: &str) -> DbResult<()> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        if entry.index_on(column).is_some() {
            return Ok(());
        }
        let col = entry
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::UnknownColumn(format!("{table}.{column}")))?;
        let rows = entry
            .table
            .rows()
            .iter()
            .enumerate()
            .map(|(i, r)| (i as RowId, r));
        let idx = Index::build(format!("idx_{table}_{column}"), col, column, rows);
        entry.indexes.push(idx);
        // Indexing a populated table refreshes the column's histogram in
        // the same step, so the planner's cost gate sees fresh statistics
        // immediately (CREATE INDEX on real engines analyzes as it builds).
        // An empty table keeps no histogram: a zero-row histogram would
        // pin estimates at 0 after later inserts, whereas the no-histogram
        // fallback reads exact index counts.
        if !entry.table.is_empty() {
            let h = Histogram::build(
                entry.table.rows().iter().map(|r| r[col].clone()),
                DEFAULT_BUCKETS,
            );
            entry.histograms.insert(column.to_string(), h);
        }
        Ok(())
    }

    /// Build histograms for every indexed column of `table` (ANALYZE).
    pub fn analyze(&mut self, table: &str) -> DbResult<()> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let cols: Vec<(String, usize)> = entry
            .indexes
            .iter()
            .map(|i| (i.column_name.clone(), i.column))
            .collect();
        for (name, col) in cols {
            let h = Histogram::build(
                entry.table.rows().iter().map(|r| r[col].clone()),
                DEFAULT_BUCKETS,
            );
            entry.histograms.insert(name, h);
        }
        Ok(())
    }

    /// Table entry by name.
    pub fn table(&self, name: &str) -> DbResult<&TableEntry> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// True iff a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables (sorted; for diagnostics).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Register a UDF.
    pub fn register_udf(&mut self, name: impl Into<String>, f: Arc<dyn Udf>) {
        self.udfs.register(name, f);
    }

    /// The UDF registry.
    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Execute a query with default options.
    pub fn run_query(&self, query: &SelectQuery) -> DbResult<QueryResult> {
        execute(self, query, &ExecOptions::default())
    }

    /// Execute a query with options (e.g. a timeout).
    pub fn run_query_opts(
        &self,
        query: &SelectQuery,
        opts: &ExecOptions,
    ) -> DbResult<QueryResult> {
        execute(self, query, opts)
    }

    /// Execute and return `(result, stats)` using the simulated+wall clocks.
    pub fn run_timed(
        &self,
        query: &SelectQuery,
        opts: &ExecOptions,
    ) -> (DbResult<QueryResult>, ExecStats) {
        let (res, stats) = crate::stats::timed(&self.stats, &self.weights, || {
            execute(self, query, opts)
        });
        (res, stats)
    }

    /// EXPLAIN: the access-path decisions the planner would make, with
    /// estimated cardinalities (paper Section 5.5 uses this to cost
    /// strategies).
    pub fn explain(&self, query: &SelectQuery) -> DbResult<ExplainOutput> {
        explain_query(self, query)
    }

    /// EXPLAIN under specific execution options: with a thread knob set,
    /// large scans report as `ParallelScan(morsels=…)` and the
    /// PostgreSQL-like bitmap gate tightens accordingly.
    pub fn explain_opts(&self, query: &SelectQuery, opts: &ExecOptions) -> DbResult<ExplainOutput> {
        crate::explain::explain_query_opts(self, query, opts)
    }

    /// Parse and run a SQL string.
    pub fn run_sql(&self, sql: &str) -> DbResult<QueryResult> {
        let query = crate::sql::parse(sql)?;
        self.run_query(&query)
    }
}

impl Clone for Database {
    /// Deep-copies tables, indexes and histograms; registered UDFs are
    /// shared (`Arc`), and the clone gets a **fresh** statistics sink so
    /// measurements never bleed between instances. Used by the experiment
    /// harness to run one loaded dataset under several configurations.
    fn clone(&self) -> Self {
        Database {
            tables: self.tables.clone(),
            udfs: self.udfs.clone(),
            weights: self.weights,
            profile: self.profile,
            stats: StatsSink::new(),
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.table_names())
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn db_with_table() -> Database {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "t",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        for i in 0..50i64 {
            db.insert("t", vec![Value::Int(i), Value::Int(i % 5)]).unwrap();
        }
        db
    }

    #[test]
    fn create_insert_index_analyze() {
        let mut db = db_with_table();
        db.create_index("t", "owner").unwrap();
        db.analyze("t").unwrap();
        let entry = db.table("t").unwrap();
        assert!(entry.has_index("owner"));
        assert!(!entry.has_index("id"));
        let h = entry.histogram("owner").unwrap();
        assert_eq!(h.total(), 50);
        assert_eq!(h.distinct(), 5);
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut db = db_with_table();
        db.create_index("t", "owner").unwrap();
        db.insert("t", vec![Value::Int(100), Value::Int(99)]).unwrap();
        let entry = db.table("t").unwrap();
        let stats = StatsSink::new();
        let hits = entry.index_on("owner").unwrap().lookup(&Value::Int(99), &stats);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_table();
        let err = db.create_table(TableSchema::of("t", &[("x", DataType::Int)]));
        assert!(err.is_err());
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new(DbProfile::PostgresLike);
        assert!(matches!(db.table("nope"), Err(DbError::UnknownTable(_))));
    }

    #[test]
    fn create_index_idempotent() {
        let mut db = db_with_table();
        db.create_index("t", "owner").unwrap();
        db.create_index("t", "owner").unwrap();
        assert_eq!(db.table("t").unwrap().indexes.len(), 1);
    }

    #[test]
    fn create_index_on_populated_table_refreshes_histogram() {
        use crate::expr::{ColumnRef, Expr};
        let mut db = db_with_table();
        // Index built after the inserts, with NO explicit ANALYZE: the
        // planner's cost gate must still see fresh statistics.
        db.create_index("t", "owner").unwrap();
        let entry = db.table("t").unwrap();
        let h = entry.histogram("owner").expect("histogram built with index");
        assert_eq!(h.total(), 50);
        assert_eq!(h.distinct(), 5);
        // And the gate acts on them: owner = 3 is 10/50 = 20% ≤ 25%, so
        // the unhinted MySQL-like planner picks the index immediately.
        let q = SelectQuery::star_from("t")
            .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(3)));
        let e = db.explain(&q).unwrap();
        assert!(
            e.relations[0].access_desc.starts_with("IndexScan"),
            "got {}",
            e.relations[0].access_desc
        );
        assert!((e.relations[0].est_rows - 10.0).abs() < 1.0);
    }

    #[test]
    fn create_index_on_empty_table_defers_statistics() {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "e",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        db.create_index("e", "owner").unwrap();
        // No zero-row histogram pinned: estimates fall back to exact
        // index counts, which track subsequent inserts.
        assert!(db.table("e").unwrap().histogram("owner").is_none());
        for i in 0..50i64 {
            db.insert("e", vec![Value::Int(i), Value::Int(i % 5)]).unwrap();
        }
        use crate::expr::{ColumnRef, Expr};
        let q = SelectQuery::star_from("e")
            .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(1)));
        let e = db.explain(&q).unwrap();
        assert!((e.relations[0].est_rows - 10.0).abs() < f64::EPSILON);
    }
}
