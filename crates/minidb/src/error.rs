//! Engine error type.

use std::fmt;

/// Errors surfaced by the engine. The SIEVE middleware treats most of these
/// as programming errors in generated rewrites, so they carry enough context
/// to debug a bad rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not resolve against the FROM layout.
    UnknownColumn(String),
    /// Ambiguous unqualified column (resolves in several FROM entries).
    AmbiguousColumn(String),
    /// Referenced index does not exist (e.g. a FORCE INDEX hint on an
    /// unindexed column).
    UnknownIndex {
        /// Table the hint referenced.
        table: String,
        /// Column without an index.
        column: String,
    },
    /// Referenced UDF is not registered.
    UnknownUdf(String),
    /// A value had the wrong type for the operation.
    TypeError(String),
    /// SQL text failed to parse.
    Parse(String),
    /// Query shape not supported by the engine.
    Unsupported(String),
    /// Execution exceeded the configured timeout.
    Timeout,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            DbError::UnknownIndex { table, column } => {
                write!(f, "no index on {table}.{column}")
            }
            DbError::UnknownUdf(u) => write!(f, "unknown UDF: {u}"),
            DbError::TypeError(m) => write!(f, "type error: {m}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DbError::Timeout => write!(f, "query timed out"),
        }
    }
}

impl std::error::Error for DbError {}

/// Engine result alias.
pub type DbResult<T> = Result<T, DbError>;
