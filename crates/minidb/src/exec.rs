//! Query execution.
//!
//! Materializing executor over the access plans chosen by
//! [`crate::planner`]. Executes `WITH` clauses first (into temp tables, as
//! PostgreSQL materializes CTEs), then the body: per-table access, left-deep
//! joins (index nested-loop when the inner side has a usable index, hash
//! join otherwise), residual filters, GROUP BY/aggregates, projection, and
//! LIMIT. All data movement is charged to the database's [`StatsSink`].

use crate::catalog::{Database, TableEntry};
use crate::error::{DbError, DbResult};
use crate::expr::{bind, ColumnRef, EvalContext, Expr, FilterProgram, Layout, QueryRunner};
use crate::plan::{AggFunc, IndexHint, SelectItem, SelectQuery, TableRef, TableSource};
use crate::planner::{
    classify_predicate, plan_access_opts, AccessPlan, JoinCond, ScanOptions, MORSEL_ROWS,
    PARALLEL_MIN_ROWS,
};
use crate::schema::{Column, TableSchema};
use crate::stats::StatsSink;
use crate::table::{Row, RowId, ROWS_PER_PAGE};
use crate::value::{DataType, Value};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution options.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Abort with [`DbError::Timeout`] when execution exceeds this. The
    /// paper's Experiment 3 uses a 30 s timeout.
    pub timeout: Option<Duration>,
    /// Worker threads for morsel-parallel scans; `0` or `1` (the default)
    /// keeps every scan sequential. Inputs below
    /// [`crate::planner::PARALLEL_MIN_ROWS`] stay sequential regardless.
    pub threads: usize,
}

impl ExecOptions {
    /// Options with a timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        ExecOptions {
            timeout: Some(timeout),
            ..ExecOptions::default()
        }
    }

    /// Options with a scan-parallelism level.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }
}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Position of an output column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// A materialized temporary relation (WITH result or derived table).
#[derive(Debug)]
struct TempTable {
    schema: Arc<TableSchema>,
    rows: Vec<Row>,
}

impl TempTable {
    fn from_result(name: &str, result: QueryResult) -> Self {
        let columns = result
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let dtype = result
                    .rows
                    .iter()
                    .find_map(|r| r[i].data_type())
                    .unwrap_or(DataType::Str);
                Column::new(c.clone(), dtype)
            })
            .collect();
        TempTable {
            schema: Arc::new(TableSchema::new(name, columns)),
            rows: result.rows,
        }
    }
}

/// One parallel-filter worker's output: `(morsel index, surviving rows)`
/// pairs in claim order, merged back by index for a deterministic result.
type MorselOut = Vec<(usize, Vec<Row>)>;

/// What a FROM entry resolved to.
enum Rel<'a> {
    Base(&'a TableEntry),
    Temp(Arc<TempTable>),
}

impl Rel<'_> {
    fn schema(&self) -> Arc<TableSchema> {
        match self {
            Rel::Base(e) => e.schema().clone(),
            Rel::Temp(t) => t.schema.clone(),
        }
    }

}

/// Rows evaluated per filter batch: big enough to amortize the deadline
/// check and selection-vector bookkeeping, small enough to stay cache-hot.
const FILTER_BATCH: usize = 1024;

/// Concatenate an outer and inner row into one joined output row with a
/// single exact-size allocation.
fn concat_rows(orow: &[Value], irow: &[Value]) -> Row {
    let mut combined = Vec::with_capacity(orow.len() + irow.len());
    combined.extend_from_slice(orow);
    combined.extend_from_slice(irow);
    combined
}

/// Execute a query against a database.
pub fn execute(db: &Database, query: &SelectQuery, opts: &ExecOptions) -> DbResult<QueryResult> {
    let exec = Exec {
        db,
        temps: Arc::new(HashMap::new()),
        deadline: opts.timeout.map(|t| Instant::now() + t),
        params: Arc::new(HashMap::new()),
        threads: opts.threads,
    };
    exec.run(query)
}

struct Exec<'a> {
    db: &'a Database,
    /// Materialized WITH results, shared by reference with every
    /// sub-executor (correlated subqueries spawn one per outer row).
    temps: Arc<HashMap<String, Arc<TempTable>>>,
    deadline: Option<Instant>,
    /// Correlation parameters, shared the same way.
    params: Arc<HashMap<String, Value>>,
    /// Scan-parallelism knob from [`ExecOptions::threads`].
    threads: usize,
}

impl QueryRunner for Exec<'_> {
    fn run_subquery(
        &self,
        query: &SelectQuery,
        params: HashMap<String, Value>,
    ) -> DbResult<Vec<Row>> {
        let nested = Exec {
            db: self.db,
            temps: Arc::clone(&self.temps),
            deadline: self.deadline,
            params: Arc::new(params),
            // Correlated subqueries run once per outer row; nesting scan
            // workers inside them would oversubscribe the pool.
            threads: 0,
        };
        Ok(nested.run(query)?.rows)
    }
}

impl<'a> Exec<'a> {
    fn stats(&self) -> &StatsSink {
        self.db.stats()
    }

    fn check_deadline(&self) -> DbResult<()> {
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                return Err(DbError::Timeout);
            }
        }
        Ok(())
    }

    fn param_names(&self) -> HashSet<String> {
        self.params.keys().cloned().collect()
    }

    fn eval_ctx(&'a self) -> EvalContext<'a> {
        EvalContext {
            stats: self.stats(),
            udfs: self.db.udfs(),
            runner: Some(self),
            params: &self.params,
        }
    }

    fn run(&self, query: &SelectQuery) -> DbResult<QueryResult> {
        if query.with.is_empty() {
            return self.run_body(query);
        }
        // Each WITH clause sees the ones before it; only the map itself is
        // rebuilt, the materialized tables are shared by Arc.
        let mut temps = (*self.temps).clone();
        for wc in &query.with {
            let nested = Exec {
                db: self.db,
                temps: Arc::new(temps),
                deadline: self.deadline,
                params: Arc::clone(&self.params),
                threads: self.threads,
            };
            let result = nested.run(&wc.query)?;
            temps = Arc::try_unwrap(nested.temps).unwrap_or_else(|a| (*a).clone());
            temps.insert(
                wc.name.clone(),
                Arc::new(TempTable::from_result(&wc.name, result)),
            );
        }
        let nested = Exec {
            db: self.db,
            temps: Arc::new(temps),
            deadline: self.deadline,
            params: Arc::clone(&self.params),
            threads: self.threads,
        };
        nested.run_body(query)
    }

    fn resolve(&self, tref: &TableRef) -> DbResult<Rel<'a>> {
        match &tref.source {
            TableSource::Named(name) => {
                if let Some(t) = self.temps.get(name) {
                    Ok(Rel::Temp(t.clone()))
                } else {
                    Ok(Rel::Base(self.db.table(name)?))
                }
            }
            TableSource::Derived(q) => {
                let result = self.run(q)?;
                Ok(Rel::Temp(Arc::new(TempTable::from_result(
                    &tref.alias,
                    result,
                ))))
            }
        }
    }

    fn run_body(&self, query: &SelectQuery) -> DbResult<QueryResult> {
        if query.from.is_empty() {
            return Err(DbError::Unsupported("query without FROM".into()));
        }
        // Resolve FROM entries and build the combined layout.
        let mut rels: Vec<(String, Rel<'a>, IndexHint)> = Vec::with_capacity(query.from.len());
        let mut layout = Layout::new();
        for tref in &query.from {
            let rel = self.resolve(tref)?;
            layout.push(tref.alias.clone(), rel.schema());
            rels.push((tref.alias.clone(), rel, tref.hint.clone()));
        }
        let table_schemas: Vec<(String, Arc<TableSchema>)> = layout.entries().to_vec();

        // Classify the predicate into local / join / residual parts.
        let classified = match &query.predicate {
            Some(p) => classify_predicate(p, &table_schemas),
            None => Default::default(),
        };

        // Access the first table.
        let (first_alias, first_rel, first_hint) = &rels[0];
        let first_local = classified.local_predicate(first_alias);
        let mut rows = self.access(first_alias, first_rel, first_hint, first_local.as_ref())?;

        // Left-deep joins over the remaining tables.
        let mut joined_aliases = vec![first_alias.clone()];
        for (alias, rel, hint) in rels.iter().skip(1) {
            let local = classified.local_predicate(alias);
            let conds: Vec<&JoinCond> = classified
                .joins
                .iter()
                .filter(|j| {
                    (j.left_alias == *alias && joined_aliases.contains(&j.right_alias))
                        || (j.right_alias == *alias && joined_aliases.contains(&j.left_alias))
                })
                .collect();
            rows = self.join(
                rows,
                &joined_aliases,
                &table_schemas,
                alias,
                rel,
                hint,
                local.as_ref(),
                &conds,
            )?;
            joined_aliases.push(alias.clone());
        }

        // Residual predicate (multi-table non-equi-join conjuncts).
        if !classified.residual.is_empty() {
            let residual = Expr::all(classified.residual.clone());
            let program =
                FilterProgram::new(Some(bind(&residual, &layout, None, &self.param_names())?));
            let ctx = self.eval_ctx();
            // Batch into a keep-mask, then compact in place: survivors are
            // moved, never cloned.
            let mut keep = vec![false; rows.len()];
            let mut sel: Vec<u32> = Vec::with_capacity(FILTER_BATCH);
            let mut base = 0usize;
            for chunk in rows.chunks(FILTER_BATCH) {
                self.check_deadline()?;
                sel.clear();
                program.select_into(chunk, |r| r.as_slice(), &ctx, &mut sel)?;
                for &i in &sel {
                    keep[base + i as usize] = true;
                }
                base += chunk.len();
            }
            let mut it = keep.into_iter();
            rows.retain(|_| it.next().unwrap_or(false));
        }

        // Aggregation or plain projection.
        let mut result = if query.has_aggregates() || !query.group_by.is_empty() {
            self.aggregate(query, &layout, rows)?
        } else {
            self.project(query, &layout, rows)?
        };

        if let Some(limit) = query.limit {
            result.rows.truncate(limit);
        }
        self.stats().outputs(result.rows.len() as u64);
        Ok(result)
    }

    /// Access one relation, applying `predicate` (its local conjuncts).
    fn access(
        &self,
        alias: &str,
        rel: &Rel<'a>,
        hint: &IndexHint,
        predicate: Option<&Expr>,
    ) -> DbResult<Vec<Row>> {
        let layout = Layout::single(alias, rel.schema());
        let bound = match predicate {
            Some(p) => Some(bind(p, &layout, None, &self.param_names())?),
            None => None,
        };
        let program = FilterProgram::new(bound);
        // Constant-false predicates (e.g. a guarded expression with no
        // guards — default deny) read nothing.
        if program.drops_all() {
            return Ok(Vec::new());
        }
        let ctx = self.eval_ctx();
        match rel {
            Rel::Temp(t) => {
                // Temp tables have no indexes: sequential scan.
                self.stats()
                    .seq_pages((t.rows.len().div_ceil(ROWS_PER_PAGE)) as u64);
                self.stats().tuples(t.rows.len() as u64);
                let mut out = Vec::new();
                self.filter_batched(&t.rows, &program, &ctx, &mut out)?;
                Ok(out)
            }
            Rel::Base(entry) => {
                let plan = plan_access_opts(
                    entry,
                    alias,
                    predicate,
                    hint,
                    self.db.profile(),
                    ScanOptions {
                        threads: self.threads,
                    },
                );
                self.scan_base(entry, &plan, &program, &ctx)
            }
        }
    }

    /// Drive owned rows through a filter program in batches, cloning only
    /// survivors into `out`. Large inputs go morsel-parallel when the
    /// thread knob allows (temp tables have no access plan, so the
    /// decision is made here with the same thresholds the planner uses).
    fn filter_batched(
        &self,
        rows: &[Row],
        program: &FilterProgram,
        ctx: &EvalContext<'_>,
        out: &mut Vec<Row>,
    ) -> DbResult<()> {
        if self.threads >= 2 && rows.len() >= PARALLEL_MIN_ROWS {
            return self.filter_parallel(rows, program, out);
        }
        let mut sel: Vec<u32> = Vec::with_capacity(FILTER_BATCH);
        for chunk in rows.chunks(FILTER_BATCH) {
            self.check_deadline()?;
            sel.clear();
            program.select_into(chunk, |r| r.as_slice(), ctx, &mut sel)?;
            out.extend(sel.iter().map(|&i| chunk[i as usize].clone()));
        }
        Ok(())
    }

    /// Morsel-parallel filter: workers claim [`MORSEL_ROWS`]-sized chunks
    /// off a shared counter, filter them locally, and the survivors are
    /// concatenated in morsel order — row-identical to the sequential
    /// path. The [`StatsSink`] is relaxed-atomic, so workers charge
    /// predicate evaluations concurrently without coordination.
    fn filter_parallel(
        &self,
        rows: &[Row],
        program: &FilterProgram,
        out: &mut Vec<Row>,
    ) -> DbResult<()> {
        let morsels: Vec<&[Row]> = rows.chunks(MORSEL_ROWS).collect();
        let workers = self.threads.min(morsels.len());
        let next = AtomicUsize::new(0);
        let mut results: Vec<DbResult<MorselOut>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| -> DbResult<MorselOut> {
                        // Each worker builds its own context: `EvalContext`
                        // borrows are cheap, and nested subqueries run
                        // sequentially inside the owning worker.
                        let ctx = self.eval_ctx();
                        let mut sel: Vec<u32> = Vec::with_capacity(FILTER_BATCH);
                        let mut local: MorselOut = Vec::new();
                        loop {
                            let m = next.fetch_add(1, Ordering::Relaxed);
                            let Some(chunk) = morsels.get(m) else {
                                break;
                            };
                            self.check_deadline()?;
                            let mut kept: Vec<Row> = Vec::new();
                            for sub in chunk.chunks(FILTER_BATCH) {
                                sel.clear();
                                program.select_into(sub, |r| r.as_slice(), &ctx, &mut sel)?;
                                kept.extend(sel.iter().map(|&i| sub[i as usize].clone()));
                            }
                            local.push((m, kept));
                        }
                        Ok(local)
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
            }
        });
        let mut per_morsel: Vec<Vec<Row>> = (0..morsels.len()).map(|_| Vec::new()).collect();
        for r in results {
            for (m, kept) in r? {
                per_morsel[m] = kept;
            }
        }
        for kept in &mut per_morsel {
            out.append(kept);
        }
        Ok(())
    }

    fn scan_base(
        &self,
        entry: &TableEntry,
        plan: &AccessPlan,
        program: &FilterProgram,
        ctx: &EvalContext<'_>,
    ) -> DbResult<Vec<Row>> {
        // Filter a batch of fetched `(RowId, &Row)` pairs, cloning only
        // selected rows.
        let mut sel: Vec<u32> = Vec::with_capacity(FILTER_BATCH);
        match plan {
            AccessPlan::SeqScan | AccessPlan::ParallelScan { .. } => {
                // Same accounting as `Table::scan` (every page once,
                // sequentially, one tuple read per row), but filtering
                // directly over the contiguous row slice in batches.
                // `filter_batched` splits into parallel morsels exactly
                // when the plan says ParallelScan (same thresholds).
                let stats = self.stats();
                stats.seq_pages(entry.table.page_count());
                stats.tuples(entry.table.len() as u64);
                let mut out = Vec::new();
                self.filter_batched(entry.table.rows(), program, ctx, &mut out)?;
                Ok(out)
            }
            AccessPlan::IndexOr {
                probes,
                bitmap,
                residual,
            } => {
                let stats = self.stats();
                if *bitmap {
                    // PostgreSQL-style: OR the row-id bitmaps, fetch once.
                    let mut ids: Vec<RowId> = Vec::new();
                    for p in probes {
                        ids.extend(p.run(entry, stats));
                    }
                    ids.sort_unstable();
                    ids.dedup();
                    self.check_deadline()?;
                    let fetched = entry.table.fetch(&ids, stats);
                    if !residual {
                        // Exact probe union: every fetched row satisfies
                        // the predicate; skip re-evaluating it.
                        return Ok(fetched.into_iter().map(|(_, r)| r.clone()).collect());
                    }
                    let mut out = Vec::new();
                    for batch in fetched.chunks(FILTER_BATCH) {
                        self.check_deadline()?;
                        sel.clear();
                        program.select_into(batch, |(_, r)| r.as_slice(), ctx, &mut sel)?;
                        out.extend(sel.iter().map(|&i| batch[i as usize].1.clone()));
                    }
                    Ok(out)
                } else {
                    // MySQL-style UNION: each branch fetches independently
                    // (duplicated pages are re-read), dedup afterwards.
                    let mut seen: HashSet<RowId> = HashSet::new();
                    let mut out = Vec::new();
                    let mut batch: Vec<(RowId, &Row)> = Vec::with_capacity(FILTER_BATCH);
                    for p in probes {
                        self.check_deadline()?;
                        let ids = p.run(entry, stats);
                        let fetched = entry.table.fetch(&ids, stats);
                        if !residual {
                            // Exact union: keep every not-yet-seen row.
                            for (id, row) in fetched {
                                if seen.insert(id) {
                                    out.push(row.clone());
                                }
                            }
                            continue;
                        }
                        let mut fetched = fetched.into_iter();
                        loop {
                            batch.clear();
                            batch.extend(
                                fetched
                                    .by_ref()
                                    .filter(|(id, _)| !seen.contains(id))
                                    .take(FILTER_BATCH),
                            );
                            if batch.is_empty() {
                                break;
                            }
                            sel.clear();
                            program.select_into(&batch, |(_, r)| r.as_slice(), ctx, &mut sel)?;
                            for &i in &sel {
                                let (id, row) = batch[i as usize];
                                seen.insert(id);
                                out.push(row.clone());
                            }
                        }
                    }
                    Ok(out)
                }
            }
        }
    }

    /// Join accumulated rows with one more relation.
    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        outer_rows: Vec<Row>,
        joined_aliases: &[String],
        table_schemas: &[(String, Arc<TableSchema>)],
        alias: &str,
        rel: &Rel<'a>,
        hint: &IndexHint,
        local: Option<&Expr>,
        conds: &[&JoinCond],
    ) -> DbResult<Vec<Row>> {
        // Layout of the accumulated (outer) side.
        let mut outer_layout = Layout::new();
        for a in joined_aliases {
            let schema = table_schemas
                .iter()
                .find(|(n, _)| n == a)
                .map(|(_, s)| s.clone())
                .expect("joined alias must be in layout");
            outer_layout.push(a.clone(), schema);
        }

        // Normalize conditions to (outer column slot, inner column name).
        let mut keys: Vec<(usize, String)> = Vec::new();
        for c in conds {
            let (outer_col, inner_col) = if c.left_alias == alias {
                (
                    ColumnRef::qualified(c.right_alias.clone(), c.right_column.clone()),
                    c.left_column.clone(),
                )
            } else {
                (
                    ColumnRef::qualified(c.left_alias.clone(), c.left_column.clone()),
                    c.right_column.clone(),
                )
            };
            keys.push((outer_layout.resolve(&outer_col)?, inner_col));
        }

        let inner_schema = rel.schema();
        let inner_layout = Layout::single(alias, inner_schema.clone());
        let local_program = FilterProgram::new(match local {
            Some(p) => Some(bind(p, &inner_layout, None, &self.param_names())?),
            None => None,
        });
        let ctx = self.eval_ctx();

        // Index nested-loop when the inner side is a base table with an
        // index on the first join column and the outer side is small-ish.
        if let (Rel::Base(entry), Some((outer_slot, inner_col))) = (rel, keys.first()) {
            if let Some(idx) = entry.index_on(inner_col) {
                let extra_keys = &keys[1..];
                let stats = self.stats();
                let mut out = Vec::new();
                for (i, orow) in outer_rows.iter().enumerate() {
                    if i % 512 == 0 {
                        self.check_deadline()?;
                    }
                    let key = &orow[*outer_slot];
                    let ids = idx.lookup(key, stats);
                    if ids.is_empty() {
                        continue;
                    }
                    for (_, irow) in entry.table.fetch(&ids, stats) {
                        if !local_program.matches(irow, &ctx)? {
                            continue;
                        }
                        let mut ok = true;
                        for (oslot, icol) in extra_keys {
                            let icol_idx = inner_schema
                                .column_index(icol)
                                .ok_or_else(|| DbError::UnknownColumn(icol.clone()))?;
                            self.stats().predicates(1);
                            if orow[*oslot] != irow[icol_idx] {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            out.push(concat_rows(orow, irow));
                        }
                    }
                }
                return Ok(out);
            }
        }

        // Otherwise materialize the inner side through its access plan.
        let inner_rows = self.access(alias, rel, hint, local)?;

        if let Some((outer_slot, inner_col)) = keys.first() {
            // Hash join on the first condition; extra conditions re-checked.
            // Build and probe borrow the materialized rows — no key clones,
            // no intermediate row copies; only joined output rows allocate.
            let inner_col_idx = inner_schema
                .column_index(inner_col)
                .ok_or_else(|| DbError::UnknownColumn(inner_col.clone()))?;
            let mut ht: HashMap<&Value, Vec<&Row>> = HashMap::new();
            for r in &inner_rows {
                ht.entry(&r[inner_col_idx]).or_default().push(r);
            }
            let extra_keys = &keys[1..];
            let mut out = Vec::new();
            for (i, orow) in outer_rows.iter().enumerate() {
                if i % 1024 == 0 {
                    self.check_deadline()?;
                }
                if let Some(matches) = ht.get(&orow[*outer_slot]) {
                    for irow in matches {
                        let mut ok = true;
                        for (oslot, icol) in extra_keys {
                            let icol_idx = inner_schema
                                .column_index(icol)
                                .ok_or_else(|| DbError::UnknownColumn(icol.clone()))?;
                            self.stats().predicates(1);
                            if orow[*oslot] != irow[icol_idx] {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            out.push(concat_rows(orow, irow));
                        }
                    }
                }
            }
            Ok(out)
        } else {
            // Cartesian product (only sensible for tiny inputs).
            let mut out = Vec::with_capacity(outer_rows.len() * inner_rows.len());
            for orow in &outer_rows {
                self.check_deadline()?;
                for irow in &inner_rows {
                    out.push(concat_rows(orow, irow));
                }
            }
            Ok(out)
        }
    }

    fn project(
        &self,
        query: &SelectQuery,
        layout: &Layout,
        rows: Vec<Row>,
    ) -> DbResult<QueryResult> {
        // SELECT * keeps the full layout.
        if query.select.len() == 1 && matches!(query.select[0], SelectItem::Star) {
            let columns = if layout.entries().len() == 1 {
                layout.entries()[0]
                    .1
                    .columns
                    .iter()
                    .map(|c| c.name.clone())
                    .collect()
            } else {
                layout.qualified_names()
            };
            return Ok(QueryResult { columns, rows });
        }

        let mut slots: Vec<usize> = Vec::new();
        let mut columns: Vec<String> = Vec::new();
        for item in &query.select {
            match item {
                SelectItem::Star => {
                    for (i, name) in layout.qualified_names().into_iter().enumerate() {
                        slots.push(i);
                        columns.push(name);
                    }
                }
                SelectItem::Column { column, alias } => {
                    slots.push(layout.resolve(column)?);
                    columns.push(alias.clone().unwrap_or_else(|| column.column.clone()));
                }
                SelectItem::Aggregate { .. } => {
                    return Err(DbError::Unsupported(
                        "aggregate outside GROUP BY query".into(),
                    ))
                }
            }
        }
        let rows = rows
            .into_iter()
            .map(|r| slots.iter().map(|&s| r[s].clone()).collect())
            .collect();
        Ok(QueryResult { columns, rows })
    }

    fn aggregate(
        &self,
        query: &SelectQuery,
        layout: &Layout,
        rows: Vec<Row>,
    ) -> DbResult<QueryResult> {
        let group_slots: Vec<usize> = query
            .group_by
            .iter()
            .map(|c| layout.resolve(c))
            .collect::<DbResult<_>>()?;

        // Pre-resolve select items.
        enum Out {
            Group(usize),      // index into group_slots
            Agg(usize),        // index into agg specs
        }
        struct AggSpec {
            func: AggFunc,
            slot: Option<usize>,
        }
        let mut outs: Vec<Out> = Vec::new();
        let mut columns: Vec<String> = Vec::new();
        let mut aggs: Vec<AggSpec> = Vec::new();
        for item in &query.select {
            match item {
                SelectItem::Star => {
                    return Err(DbError::Unsupported("SELECT * with GROUP BY".into()))
                }
                SelectItem::Column { column, alias } => {
                    let slot = layout.resolve(column)?;
                    let gidx = group_slots.iter().position(|&s| s == slot).ok_or_else(|| {
                        DbError::Unsupported(format!(
                            "column {column} not in GROUP BY"
                        ))
                    })?;
                    outs.push(Out::Group(gidx));
                    columns.push(alias.clone().unwrap_or_else(|| column.column.clone()));
                }
                SelectItem::Aggregate {
                    func,
                    column,
                    alias,
                } => {
                    let slot = match column {
                        Some(c) => Some(layout.resolve(c)?),
                        None => None,
                    };
                    if slot.is_none() && !matches!(func, AggFunc::Count) {
                        // Both backends reject this identically: the
                        // renderer keeps the DISTINCT spelling, so the
                        // wire path can no longer degrade it to COUNT(*).
                        let spelled = if matches!(func, AggFunc::CountDistinct) {
                            "COUNT(DISTINCT *)".to_string()
                        } else {
                            format!("{}(*)", func.sql())
                        };
                        return Err(DbError::Unsupported(format!(
                            "{spelled} is not supported: * only valid in COUNT(*)"
                        )));
                    }
                    outs.push(Out::Agg(aggs.len()));
                    columns.push(alias.clone().unwrap_or_else(|| func.sql().to_lowercase()));
                    aggs.push(AggSpec { func: *func, slot });
                }
            }
        }

        #[derive(Clone)]
        enum Acc {
            Count(u64),
            Distinct(HashSet<Value>),
            SumInt(i64), // promoted to SumDouble on the first non-integer input
            SumDouble(f64),
            Min(Option<Value>),
            Max(Option<Value>),
            Avg(f64, u64),
        }

        let new_acc = |spec: &AggSpec| match spec.func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::CountDistinct => Acc::Distinct(HashSet::new()),
            AggFunc::Sum => Acc::SumInt(0),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg(0.0, 0),
        };

        let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            if i % 4096 == 0 {
                self.check_deadline()?;
            }
            let key: Vec<Value> = group_slots.iter().map(|&s| row[s].clone()).collect();
            let accs = groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(new_acc).collect());
            for (spec, acc) in aggs.iter().zip(accs.iter_mut()) {
                let v = spec.slot.map(|s| &row[s]);
                match acc {
                    Acc::Count(n) => {
                        if spec.slot.is_none() || v.is_some_and(|v| !v.is_null()) {
                            *n += 1;
                        }
                    }
                    Acc::Distinct(set) => {
                        if let Some(v) = v {
                            if !v.is_null() {
                                set.insert(v.clone());
                            }
                        }
                    }
                    Acc::SumInt(sum) => match v {
                        Some(Value::Int(x)) => *sum += x,
                        Some(Value::Double(x)) => {
                            let d = *sum as f64 + x;
                            *acc = Acc::SumDouble(d);
                        }
                        _ => {}
                    },
                    Acc::SumDouble(sum) => {
                        if let Some(x) = v.and_then(|v| v.as_double()) {
                            *sum += x;
                        }
                    }
                    Acc::Min(m) => {
                        if let Some(v) = v {
                            if !v.is_null() && m.as_ref().is_none_or(|cur| v < cur) {
                                *m = Some(v.clone());
                            }
                        }
                    }
                    Acc::Max(m) => {
                        if let Some(v) = v {
                            if !v.is_null() && m.as_ref().is_none_or(|cur| v > cur) {
                                *m = Some(v.clone());
                            }
                        }
                    }
                    Acc::Avg(sum, n) => {
                        if let Some(x) = v.and_then(|v| v.as_double()) {
                            *sum += x;
                            *n += 1;
                        }
                    }
                }
            }
        }

        // A global aggregate (no GROUP BY) over empty input still yields
        // one row (COUNT(*) = 0, SUM = NULL, …), per SQL semantics.
        if group_slots.is_empty() && groups.is_empty() {
            groups.insert(Vec::new(), aggs.iter().map(new_acc).collect());
        }

        // Deterministic output order: sort by group key.
        let mut entries: Vec<(Vec<Value>, Vec<Acc>)> = groups.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));

        let mut out_rows = Vec::with_capacity(entries.len());
        for (key, accs) in entries {
            let mut row = Vec::with_capacity(outs.len());
            for o in &outs {
                match o {
                    Out::Group(gidx) => row.push(key[*gidx].clone()),
                    Out::Agg(aidx) => row.push(match &accs[*aidx] {
                        Acc::Count(n) => Value::Int(*n as i64),
                        Acc::Distinct(s) => Value::Int(s.len() as i64),
                        Acc::SumInt(s) => Value::Int(*s),
                        Acc::SumDouble(s) => Value::Double(*s),
                        Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
                        Acc::Avg(s, n) => {
                            if *n == 0 {
                                Value::Null
                            } else {
                                Value::Double(s / *n as f64)
                            }
                        }
                    }),
                }
            }
            out_rows.push(row);
        }

        Ok(QueryResult {
            columns,
            rows: out_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::DbProfile;

    fn sample_db(profile: DbProfile) -> Database {
        let mut db = Database::new(profile);
        db.create_table(TableSchema::of(
            "wifi",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        ))
        .unwrap();
        for i in 0..1000i64 {
            db.insert(
                "wifi",
                vec![
                    Value::Int(i),
                    Value::Int(i % 50),
                    Value::Int(1000 + i % 10),
                    Value::Time(((i * 61) % 86400) as u32),
                ],
            )
            .unwrap();
        }
        db.create_index("wifi", "owner").unwrap();
        db.create_index("wifi", "wifi_ap").unwrap();
        db.analyze("wifi").unwrap();

        db.create_table(TableSchema::of(
            "membership",
            &[("user_id", DataType::Int), ("group_id", DataType::Int)],
        ))
        .unwrap();
        for u in 0..50i64 {
            db.insert("membership", vec![Value::Int(u), Value::Int(u % 5)])
                .unwrap();
        }
        db.create_index("membership", "user_id").unwrap();
        db.analyze("membership").unwrap();
        db
    }

    #[test]
    fn select_star_filter() {
        let db = sample_db(DbProfile::MySqlLike);
        let q = SelectQuery::star_from("wifi")
            .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(7)));
        let res = db.run_query(&q).unwrap();
        assert_eq!(res.len(), 20);
        assert_eq!(res.columns, vec!["id", "owner", "wifi_ap", "ts_time"]);
    }

    #[test]
    fn seq_and_index_agree() {
        let db_m = sample_db(DbProfile::MySqlLike);
        let db_p = sample_db(DbProfile::PostgresLike);
        let pred = Expr::or(
            Expr::col_eq(ColumnRef::bare("owner"), Value::Int(3)),
            Expr::col_eq(ColumnRef::bare("owner"), Value::Int(4)),
        );
        let q = SelectQuery::star_from("wifi").filter(pred);
        let mut a = db_m.run_query(&q).unwrap().rows;
        let mut b = db_p.run_query(&q).unwrap().rows;
        a.sort();
        b.sort();
        assert_eq!(a.len(), 40);
        assert_eq!(a, b);
    }

    #[test]
    fn forced_union_matches_scan_results() {
        let db = sample_db(DbProfile::MySqlLike);
        let pred = Expr::or(
            Expr::col_eq(ColumnRef::bare("owner"), Value::Int(3)),
            Expr::col_eq(ColumnRef::bare("wifi_ap"), Value::Int(1001)),
        );
        let forced = SelectQuery {
            from: vec![TableRef::named("wifi")
                .with_hint(IndexHint::Force(vec!["owner".into(), "wifi_ap".into()]))],
            ..SelectQuery::star_from("wifi")
        }
        .filter(pred.clone());
        let scanned = SelectQuery {
            from: vec![TableRef::named("wifi").with_hint(IndexHint::IgnoreAll)],
            ..SelectQuery::star_from("wifi")
        }
        .filter(pred);
        let mut a = db.run_query(&forced).unwrap().rows;
        let mut b = db.run_query(&scanned).unwrap().rows;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // owner=3 (i%50==3) gives 20 rows, ap=1001 (i%10==1) gives 100;
        // i≡3 (mod 50) implies i%10==3, so the sets are disjoint → 120.
        assert_eq!(a.len(), 120);
    }

    #[test]
    fn with_clause_creates_temp() {
        let db = sample_db(DbProfile::MySqlLike);
        let inner = SelectQuery::star_from("wifi")
            .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(1)));
        let outer = SelectQuery::star_from("wifi_pol")
            .with_clause("wifi_pol", inner)
            .filter(Expr::col_eq(ColumnRef::bare("wifi_ap"), Value::Int(1001)));
        let res = db.run_query(&outer).unwrap();
        // owner=1: ids 1, 51, 101, ... (20 rows); of those ap=1001 means id%10==1.
        assert!(res.rows.iter().all(|r| r[1] == Value::Int(1)));
        assert!(res.rows.iter().all(|r| r[2] == Value::Int(1001)));
        assert!(!res.is_empty());
    }

    #[test]
    fn join_via_index_nested_loop() {
        let db = sample_db(DbProfile::MySqlLike);
        // Devices of group 2 = owners {2, 7, 12, ...}: 10 owners × 20 rows.
        let q = SelectQuery {
            with: vec![],
            select: vec![SelectItem::Star],
            from: vec![
                TableRef::aliased("membership", "m"),
                TableRef::aliased("wifi", "w"),
            ],
            predicate: Some(Expr::all(vec![
                Expr::col_eq(ColumnRef::qualified("m", "group_id"), Value::Int(2)),
                Expr::Cmp {
                    op: CmpOp::Eq,
                    lhs: Box::new(Expr::Column(ColumnRef::qualified("m", "user_id"))),
                    rhs: Box::new(Expr::Column(ColumnRef::qualified("w", "owner"))),
                },
            ])),
            group_by: vec![],
            limit: None,
        };
        let res = db.run_query(&q).unwrap();
        assert_eq!(res.len(), 200);
        assert_eq!(res.columns.len(), 6);
    }

    use crate::expr::CmpOp;

    #[test]
    fn group_by_count_and_sum() {
        let db = sample_db(DbProfile::MySqlLike);
        let q = SelectQuery {
            with: vec![],
            select: vec![
                SelectItem::Column {
                    column: ColumnRef::bare("wifi_ap"),
                    alias: None,
                },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    column: None,
                    alias: Some("n".into()),
                },
                SelectItem::Aggregate {
                    func: AggFunc::CountDistinct,
                    column: Some(ColumnRef::bare("owner")),
                    alias: Some("owners".into()),
                },
            ],
            from: vec![TableRef::named("wifi")],
            predicate: None,
            group_by: vec![ColumnRef::bare("wifi_ap")],
            limit: None,
        };
        let res = db.run_query(&q).unwrap();
        assert_eq!(res.len(), 10);
        for row in &res.rows {
            assert_eq!(row[1], Value::Int(100));
            // owners per AP: ids with same i%10 → owners i%50 cycle of 5.
            assert_eq!(row[2], Value::Int(5));
        }
    }

    #[test]
    fn scalar_subquery_correlated() {
        let db = sample_db(DbProfile::MySqlLike);
        // For each membership row of group 0, check owner has wifi rows:
        // WHERE m.user_id = (SELECT w.owner FROM wifi w WHERE w.owner = m.user_id LIMIT 1)
        let sub = SelectQuery {
            with: vec![],
            select: vec![SelectItem::Column {
                column: ColumnRef::qualified("w", "owner"),
                alias: None,
            }],
            from: vec![TableRef::aliased("wifi", "w")],
            predicate: Some(Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::Column(ColumnRef::qualified("w", "owner"))),
                rhs: Box::new(Expr::Column(ColumnRef::qualified("m", "user_id"))),
            }),
            group_by: vec![],
            limit: Some(1),
        };
        let q = SelectQuery {
            with: vec![],
            select: vec![SelectItem::Star],
            from: vec![TableRef::aliased("membership", "m")],
            predicate: Some(Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::Column(ColumnRef::qualified("m", "user_id"))),
                rhs: Box::new(Expr::ScalarSubquery(Box::new(sub))),
            }),
            group_by: vec![],
            limit: None,
        };
        let res = db.run_query(&q).unwrap();
        assert_eq!(res.len(), 50); // every member has wifi rows
    }

    #[test]
    fn timeout_fires() {
        let db = sample_db(DbProfile::MySqlLike);
        let q = SelectQuery::star_from("wifi");
        let res = db.run_query_opts(&q, &ExecOptions::with_timeout(Duration::ZERO));
        assert_eq!(res.unwrap_err(), DbError::Timeout);
    }

    #[test]
    fn derived_table_in_from() {
        let db = sample_db(DbProfile::MySqlLike);
        let inner = SelectQuery::star_from("wifi")
            .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(1)));
        let q = SelectQuery {
            with: vec![],
            select: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None,
                alias: Some("n".into()),
            }],
            from: vec![TableRef {
                source: TableSource::Derived(Box::new(inner)),
                alias: "t".into(),
                hint: IndexHint::None,
            }],
            predicate: None,
            group_by: vec![],
            limit: None,
        };
        let res = db.run_query(&q).unwrap();
        assert_eq!(res.rows[0][0], Value::Int(20));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let db = sample_db(DbProfile::MySqlLike);
        let q = SelectQuery {
            with: vec![],
            select: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None,
                alias: Some("n".into()),
            }],
            from: vec![TableRef::named("wifi")],
            predicate: Some(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(-1))),
            group_by: vec![],
            limit: None,
        };
        let res = db.run_query(&q).unwrap();
        assert_eq!(res.rows, vec![vec![Value::Int(0)]]);
        // With GROUP BY, empty input produces no groups.
        let mut q2 = q.clone();
        q2.group_by = vec![ColumnRef::bare("wifi_ap")];
        q2.select.insert(
            0,
            SelectItem::Column {
                column: ColumnRef::bare("wifi_ap"),
                alias: None,
            },
        );
        assert!(db.run_query(&q2).unwrap().is_empty());
    }

    #[test]
    fn limit_truncates() {
        let db = sample_db(DbProfile::MySqlLike);
        let mut q = SelectQuery::star_from("wifi");
        q.limit = Some(5);
        assert_eq!(db.run_query(&q).unwrap().len(), 5);
    }

    fn big_db(profile: DbProfile) -> Database {
        let mut db = Database::new(profile);
        db.create_table(TableSchema::of(
            "big",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        for i in 0..(2 * crate::planner::PARALLEL_MIN_ROWS as i64 + 123) {
            db.insert("big", vec![Value::Int(i), Value::Int(i % 97)])
                .unwrap();
        }
        db
    }

    #[test]
    fn parallel_scan_matches_sequential_in_order() {
        let db = big_db(DbProfile::MySqlLike);
        let q = SelectQuery {
            from: vec![TableRef::named("big").with_hint(IndexHint::IgnoreAll)],
            ..SelectQuery::star_from("big")
        }
        .filter(Expr::col_cmp(
            ColumnRef::bare("owner"),
            CmpOp::Lt,
            Value::Int(40),
        ));
        let seq = db.run_query(&q).unwrap();
        for threads in [2usize, 3, 8] {
            let par = db
                .run_query_opts(&q, &ExecOptions::with_threads(threads))
                .unwrap();
            // Identical rows in identical order: morsel results are
            // concatenated in morsel order.
            assert_eq!(par.rows, seq.rows, "threads={threads}");
        }
    }

    #[test]
    fn parallel_filter_applies_to_temp_tables() {
        let db = big_db(DbProfile::MySqlLike);
        let inner = SelectQuery::star_from("big");
        let outer = SelectQuery::star_from("big_cte")
            .with_clause("big_cte", inner)
            .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(13)));
        let seq = db.run_query(&outer).unwrap();
        let par = db
            .run_query_opts(&outer, &ExecOptions::with_threads(4))
            .unwrap();
        assert_eq!(par.rows, seq.rows);
        assert!(!par.is_empty());
    }

    #[test]
    fn parallel_scan_honors_timeout() {
        let db = big_db(DbProfile::MySqlLike);
        let q = SelectQuery::star_from("big");
        let opts = ExecOptions {
            timeout: Some(Duration::ZERO),
            threads: 4,
        };
        assert_eq!(db.run_query_opts(&q, &opts).unwrap_err(), DbError::Timeout);
    }

    #[test]
    fn exact_index_union_skips_residual_evaluation() {
        let db = sample_db(DbProfile::MySqlLike);
        let pred = Expr::or(
            Expr::col_eq(ColumnRef::bare("owner"), Value::Int(3)),
            Expr::col_eq(ColumnRef::bare("owner"), Value::Int(4)),
        );
        let q = SelectQuery {
            from: vec![TableRef::named("wifi").with_hint(IndexHint::Force(vec!["owner".into()]))],
            ..SelectQuery::star_from("wifi")
        }
        .filter(pred);
        db.stats().reset();
        let res = db.run_query(&q).unwrap();
        assert_eq!(res.len(), 40);
        // The probe union is exact: no per-row predicate re-evaluation.
        assert_eq!(db.stats().snapshot().predicate_evals, 0);
    }
}
