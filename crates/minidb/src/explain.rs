//! EXPLAIN: expose the planner's decisions without executing.
//!
//! The paper's SIEVE "first runs the EXPLAIN of query Qi which returns a
//! high-level view of the query plan including, for each relation, the
//! particular access strategy (table scan or a specific index) the
//! optimizer plans to use and the estimated selectivity of the predicate"
//! (Section 5.5). That is exactly the contract of [`ExplainOutput`].

use crate::catalog::Database;
use crate::error::DbResult;
use crate::exec::ExecOptions;
use crate::plan::{SelectQuery, TableSource};
use crate::planner::{classify_predicate, plan_access_opts, AccessPlan, ScanOptions};
use std::fmt;
use std::sync::Arc;

/// Planner decision for one relation in the FROM clause.
#[derive(Debug, Clone)]
pub struct RelationPlan {
    /// FROM alias.
    pub alias: String,
    /// Base table name (or the WITH/derived name).
    pub table: String,
    /// Chosen access plan.
    pub access: AccessPlan,
    /// Human-readable access description.
    pub access_desc: String,
    /// Estimated rows fetched from the heap.
    pub est_rows: f64,
    /// Estimated fraction of the table fetched (the paper's ρ/|r|).
    pub est_fraction: f64,
    /// Total rows in the relation.
    pub table_rows: u64,
}

/// EXPLAIN output: one entry per FROM relation of the outermost body.
/// WITH-clause bodies are explained recursively in `ctes`.
#[derive(Debug, Clone, Default)]
pub struct ExplainOutput {
    /// Plans for the body's FROM relations (base tables only; temp/derived
    /// relations are always scanned and reported with `SeqScan`).
    pub relations: Vec<RelationPlan>,
    /// EXPLAIN of each WITH clause, in definition order.
    pub ctes: Vec<(String, ExplainOutput)>,
}

impl fmt::Display for ExplainOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, e) in &self.ctes {
            writeln!(f, "CTE {name}:")?;
            for line in e.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        for r in &self.relations {
            writeln!(
                f,
                "{} ({}): {} est_rows={:.1} ({:.2}% of {})",
                r.alias,
                r.table,
                r.access_desc,
                r.est_rows,
                r.est_fraction * 100.0,
                r.table_rows
            )?;
        }
        Ok(())
    }
}

/// Produce the EXPLAIN of a query with default execution options
/// (sequential scans).
pub fn explain_query(db: &Database, query: &SelectQuery) -> DbResult<ExplainOutput> {
    explain_query_opts(db, query, &ExecOptions::default())
}

/// Produce the EXPLAIN of a query as it would be planned under `opts`:
/// the thread knob surfaces morsel-parallel scans
/// (`ParallelScan(morsels=…)`) and tightens the PostgreSQL-like bitmap
/// gate exactly as execution would.
pub fn explain_query_opts(
    db: &Database,
    query: &SelectQuery,
    opts: &ExecOptions,
) -> DbResult<ExplainOutput> {
    let scan = ScanOptions {
        threads: opts.threads,
    };
    let mut out = ExplainOutput::default();
    let mut cte_names: Vec<String> = Vec::new();
    for wc in &query.with {
        out.ctes
            .push((wc.name.clone(), explain_query_opts(db, &wc.query, opts)?));
        cte_names.push(wc.name.clone());
    }

    // Build the schema list for predicate classification.
    let mut table_schemas = Vec::new();
    for tref in &query.from {
        let schema = match &tref.source {
            TableSource::Named(name) if !cte_names.contains(name) && db.has_table(name) => {
                db.table(name)?.schema().clone()
            }
            // CTE and derived relations: schema unknown here; use an empty
            // placeholder (their predicates cannot be classified as local,
            // which is conservative — they are scans anyway).
            _ => Arc::new(crate::schema::TableSchema::new(tref.alias.clone(), vec![])),
        };
        table_schemas.push((tref.alias.clone(), schema));
    }
    let classified = match &query.predicate {
        Some(p) => classify_predicate(p, &table_schemas),
        None => Default::default(),
    };

    for tref in &query.from {
        let (table_name, entry) = match &tref.source {
            TableSource::Named(name) => {
                if cte_names.contains(name) || !db.has_table(name) {
                    out.relations.push(RelationPlan {
                        alias: tref.alias.clone(),
                        table: name.clone(),
                        access: AccessPlan::SeqScan,
                        access_desc: "SeqScan(temp)".into(),
                        est_rows: f64::NAN,
                        est_fraction: f64::NAN,
                        table_rows: 0,
                    });
                    continue;
                }
                (name.clone(), db.table(name)?)
            }
            TableSource::Derived(_) => {
                out.relations.push(RelationPlan {
                    alias: tref.alias.clone(),
                    table: "<derived>".into(),
                    access: AccessPlan::SeqScan,
                    access_desc: "SeqScan(derived)".into(),
                    est_rows: f64::NAN,
                    est_fraction: f64::NAN,
                    table_rows: 0,
                });
                continue;
            }
        };
        let local = classified.local_predicate(&tref.alias);
        let plan = plan_access_opts(
            entry,
            &tref.alias,
            local.as_ref(),
            &tref.hint,
            db.profile(),
            scan,
        );
        let est_rows = plan.estimate_rows(entry);
        let rows = entry.table.len().max(1) as f64;
        out.relations.push(RelationPlan {
            alias: tref.alias.clone(),
            table: table_name,
            access_desc: plan.describe(),
            access: plan,
            est_rows,
            est_fraction: est_rows / rows,
            table_rows: entry.table.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ColumnRef, Expr};
    use crate::plan::{IndexHint, TableRef};
    use crate::planner::DbProfile;
    use crate::schema::TableSchema;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "w",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        for i in 0..500i64 {
            db.insert("w", vec![Value::Int(i), Value::Int(i % 25)]).unwrap();
        }
        db.create_index("w", "owner").unwrap();
        db.analyze("w").unwrap();
        db
    }

    #[test]
    fn explain_reports_index_choice() {
        let db = db();
        let q = SelectQuery::star_from("w")
            .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(3)));
        let e = db.explain(&q).unwrap();
        assert_eq!(e.relations.len(), 1);
        assert!(e.relations[0].access_desc.starts_with("IndexScan"));
        assert!(e.relations[0].est_fraction < 0.1);
    }

    #[test]
    fn explain_reports_scan_when_hinted_off() {
        let db = db();
        let q = SelectQuery {
            from: vec![TableRef::named("w").with_hint(IndexHint::IgnoreAll)],
            ..SelectQuery::star_from("w")
        }
        .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(3)));
        let e = db.explain(&q).unwrap();
        assert_eq!(e.relations[0].access_desc, "SeqScan");
        assert_eq!(e.relations[0].est_rows, 500.0);
    }

    #[test]
    fn explain_renders_parallel_scan_and_index_union() {
        use crate::planner::PARALLEL_MIN_ROWS;
        let mut db = Database::new(DbProfile::MySqlLike);
        db.create_table(TableSchema::of(
            "big",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ))
        .unwrap();
        for i in 0..(PARALLEL_MIN_ROWS as i64 + 500) {
            db.insert("big", vec![Value::Int(i), Value::Int(i % 40)]).unwrap();
        }
        db.create_index("big", "owner").unwrap();

        // Thread knob on → the unhinted scan reports its morsel split.
        let scan_q = SelectQuery {
            from: vec![TableRef::named("big").with_hint(IndexHint::IgnoreAll)],
            ..SelectQuery::star_from("big")
        };
        let opts = crate::exec::ExecOptions::with_threads(4);
        let e = db.explain_opts(&scan_q, &opts).unwrap();
        assert!(
            e.relations[0].access_desc.starts_with("ParallelScan(morsels="),
            "got {}",
            e.relations[0].access_desc
        );
        // Default options: same query is a plain SeqScan.
        let e = db.explain(&scan_q).unwrap();
        assert_eq!(e.relations[0].access_desc, "SeqScan");

        // Guard-shaped OR with a FORCE hint → exact index union.
        let pred = Expr::or(
            Expr::col_eq(ColumnRef::bare("owner"), Value::Int(1)),
            Expr::col_eq(ColumnRef::bare("owner"), Value::Int(2)),
        );
        let union_q = SelectQuery {
            from: vec![TableRef::named("big").with_hint(IndexHint::Force(vec!["owner".into()]))],
            ..SelectQuery::star_from("big")
        }
        .filter(pred);
        let e = db.explain(&union_q).unwrap();
        assert_eq!(
            e.relations[0].access_desc,
            "IndexUnion(col=owner, 2 probes, exact)"
        );
    }

    #[test]
    fn explain_includes_ctes() {
        let db = db();
        let inner = SelectQuery::star_from("w")
            .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(3)));
        let q = SelectQuery::star_from("pol").with_clause("pol", inner);
        let e = db.explain(&q).unwrap();
        assert_eq!(e.ctes.len(), 1);
        assert_eq!(e.ctes[0].0, "pol");
        assert!(e.relations[0].access_desc.contains("temp"));
        let rendered = e.to_string();
        assert!(rendered.contains("CTE pol:"));
    }
}
