//! Predicate expressions: AST, name resolution (binding), and evaluation.
//!
//! Evaluation is the hot path of everything SIEVE measures — each policy
//! object-condition set is a conjunct tree evaluated per tuple — so
//! expressions are *bound* once against the query's FROM layout (resolving
//! column names to positions) and evaluated many times. `And`/`Or` short-
//! circuit, which is what makes the paper's α ("average number of policies a
//! tuple is checked against before it satisfies one", Section 4) a
//! measurable quantity here.

use crate::error::{DbError, DbResult};
use crate::plan::SelectQuery;
use crate::schema::TableSchema;
use crate::stats::StatsSink;
use crate::table::Row;
use crate::udf::{UdfContext, UdfRegistry};
use crate::value::Value;
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Comparison operators of the policy model (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to two values. Comparisons against NULL are false.
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The SQL token for this operator.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Mirror image (for normalizing `literal op column`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table alias qualifier, if written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// An unbound predicate/scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Constant.
    Literal(Value),
    /// Positional wire-protocol placeholder (`?`), numbered left to right
    /// in render order. Produced by [`crate::sql::parameterize`] and by
    /// the parser for `?` tokens; a query still holding placeholders must
    /// be rebound via [`crate::sql::bind_params`] before execution.
    Param(usize),
    /// Column reference.
    Column(ColumnRef),
    /// Binary comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `expr [NOT] BETWEEN low AND high` (inclusive both sides, as in SQL).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN if true.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List elements.
        list: Vec<Expr>,
        /// NOT IN if true.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL if true.
        negated: bool,
    },
    /// N-ary conjunction (short-circuits on first false).
    And(Vec<Expr>),
    /// N-ary disjunction (short-circuits on first true).
    Or(Vec<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// UDF call, e.g. the ∆ operator `delta(guard_id, querier, purpose, owner, …)`.
    Udf {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Correlated scalar subquery (the policy model's "derived value",
    /// Section 3.1). Yields the first column of the first result row, or
    /// NULL when the result is empty.
    ScalarSubquery(Box<SelectQuery>),
}

impl Expr {
    /// `a AND b`, flattening nested conjunctions.
    pub fn and(a: Expr, b: Expr) -> Expr {
        let mut parts = Vec::new();
        for e in [a, b] {
            match e {
                Expr::And(mut v) => parts.append(&mut v),
                other => parts.push(other),
            }
        }
        Expr::And(parts)
    }

    /// `a OR b`, flattening nested disjunctions.
    pub fn or(a: Expr, b: Expr) -> Expr {
        let mut parts = Vec::new();
        for e in [a, b] {
            match e {
                Expr::Or(mut v) => parts.append(&mut v),
                other => parts.push(other),
            }
        }
        Expr::Or(parts)
    }

    /// Conjunction of many expressions; `TRUE` for an empty list.
    /// Flattens nested conjunctions like [`Expr::and`], so every
    /// constructor-built expression is in the same n-ary normal form the
    /// SQL parser produces — `parse(render(e)) == e` depends on it.
    pub fn all(exprs: Vec<Expr>) -> Expr {
        let mut parts = Vec::new();
        for e in exprs {
            match e {
                Expr::And(mut v) => parts.append(&mut v),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Expr::Literal(Value::Bool(true)),
            1 => parts.into_iter().next().unwrap(),
            _ => Expr::And(parts),
        }
    }

    /// Disjunction of many expressions; `FALSE` for an empty list.
    /// Flattens nested disjunctions like [`Expr::or`] (see [`Expr::all`]).
    pub fn any(exprs: Vec<Expr>) -> Expr {
        let mut parts = Vec::new();
        for e in exprs {
            match e {
                Expr::Or(mut v) => parts.append(&mut v),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Expr::Literal(Value::Bool(false)),
            1 => parts.into_iter().next().unwrap(),
            _ => Expr::Or(parts),
        }
    }

    /// Shorthand: `col = value`.
    pub fn col_eq(col: ColumnRef, v: Value) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(Expr::Column(col)),
            rhs: Box::new(Expr::Literal(v)),
        }
    }

    /// Shorthand: comparison of a column to a literal.
    pub fn col_cmp(col: ColumnRef, op: CmpOp, v: Value) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(Expr::Column(col)),
            rhs: Box::new(Expr::Literal(v)),
        }
    }

    /// Top-level conjuncts of this expression (`self` if not an AND).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(v) => v.iter().collect(),
            other => vec![other],
        }
    }

    /// Top-level disjuncts of this expression (`self` if not an OR).
    pub fn disjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Or(v) => v.iter().collect(),
            other => vec![other],
        }
    }

    /// Visit all column references in this expression (not descending into
    /// scalar subqueries, whose references resolve in their own scope).
    pub fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a ColumnRef)) {
        match self {
            Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Column(c) => f(c),
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.visit_columns(f);
                rhs.visit_columns(f);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::And(v) | Expr::Or(v) => {
                for e in v {
                    e.visit_columns(f);
                }
            }
            Expr::Not(e) => e.visit_columns(f),
            Expr::Udf { args, .. } => {
                for e in args {
                    e.visit_columns(f);
                }
            }
            Expr::ScalarSubquery(_) => {}
        }
    }

    /// Visit this expression and every sub-expression, pre-order. A
    /// [`Expr::ScalarSubquery`] is visited as a single node; its inner
    /// predicate resolves in its own scope and is not descended into.
    /// This is the one traversal every walker builds on (rewrite-time
    /// reference collection, the static analyzer's atom lowering), so
    /// structural recursion over `Expr` lives in exactly one place.
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) | Expr::ScalarSubquery(_) => {}
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::And(v) | Expr::Or(v) => {
                for e in v {
                    e.visit(f);
                }
            }
            Expr::Not(e) => e.visit(f),
            Expr::Udf { args, .. } => {
                for e in args {
                    e.visit(f);
                }
            }
        }
    }

    /// Rebuild the expression, offering `f` each node top-down: returning
    /// `Some` replaces that node wholesale (children unvisited), `None`
    /// recurses structurally and reassembles. [`Expr::ScalarSubquery`] is
    /// offered but never descended into.
    pub fn map(&self, f: &mut dyn FnMut(&Expr) -> Option<Expr>) -> Expr {
        if let Some(replaced) = f(self) {
            return replaced;
        }
        match self {
            Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) | Expr::ScalarSubquery(_) => {
                self.clone()
            }
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(lhs.map(f)),
                rhs: Box::new(rhs.map(f)),
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.map(f)),
                low: Box::new(low.map(f)),
                high: Box::new(high.map(f)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.map(f)),
                list: list.iter().map(|e| e.map(f)).collect(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.map(f)),
                negated: *negated,
            },
            Expr::And(v) => Expr::And(v.iter().map(|e| e.map(f)).collect()),
            Expr::Or(v) => Expr::Or(v.iter().map(|e| e.map(f)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.map(f))),
            Expr::Udf { name, args } => Expr::Udf {
                name: name.clone(),
                args: args.iter().map(|e| e.map(f)).collect(),
            },
        }
    }
}

/// The flattened FROM layout a row is evaluated against: an ordered list of
/// `(alias, schema)` whose columns are concatenated.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    entries: Vec<(String, Arc<TableSchema>)>,
    offsets: Vec<usize>,
    width: usize,
}

impl Layout {
    /// Empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Layout over a single table.
    pub fn single(alias: impl Into<String>, schema: Arc<TableSchema>) -> Self {
        let mut l = Layout::new();
        l.push(alias, schema);
        l
    }

    /// Append a FROM entry.
    pub fn push(&mut self, alias: impl Into<String>, schema: Arc<TableSchema>) {
        self.offsets.push(self.width);
        self.width += schema.arity();
        self.entries.push((alias.into(), schema));
    }

    /// Total number of columns across all entries.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The `(alias, schema)` entries.
    pub fn entries(&self) -> &[(String, Arc<TableSchema>)] {
        &self.entries
    }

    /// Resolve a column reference to its global position.
    pub fn resolve(&self, c: &ColumnRef) -> DbResult<usize> {
        match &c.table {
            Some(alias) => {
                for (i, (a, schema)) in self.entries.iter().enumerate() {
                    if a == alias {
                        return schema
                            .column_index(&c.column)
                            .map(|j| self.offsets[i] + j)
                            .ok_or_else(|| DbError::UnknownColumn(c.to_string()));
                    }
                }
                Err(DbError::UnknownColumn(c.to_string()))
            }
            None => {
                let mut found = None;
                for (i, (_, schema)) in self.entries.iter().enumerate() {
                    if let Some(j) = schema.column_index(&c.column) {
                        if found.is_some() {
                            return Err(DbError::AmbiguousColumn(c.column.clone()));
                        }
                        found = Some(self.offsets[i] + j);
                    }
                }
                found.ok_or_else(|| DbError::UnknownColumn(c.to_string()))
            }
        }
    }

    /// Positions (global range) of an entry by alias.
    pub fn entry_range(&self, alias: &str) -> Option<std::ops::Range<usize>> {
        self.entries.iter().enumerate().find_map(|(i, (a, s))| {
            (a == alias).then(|| self.offsets[i]..self.offsets[i] + s.arity())
        })
    }

    /// Fully-qualified output column names, in layout order.
    pub fn qualified_names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.width);
        for (alias, schema) in &self.entries {
            for c in &schema.columns {
                out.push(format!("{alias}.{}", c.name));
            }
        }
        out
    }
}

/// Runner for correlated scalar subqueries: implemented by the executor and
/// injected into evaluation so `expr` does not depend on `exec`.
pub trait QueryRunner {
    /// Execute `query` with the given correlation parameters (keys are
    /// `alias.column` strings) and return the result rows. Parameters are
    /// taken by value: callers build the map fresh per invocation, so the
    /// runner can keep it without another deep copy.
    fn run_subquery(
        &self,
        query: &SelectQuery,
        params: HashMap<String, Value>,
    ) -> DbResult<Vec<Row>>;
}

/// Evaluation context: statistics, UDFs, subquery runner, and any outer
/// correlation parameters already in scope.
pub struct EvalContext<'a> {
    /// Stats sink charged by predicate evaluations and UDF work.
    pub stats: &'a StatsSink,
    /// Registered UDFs.
    pub udfs: &'a UdfRegistry,
    /// Subquery runner (None disables scalar subqueries).
    pub runner: Option<&'a dyn QueryRunner>,
    /// Correlation parameters visible to nested subqueries.
    pub params: &'a HashMap<String, Value>,
}

/// A bound expression: column references resolved to row positions, or to
/// named correlation parameters when they refer to an enclosing query.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Constant.
    Literal(Value),
    /// Column at a global row position.
    Slot(usize),
    /// Correlation parameter from an enclosing scope.
    Param(String),
    /// Binary comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<BoundExpr>,
        /// Right operand.
        rhs: Box<BoundExpr>,
    },
    /// Inclusive range test.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Inclusive lower bound.
        low: Box<BoundExpr>,
        /// Inclusive upper bound.
        high: Box<BoundExpr>,
        /// NOT BETWEEN if true.
        negated: bool,
    },
    /// IN-list test.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// List elements.
        list: Vec<BoundExpr>,
        /// NOT IN if true.
        negated: bool,
    },
    /// NULL test.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// IS NOT NULL if true.
        negated: bool,
    },
    /// Short-circuit conjunction.
    And(Vec<BoundExpr>),
    /// Short-circuit disjunction.
    Or(Vec<BoundExpr>),
    /// Negation.
    Not(Box<BoundExpr>),
    /// UDF call.
    Udf {
        /// Function name.
        name: String,
        /// Bound arguments.
        args: Vec<BoundExpr>,
    },
    /// Correlated scalar subquery with its captured outer references:
    /// `(param name, outer slot)` pairs collected at bind time.
    ScalarSubquery {
        /// The unbound subquery (bound inside the runner per invocation
        /// scope).
        query: Box<SelectQuery>,
        /// Outer columns the subquery needs, as `(param name, outer slot)`.
        outer_refs: Vec<(String, usize)>,
    },
}

/// Bind an expression against a layout.
///
/// Column references that do not resolve in `layout` bind as named
/// parameters when either (a) their printed name appears in `params`
/// (we are executing inside a correlated subquery whose outer row values
/// were captured), or (b) they resolve in `outer` (we are binding the outer
/// query and recording the correlation). Anything else is an error.
pub fn bind(
    expr: &Expr,
    layout: &Layout,
    outer: Option<&Layout>,
    params: &std::collections::HashSet<String>,
) -> DbResult<BoundExpr> {
    Ok(match expr {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Param(i) => {
            return Err(DbError::Unsupported(format!(
                "unbound placeholder ?{i}: bind parameters before execution"
            )))
        }
        Expr::Column(c) => match layout.resolve(c) {
            Ok(slot) => BoundExpr::Slot(slot),
            Err(e) => {
                let name = c.to_string();
                if params.contains(&name) {
                    BoundExpr::Param(name)
                } else if let Some(out) = outer {
                    if out.resolve(c).is_ok() {
                        BoundExpr::Param(name)
                    } else {
                        return Err(e);
                    }
                } else {
                    return Err(e);
                }
            }
        },
        Expr::Cmp { op, lhs, rhs } => BoundExpr::Cmp {
            op: *op,
            lhs: Box::new(bind(lhs, layout, outer, params)?),
            rhs: Box::new(bind(rhs, layout, outer, params)?),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(bind(expr, layout, outer, params)?),
            low: Box::new(bind(low, layout, outer, params)?),
            high: Box::new(bind(high, layout, outer, params)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(bind(expr, layout, outer, params)?),
            list: list
                .iter()
                .map(|e| bind(e, layout, outer, params))
                .collect::<DbResult<_>>()?,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind(expr, layout, outer, params)?),
            negated: *negated,
        },
        Expr::And(v) => BoundExpr::And(
            v.iter()
                .map(|e| bind(e, layout, outer, params))
                .collect::<DbResult<_>>()?,
        ),
        Expr::Or(v) => BoundExpr::Or(
            v.iter()
                .map(|e| bind(e, layout, outer, params))
                .collect::<DbResult<_>>()?,
        ),
        Expr::Not(e) => BoundExpr::Not(Box::new(bind(e, layout, outer, params)?)),
        Expr::Udf { name, args } => BoundExpr::Udf {
            name: name.clone(),
            args: args
                .iter()
                .map(|e| bind(e, layout, outer, params))
                .collect::<DbResult<_>>()?,
        },
        Expr::ScalarSubquery(q) => {
            // Collect the subquery's correlation needs: columns that do not
            // resolve against the subquery's own FROM entries but do resolve
            // in the current layout.
            let inner_layout_names: Vec<String> =
                q.from.iter().map(|t| t.alias.clone()).collect();
            let mut outer_refs: Vec<(String, usize)> = Vec::new();
            if let Some(pred) = &q.predicate {
                let mut err = None;
                pred.visit_columns(&mut |c| {
                    let is_inner = match &c.table {
                        Some(t) => inner_layout_names.iter().any(|a| a == t),
                        None => false, // unqualified: assume inner, resolved later
                    };
                    if !is_inner {
                        if let Ok(slot) = layout.resolve(c) {
                            let name = c.to_string();
                            if !outer_refs.iter().any(|(n, _)| *n == name) {
                                outer_refs.push((name, slot));
                            }
                        } else if c.table.is_some() && err.is_none() {
                            err = Some(DbError::UnknownColumn(c.to_string()));
                        }
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
            BoundExpr::ScalarSubquery {
                query: q.clone(),
                outer_refs,
            }
        }
    })
}

impl BoundExpr {
    /// Evaluate to a value.
    pub fn eval(&self, row: &[Value], ctx: &EvalContext<'_>) -> DbResult<Value> {
        Ok(self.eval_cow(row, ctx)?.into_owned())
    }

    /// Evaluate without materializing: slots and literals borrow instead of
    /// cloning, so the per-tuple filter loop allocates only for computed
    /// results (booleans, UDF outputs, subquery values). This is the hot
    /// path of every guarded-expression evaluation.
    pub fn eval_cow<'v>(
        &'v self,
        row: &'v [Value],
        ctx: &EvalContext<'_>,
    ) -> DbResult<Cow<'v, Value>> {
        Ok(match self {
            BoundExpr::Literal(v) => Cow::Borrowed(v),
            BoundExpr::Slot(i) => Cow::Borrowed(&row[*i]),
            BoundExpr::Param(name) => Cow::Owned(
                ctx.params
                    .get(name)
                    .cloned()
                    .ok_or_else(|| DbError::UnknownColumn(format!("parameter {name}")))?,
            ),
            BoundExpr::Cmp { op, lhs, rhs } => {
                let a = lhs.eval_cow(row, ctx)?;
                let b = rhs.eval_cow(row, ctx)?;
                ctx.stats.predicates(1);
                Cow::Owned(Value::Bool(op.apply(&a, &b)))
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval_cow(row, ctx)?;
                let lo = low.eval_cow(row, ctx)?;
                let hi = high.eval_cow(row, ctx)?;
                ctx.stats.predicates(1);
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Cow::Owned(Value::Bool(false)));
                }
                let inside = *v >= *lo && *v <= *hi;
                Cow::Owned(Value::Bool(inside != *negated))
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_cow(row, ctx)?;
                ctx.stats.predicates(1);
                if v.is_null() {
                    return Ok(Cow::Owned(Value::Bool(false)));
                }
                let mut found = false;
                for e in list {
                    if *e.eval_cow(row, ctx)? == *v {
                        found = true;
                        break;
                    }
                }
                Cow::Owned(Value::Bool(found != *negated))
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval_cow(row, ctx)?;
                ctx.stats.predicates(1);
                Cow::Owned(Value::Bool(v.is_null() != *negated))
            }
            BoundExpr::And(parts) => {
                for p in parts {
                    if !p.eval_bool(row, ctx)? {
                        return Ok(Cow::Owned(Value::Bool(false)));
                    }
                }
                Cow::Owned(Value::Bool(true))
            }
            BoundExpr::Or(parts) => {
                for p in parts {
                    if p.eval_bool(row, ctx)? {
                        return Ok(Cow::Owned(Value::Bool(true)));
                    }
                }
                Cow::Owned(Value::Bool(false))
            }
            BoundExpr::Not(e) => Cow::Owned(Value::Bool(!e.eval_bool(row, ctx)?)),
            BoundExpr::Udf { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row, ctx)?);
                }
                let udf_ctx = UdfContext { stats: ctx.stats };
                Cow::Owned(ctx.udfs.invoke(name, &vals, &udf_ctx)?)
            }
            BoundExpr::ScalarSubquery { query, outer_refs } => {
                let runner = ctx.runner.ok_or_else(|| {
                    DbError::Unsupported("scalar subquery outside executor".into())
                })?;
                let mut params = ctx.params.clone();
                for (name, slot) in outer_refs {
                    params.insert(name.clone(), row[*slot].clone());
                }
                let rows = runner.run_subquery(query, params)?;
                Cow::Owned(match rows.into_iter().next() {
                    Some(r) => r.into_iter().next().unwrap_or(Value::Null),
                    None => Value::Null,
                })
            }
        })
    }

    /// Operand as a direct reference when it is a slot or literal — the
    /// shape of every policy object-condition operand.
    #[inline]
    fn fast_ref<'r>(&'r self, row: &'r [Value]) -> Option<&'r Value> {
        match self {
            BoundExpr::Literal(v) => Some(v),
            BoundExpr::Slot(i) => Some(&row[*i]),
            _ => None,
        }
    }

    /// Evaluate as a boolean; non-boolean, non-null results are a type
    /// error, NULL is false.
    ///
    /// The boolean combinators and slot/literal comparison shapes — the
    /// entirety of a compiled guard expression — are evaluated directly,
    /// without constructing intermediate values at all.
    pub fn eval_bool(&self, row: &[Value], ctx: &EvalContext<'_>) -> DbResult<bool> {
        match self {
            BoundExpr::And(parts) => {
                for p in parts {
                    if !p.eval_bool(row, ctx)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            BoundExpr::Or(parts) => {
                for p in parts {
                    if p.eval_bool(row, ctx)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            BoundExpr::Not(e) => Ok(!e.eval_bool(row, ctx)?),
            BoundExpr::Cmp { op, lhs, rhs } => {
                if let (Some(a), Some(b)) = (lhs.fast_ref(row), rhs.fast_ref(row)) {
                    ctx.stats.predicates(1);
                    return Ok(op.apply(a, b));
                }
                self.eval_bool_generic(row, ctx)
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                if let (Some(v), Some(lo), Some(hi)) = (
                    expr.fast_ref(row),
                    low.fast_ref(row),
                    high.fast_ref(row),
                ) {
                    ctx.stats.predicates(1);
                    if v.is_null() || lo.is_null() || hi.is_null() {
                        return Ok(false);
                    }
                    let inside = v >= lo && v <= hi;
                    return Ok(inside != *negated);
                }
                self.eval_bool_generic(row, ctx)
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                if let Some(v) = expr.fast_ref(row) {
                    if list.iter().all(|e| matches!(e, BoundExpr::Literal(_))) {
                        ctx.stats.predicates(1);
                        if v.is_null() {
                            return Ok(false);
                        }
                        let found = list
                            .iter()
                            .any(|e| matches!(e, BoundExpr::Literal(x) if x == v));
                        return Ok(found != *negated);
                    }
                }
                self.eval_bool_generic(row, ctx)
            }
            BoundExpr::IsNull { expr, negated } => {
                if let Some(v) = expr.fast_ref(row) {
                    ctx.stats.predicates(1);
                    return Ok(v.is_null() != *negated);
                }
                self.eval_bool_generic(row, ctx)
            }
            _ => self.eval_bool_generic(row, ctx),
        }
    }

    fn eval_bool_generic(&self, row: &[Value], ctx: &EvalContext<'_>) -> DbResult<bool> {
        match &*self.eval_cow(row, ctx)? {
            Value::Bool(b) => Ok(*b),
            Value::Null => Ok(false),
            other => Err(DbError::TypeError(format!(
                "expected boolean predicate, got {other}"
            ))),
        }
    }
}

/// A pre-bound predicate program for batched filtering: the executor binds
/// a predicate once, then drives whole batches of rows through it, keeping
/// a selection vector of survivors so only output rows are ever cloned.
/// Constant predicates (the guarded rewrite's default-deny `FALSE`, or an
/// absent WHERE clause) are recognized up front and never touch a row.
#[derive(Debug)]
pub enum FilterProgram {
    /// No predicate, or a constant-true one: every row survives.
    KeepAll,
    /// Constant-false predicate: no row survives (and no input need be
    /// read at all — callers should check [`FilterProgram::drops_all`]).
    DropAll,
    /// Evaluate the bound expression per row.
    Eval(BoundExpr),
}

impl FilterProgram {
    /// Compile from an optional bound predicate.
    pub fn new(bound: Option<BoundExpr>) -> Self {
        match bound {
            None => FilterProgram::KeepAll,
            Some(BoundExpr::Literal(Value::Bool(false))) => FilterProgram::DropAll,
            Some(BoundExpr::Literal(Value::Bool(true))) => FilterProgram::KeepAll,
            Some(b) => FilterProgram::Eval(b),
        }
    }

    /// True iff the program is constant-false.
    pub fn drops_all(&self) -> bool {
        matches!(self, FilterProgram::DropAll)
    }

    /// Evaluate one row.
    pub fn matches(&self, row: &[Value], ctx: &EvalContext<'_>) -> DbResult<bool> {
        match self {
            FilterProgram::KeepAll => Ok(true),
            FilterProgram::DropAll => Ok(false),
            FilterProgram::Eval(b) => b.eval_bool(row, ctx),
        }
    }

    /// Evaluate a batch, appending the indices of surviving items to the
    /// selection vector `sel`. `row_of` projects each batch item to its
    /// row (batches carry `&Row` or `(RowId, &Row)` depending on the
    /// access path).
    pub fn select_into<T>(
        &self,
        batch: &[T],
        row_of: impl Fn(&T) -> &[Value],
        ctx: &EvalContext<'_>,
        sel: &mut Vec<u32>,
    ) -> DbResult<()> {
        match self {
            FilterProgram::KeepAll => sel.extend(0..batch.len() as u32),
            FilterProgram::DropAll => {}
            FilterProgram::Eval(b) => {
                for (i, item) in batch.iter().enumerate() {
                    if b.eval_bool(row_of(item), ctx)? {
                        sel.push(i as u32);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn layout() -> Layout {
        Layout::single(
            "w",
            Arc::new(TableSchema::of(
                "wifi",
                &[
                    ("owner", DataType::Int),
                    ("wifi_ap", DataType::Int),
                    ("ts_time", DataType::Time),
                ],
            )),
        )
    }

    fn ctx<'a>(
        stats: &'a StatsSink,
        udfs: &'a UdfRegistry,
        params: &'a HashMap<String, Value>,
    ) -> EvalContext<'a> {
        EvalContext {
            stats,
            udfs,
            runner: None,
            params,
        }
    }

    #[test]
    fn bind_and_eval_comparison() {
        let l = layout();
        let e = Expr::col_eq(ColumnRef::qualified("w", "owner"), Value::Int(7));
        let b = bind(&e, &l, None, &Default::default()).unwrap();
        let stats = StatsSink::new();
        let udfs = UdfRegistry::new();
        let params = HashMap::new();
        let c = ctx(&stats, &udfs, &params);
        let row = vec![Value::Int(7), Value::Int(1200), Value::Time(3600)];
        assert!(b.eval_bool(&row, &c).unwrap());
        let row2 = vec![Value::Int(8), Value::Int(1200), Value::Time(3600)];
        assert!(!b.eval_bool(&row2, &c).unwrap());
        assert_eq!(stats.snapshot().predicate_evals, 2);
    }

    #[test]
    fn unqualified_resolution_and_ambiguity() {
        let mut l = layout();
        assert!(l.resolve(&ColumnRef::bare("wifi_ap")).is_ok());
        // Add a second table that also has `owner`: bare `owner` becomes
        // ambiguous but qualified refs still resolve.
        l.push(
            "g",
            Arc::new(TableSchema::of("grades", &[("owner", DataType::Int)])),
        );
        assert_eq!(
            l.resolve(&ColumnRef::bare("owner")),
            Err(DbError::AmbiguousColumn("owner".into()))
        );
        assert_eq!(l.resolve(&ColumnRef::qualified("g", "owner")), Ok(3));
    }

    #[test]
    fn and_short_circuits() {
        let l = layout();
        let e = Expr::And(vec![
            Expr::col_eq(ColumnRef::bare("owner"), Value::Int(1)),
            Expr::col_eq(ColumnRef::bare("wifi_ap"), Value::Int(9)),
        ]);
        let b = bind(&e, &l, None, &Default::default()).unwrap();
        let stats = StatsSink::new();
        let udfs = UdfRegistry::new();
        let params = HashMap::new();
        let c = ctx(&stats, &udfs, &params);
        // First conjunct false: second must not be evaluated.
        let row = vec![Value::Int(0), Value::Int(9), Value::Time(0)];
        assert!(!b.eval_bool(&row, &c).unwrap());
        assert_eq!(stats.snapshot().predicate_evals, 1);
    }

    #[test]
    fn or_short_circuits() {
        let l = layout();
        let e = Expr::Or(vec![
            Expr::col_eq(ColumnRef::bare("owner"), Value::Int(1)),
            Expr::col_eq(ColumnRef::bare("wifi_ap"), Value::Int(9)),
        ]);
        let b = bind(&e, &l, None, &Default::default()).unwrap();
        let stats = StatsSink::new();
        let udfs = UdfRegistry::new();
        let params = HashMap::new();
        let c = ctx(&stats, &udfs, &params);
        let row = vec![Value::Int(1), Value::Int(0), Value::Time(0)];
        assert!(b.eval_bool(&row, &c).unwrap());
        assert_eq!(stats.snapshot().predicate_evals, 1);
    }

    #[test]
    fn between_and_in_semantics() {
        let l = layout();
        let between = Expr::Between {
            expr: Box::new(Expr::Column(ColumnRef::bare("ts_time"))),
            low: Box::new(Expr::Literal(Value::Time(9 * 3600))),
            high: Box::new(Expr::Literal(Value::Time(10 * 3600))),
            negated: false,
        };
        let b = bind(&between, &l, None, &Default::default()).unwrap();
        let stats = StatsSink::new();
        let udfs = UdfRegistry::new();
        let params = HashMap::new();
        let c = ctx(&stats, &udfs, &params);
        let at_nine = vec![Value::Int(0), Value::Int(0), Value::Time(9 * 3600)];
        let at_noon = vec![Value::Int(0), Value::Int(0), Value::Time(12 * 3600)];
        assert!(b.eval_bool(&at_nine, &c).unwrap());
        assert!(!b.eval_bool(&at_noon, &c).unwrap());

        let inlist = Expr::InList {
            expr: Box::new(Expr::Column(ColumnRef::bare("wifi_ap"))),
            list: vec![Expr::Literal(Value::Int(1200)), Expr::Literal(Value::Int(1201))],
            negated: true,
        };
        let b2 = bind(&inlist, &l, None, &Default::default()).unwrap();
        let row = vec![Value::Int(0), Value::Int(1300), Value::Time(0)];
        assert!(b2.eval_bool(&row, &c).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let l = layout();
        let e = Expr::col_cmp(ColumnRef::bare("owner"), CmpOp::Ne, Value::Int(5));
        let b = bind(&e, &l, None, &Default::default()).unwrap();
        let stats = StatsSink::new();
        let udfs = UdfRegistry::new();
        let params = HashMap::new();
        let c = ctx(&stats, &udfs, &params);
        let row = vec![Value::Null, Value::Int(0), Value::Time(0)];
        assert!(!b.eval_bool(&row, &c).unwrap());
    }

    #[test]
    fn udf_called_through_expr() {
        let l = layout();
        let mut udfs = UdfRegistry::new();
        udfs.register(
            "is_even",
            Arc::new(|args: &[Value], _: &UdfContext<'_>| {
                Ok(Value::Bool(args[0].as_int().unwrap_or(1) % 2 == 0))
            }),
        );
        let e = Expr::Udf {
            name: "is_even".into(),
            args: vec![Expr::Column(ColumnRef::bare("owner"))],
        };
        let b = bind(&e, &l, None, &Default::default()).unwrap();
        let stats = StatsSink::new();
        let params = HashMap::new();
        let c = ctx(&stats, &udfs, &params);
        let row = vec![Value::Int(4), Value::Int(0), Value::Time(0)];
        assert!(b.eval_bool(&row, &c).unwrap());
        assert_eq!(stats.snapshot().udf_invocations, 1);
    }

    #[test]
    fn unknown_column_fails_at_bind() {
        let l = layout();
        let e = Expr::col_eq(ColumnRef::bare("missing"), Value::Int(1));
        assert!(matches!(
            bind(&e, &l, None, &Default::default()),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn flip_operator() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Ge.flip(), CmpOp::Le);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn builders_flatten() {
        let a = Expr::col_eq(ColumnRef::bare("owner"), Value::Int(1));
        let b = Expr::col_eq(ColumnRef::bare("owner"), Value::Int(2));
        let c2 = Expr::col_eq(ColumnRef::bare("owner"), Value::Int(3));
        let combined = Expr::and(Expr::and(a, b), c2);
        match combined {
            Expr::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flat AND, got {other:?}"),
        }
    }
}
