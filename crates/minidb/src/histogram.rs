//! Equi-depth histograms for selectivity estimation.
//!
//! The paper estimates guard cardinality ρ(oc) "using histograms maintained
//! by the database" (Section 4, footnote 5). We maintain an equi-depth
//! histogram per indexed column plus a most-common-values list, the same
//! combination PostgreSQL uses, and expose estimators for the predicate
//! shapes that appear in policies: equality, ranges, and IN lists.

use crate::index::RangeBound;
use crate::value::Value;
use std::collections::HashMap;

/// Default number of equi-depth buckets.
pub const DEFAULT_BUCKETS: usize = 64;

/// Number of most-common values tracked exactly.
pub const MCV_LIMIT: usize = 32;

/// An equi-depth histogram over the `numeric_key` projection of a column's
/// values, with an exact most-common-values sidecar.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket upper bounds (numeric keys), ascending; each bucket holds
    /// roughly `total / buckets.len()` values.
    bounds: Vec<f64>,
    /// Rows per bucket.
    depth: f64,
    /// Total number of (non-null) values.
    total: u64,
    /// Number of distinct values.
    distinct: u64,
    /// Exact frequencies of the most common values.
    mcv: HashMap<Value, u64>,
    /// Minimum and maximum numeric keys.
    min: f64,
    max: f64,
}

impl Histogram {
    /// Build a histogram from the column's values.
    pub fn build(values: impl IntoIterator<Item = Value>, buckets: usize) -> Self {
        let mut freq: HashMap<Value, u64> = HashMap::new();
        for v in values {
            if !v.is_null() {
                *freq.entry(v).or_insert(0) += 1;
            }
        }
        let total: u64 = freq.values().sum();
        let distinct = freq.len() as u64;

        // Most-common values, exact.
        let mut by_freq: Vec<(&Value, &u64)> = freq.iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let mcv: HashMap<Value, u64> = by_freq
            .iter()
            .take(MCV_LIMIT)
            .map(|(v, c)| ((*v).clone(), **c))
            .collect();

        // Equi-depth bounds over the numeric keys of all values.
        let mut keys: Vec<f64> = Vec::with_capacity(total as usize);
        for (v, c) in &freq {
            if let Some(k) = v.numeric_key() {
                for _ in 0..*c {
                    keys.push(k);
                }
            }
        }
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (min, max) = match (keys.first(), keys.last()) {
            (Some(a), Some(b)) => (*a, *b),
            _ => (0.0, 0.0),
        };
        let nb = buckets.max(1).min(keys.len().max(1));
        let mut bounds = Vec::with_capacity(nb);
        if !keys.is_empty() {
            for i in 1..=nb {
                let pos = (i * keys.len()) / nb;
                bounds.push(keys[pos.saturating_sub(1).min(keys.len() - 1)]);
            }
        }
        let depth = if nb > 0 { total as f64 / nb as f64 } else { 0.0 };

        Histogram {
            bounds,
            depth,
            total,
            distinct,
            mcv,
            min,
            max,
        }
    }

    /// Total non-null row count seen at build time.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct value count seen at build time.
    pub fn distinct(&self) -> u64 {
        self.distinct
    }

    /// Estimated number of rows with column = `v`.
    pub fn estimate_eq(&self, v: &Value) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if let Some(c) = self.mcv.get(v) {
            return *c as f64;
        }
        // Uniformity over the non-MCV remainder.
        let mcv_rows: u64 = self.mcv.values().sum();
        let rest_rows = self.total.saturating_sub(mcv_rows) as f64;
        let rest_distinct = self.distinct.saturating_sub(self.mcv.len() as u64).max(1) as f64;
        (rest_rows / rest_distinct).max(0.0)
    }

    /// Estimated number of rows in an IN list.
    pub fn estimate_in(&self, values: &[Value]) -> f64 {
        values.iter().map(|v| self.estimate_eq(v)).sum::<f64>().min(self.total as f64)
    }

    /// Estimated number of rows within a range.
    pub fn estimate_range(&self, low: &RangeBound, high: &RangeBound) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let lo = match low {
            RangeBound::Unbounded => self.min,
            RangeBound::Inclusive(v) | RangeBound::Exclusive(v) => {
                v.numeric_key().unwrap_or(self.min)
            }
        };
        let hi = match high {
            RangeBound::Unbounded => self.max,
            RangeBound::Inclusive(v) | RangeBound::Exclusive(v) => {
                v.numeric_key().unwrap_or(self.max)
            }
        };
        if hi < lo {
            return 0.0;
        }
        // Fraction of buckets overlapped, with linear interpolation inside
        // partially-overlapped buckets.
        let mut est = 0.0;
        let mut prev = self.min;
        for &b in &self.bounds {
            let bucket_lo = prev;
            let bucket_hi = b;
            let width = (bucket_hi - bucket_lo).max(f64::EPSILON);
            let overlap_lo = lo.max(bucket_lo);
            let overlap_hi = hi.min(bucket_hi);
            if overlap_hi > overlap_lo {
                est += self.depth * ((overlap_hi - overlap_lo) / width).min(1.0);
            } else if (bucket_lo..=bucket_hi).contains(&lo) && lo == hi {
                // Degenerate point range inside this bucket.
                est += self.depth / width.max(1.0);
            }
            prev = b;
        }
        // A range that covers everything should estimate ~total.
        est.min(self.total as f64)
    }

    /// Selectivity (fraction of rows) of an equality predicate.
    pub fn selectivity_eq(&self, v: &Value) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.estimate_eq(v) / self.total as f64
        }
    }

    /// Selectivity (fraction of rows) of a range predicate.
    pub fn selectivity_range(&self, low: &RangeBound, high: &RangeBound) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.estimate_range(low, high) / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_ints(n: i64) -> Histogram {
        Histogram::build((0..n).map(Value::Int), DEFAULT_BUCKETS)
    }

    #[test]
    fn totals_and_distinct() {
        let h = uniform_ints(1000);
        assert_eq!(h.total(), 1000);
        assert_eq!(h.distinct(), 1000);
    }

    #[test]
    fn equality_estimate_uniform() {
        let h = uniform_ints(1000);
        let est = h.estimate_eq(&Value::Int(500));
        assert!((0.5..=2.0).contains(&est), "estimate {est} should be ~1");
    }

    #[test]
    fn mcv_is_exact_for_skew() {
        // 900 copies of 7, plus 100 distinct values.
        let vals = std::iter::repeat_n(Value::Int(7), 900)
            .chain((100..200).map(Value::Int));
        let h = Histogram::build(vals, DEFAULT_BUCKETS);
        assert_eq!(h.estimate_eq(&Value::Int(7)), 900.0);
        let small = h.estimate_eq(&Value::Int(150));
        assert!(small <= 5.0, "non-MCV estimate {small} should be small");
    }

    #[test]
    fn range_estimate_half() {
        let h = uniform_ints(10_000);
        let est = h.estimate_range(
            &RangeBound::Inclusive(Value::Int(0)),
            &RangeBound::Exclusive(Value::Int(5000)),
        );
        let frac = est / 10_000.0;
        assert!(
            (0.4..=0.6).contains(&frac),
            "half-range selectivity {frac} should be ~0.5"
        );
    }

    #[test]
    fn full_range_is_total() {
        let h = uniform_ints(5000);
        let est = h.estimate_range(&RangeBound::Unbounded, &RangeBound::Unbounded);
        assert!((est - 5000.0).abs() < 500.0);
    }

    #[test]
    fn inverted_range_is_zero() {
        let h = uniform_ints(100);
        assert_eq!(
            h.estimate_range(
                &RangeBound::Inclusive(Value::Int(80)),
                &RangeBound::Inclusive(Value::Int(20))
            ),
            0.0
        );
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::build(std::iter::empty(), DEFAULT_BUCKETS);
        assert_eq!(h.total(), 0);
        assert_eq!(h.estimate_eq(&Value::Int(1)), 0.0);
        assert_eq!(h.selectivity_range(&RangeBound::Unbounded, &RangeBound::Unbounded), 0.0);
    }

    #[test]
    fn in_list_estimate_sums() {
        let h = uniform_ints(100);
        let est = h.estimate_in(&[Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert!((1.0..=10.0).contains(&est));
    }

    #[test]
    fn time_values_estimable() {
        // Diurnal-ish times spread between 8am and 6pm.
        let vals = (0..1000u32).map(|i| Value::Time(8 * 3600 + (i * 36) % 36000));
        let h = Histogram::build(vals, DEFAULT_BUCKETS);
        let morning = h.estimate_range(
            &RangeBound::Inclusive(Value::Time(9 * 3600)),
            &RangeBound::Inclusive(Value::Time(10 * 3600)),
        );
        assert!(morning > 0.0);
        assert!(morning < 1000.0);
    }
}
