//! Secondary indexes.
//!
//! A B-tree-ordered map from column value to the posting list of row ids.
//! Supports the probe shapes SIEVE's rewrites generate: point lookups
//! (`owner = 120`), ranges (`ts_time BETWEEN 09:00 AND 10:00`), and IN
//! lists. Each probe charges one index descent; fetching the rows
//! themselves is charged by [`crate::table::Table::fetch`].

use crate::stats::StatsSink;
use crate::table::{Row, RowId};
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Which side of a range bound is included; mirrors the policy model's
/// comparison-operator set for ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeBound {
    /// No bound on this side.
    Unbounded,
    /// Bound including the endpoint (`>=` / `<=`).
    Inclusive(Value),
    /// Bound excluding the endpoint (`>` / `<`).
    Exclusive(Value),
}

impl RangeBound {
    fn as_std(&self) -> Bound<&Value> {
        match self {
            RangeBound::Unbounded => Bound::Unbounded,
            RangeBound::Inclusive(v) => Bound::Included(v),
            RangeBound::Exclusive(v) => Bound::Excluded(v),
        }
    }
}

/// A secondary index over one column of a table.
#[derive(Debug, Clone)]
pub struct Index {
    /// Name of the index (e.g. `idx_wifi_dataset_owner`).
    pub name: String,
    /// Indexed column position in the base table.
    pub column: usize,
    /// Indexed column name (for planner/EXPLAIN display).
    pub column_name: String,
    entries: BTreeMap<Value, Vec<RowId>>,
    len: u64,
}

impl Index {
    /// Build an index over `column` from the given rows.
    pub fn build<'a>(
        name: impl Into<String>,
        column: usize,
        column_name: impl Into<String>,
        rows: impl IntoIterator<Item = (RowId, &'a Row)>,
    ) -> Self {
        let mut entries: BTreeMap<Value, Vec<RowId>> = BTreeMap::new();
        let mut len = 0u64;
        for (id, row) in rows {
            entries.entry(row[column].clone()).or_default().push(id);
            len += 1;
        }
        Index {
            name: name.into(),
            column,
            column_name: column_name.into(),
            entries,
            len,
        }
    }

    /// Register one newly inserted row.
    pub fn insert(&mut self, id: RowId, row: &Row) {
        self.entries
            .entry(row[self.column].clone())
            .or_default()
            .push(id);
        self.len += 1;
    }

    /// Number of indexed entries (rows).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Point lookup: rows with `col = key`. One probe charged.
    pub fn lookup(&self, key: &Value, stats: &StatsSink) -> Vec<RowId> {
        stats.index_probes(1);
        self.entries.get(key).cloned().unwrap_or_default()
    }

    /// Range scan between two bounds. One probe charged (a single B-tree
    /// descent followed by a leaf walk).
    pub fn range(&self, low: &RangeBound, high: &RangeBound, stats: &StatsSink) -> Vec<RowId> {
        stats.index_probes(1);
        // An (Excluded(x), Excluded(x)) std range panics; an empty interval
        // is a legal (if silly) policy predicate, so detect inverted /
        // empty intervals up front.
        if let (RangeBound::Inclusive(a) | RangeBound::Exclusive(a), RangeBound::Inclusive(b) | RangeBound::Exclusive(b)) = (low, high) {
            if a > b
                || (a == b
                    && (matches!(low, RangeBound::Exclusive(_))
                        || matches!(high, RangeBound::Exclusive(_))))
            {
                return Vec::new();
            }
        }
        self.entries
            .range::<Value, _>((low.as_std(), high.as_std()))
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// IN-list lookup: one probe per list element.
    pub fn lookup_in(&self, keys: &[Value], stats: &StatsSink) -> Vec<RowId> {
        stats.index_probes(keys.len() as u64);
        let mut out: Vec<RowId> = keys
            .iter()
            .flat_map(|k| self.entries.get(k).into_iter().flatten().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Exact number of rows matching a point key (used by EXPLAIN for
    /// precise cardinalities where the engine has them).
    pub fn count_eq(&self, key: &Value) -> u64 {
        self.entries.get(key).map_or(0, |v| v.len() as u64)
    }

    /// Exact number of rows in a range.
    pub fn count_range(&self, low: &RangeBound, high: &RangeBound) -> u64 {
        if let (RangeBound::Inclusive(a) | RangeBound::Exclusive(a), RangeBound::Inclusive(b) | RangeBound::Exclusive(b)) = (low, high) {
            if a > b
                || (a == b
                    && (matches!(low, RangeBound::Exclusive(_))
                        || matches!(high, RangeBound::Exclusive(_))))
            {
                return 0;
            }
        }
        self.entries
            .range::<Value, _>((low.as_std(), high.as_std()))
            .map(|(_, ids)| ids.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::table::Table;
    use crate::value::DataType;

    fn indexed_table() -> (Table, Index) {
        let mut t = Table::new(TableSchema::of(
            "t",
            &[("id", DataType::Int), ("owner", DataType::Int)],
        ));
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 10)]);
        }
        let stats = StatsSink::new();
        let idx = Index::build("idx_owner", 1, "owner", t.scan(&stats));
        (t, idx)
    }

    #[test]
    fn point_lookup_finds_all_matches() {
        let (_, idx) = indexed_table();
        let stats = StatsSink::new();
        let hits = idx.lookup(&Value::Int(3), &stats);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|&id| id % 10 == 3));
        assert_eq!(stats.snapshot().index_probes, 1);
    }

    #[test]
    fn missing_key_is_empty() {
        let (_, idx) = indexed_table();
        let stats = StatsSink::new();
        assert!(idx.lookup(&Value::Int(42), &stats).is_empty());
    }

    #[test]
    fn range_scan_inclusive_exclusive() {
        let (_, idx) = indexed_table();
        let stats = StatsSink::new();
        let hits = idx.range(
            &RangeBound::Inclusive(Value::Int(2)),
            &RangeBound::Exclusive(Value::Int(4)),
            &stats,
        );
        assert_eq!(hits.len(), 20); // owners 2 and 3
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let (_, idx) = indexed_table();
        let stats = StatsSink::new();
        assert!(idx
            .range(
                &RangeBound::Exclusive(Value::Int(5)),
                &RangeBound::Exclusive(Value::Int(5)),
                &stats
            )
            .is_empty());
        assert!(idx
            .range(
                &RangeBound::Inclusive(Value::Int(9)),
                &RangeBound::Inclusive(Value::Int(1)),
                &stats
            )
            .is_empty());
    }

    #[test]
    fn in_list_dedups_and_counts_probes() {
        let (_, idx) = indexed_table();
        let stats = StatsSink::new();
        let hits = idx.lookup_in(&[Value::Int(1), Value::Int(1), Value::Int(2)], &stats);
        assert_eq!(hits.len(), 20);
        assert_eq!(stats.snapshot().index_probes, 3);
    }

    #[test]
    fn counts_are_exact() {
        let (_, idx) = indexed_table();
        assert_eq!(idx.count_eq(&Value::Int(0)), 10);
        assert_eq!(
            idx.count_range(
                &RangeBound::Unbounded,
                &RangeBound::Exclusive(Value::Int(5))
            ),
            50
        );
        assert_eq!(idx.distinct_keys(), 10);
    }

    #[test]
    fn incremental_insert_visible() {
        let (mut t, mut idx) = indexed_table();
        let id = t.insert(vec![Value::Int(100), Value::Int(55)]);
        idx.insert(id, t.row(id));
        let stats = StatsSink::new();
        assert_eq!(idx.lookup(&Value::Int(55), &stats), vec![id]);
        assert_eq!(idx.len(), 101);
    }
}
