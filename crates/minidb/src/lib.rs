//! `minidb` — the embedded relational engine substrate for the SIEVE
//! reproduction.
//!
//! The SIEVE paper (Pappachan et al., VLDB 2020) layers its middleware on
//! MySQL and PostgreSQL, relying on a specific set of DBMS features: heap
//! tables with secondary indexes, per-column histograms, `EXPLAIN`,
//! index-usage hints, UDFs, and (on PostgreSQL) bitmap OR-ing of index
//! scans. This crate implements exactly that feature set from scratch so
//! the middleware can be reproduced and measured without a server:
//!
//! * [`catalog::Database`] — the façade: tables, indexes, histograms, UDFs,
//!   query execution, EXPLAIN.
//! * [`planner::DbProfile`] — `MySqlLike` (honours hints) vs `PostgresLike`
//!   (ignores hints, supports BitmapOr), reproducing the behavioural
//!   difference Experiment 4 of the paper measures.
//! * [`stats`] — a deterministic simulated cost clock (pages, tuples,
//!   predicate evaluations, UDF invocations) alongside wall time.
//! * [`sql`] — a from-scratch SQL subset parser and renderer so the
//!   middleware can intercept and rewrite textual queries as in the paper.

#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod histogram;
pub mod index;
pub mod plan;
pub mod planner;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod udf;
pub mod value;

pub use catalog::{Database, TableEntry};
pub use error::{DbError, DbResult};
pub use exec::{ExecOptions, QueryResult};
pub use explain::{ExplainOutput, RelationPlan};
pub use expr::{CmpOp, ColumnRef, Expr};
pub use index::RangeBound;
pub use plan::{AggFunc, IndexHint, SelectItem, SelectQuery, TableRef, TableSource, WithClause};
pub use planner::{AccessPlan, DbProfile, ScanOptions, MORSEL_ROWS, PARALLEL_MIN_ROWS};
pub use schema::{Column, TableSchema};
pub use stats::{CostWeights, Counters, ExecStats, StatsSink};
pub use table::{Row, RowId};
pub use udf::{Udf, UdfContext, UdfRegistry};
pub use value::{DataType, Value};
