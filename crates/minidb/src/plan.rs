//! Logical query representation: the SELECT-FROM-WHERE shape the paper's
//! query model uses (Section 3.1), plus the pieces SIEVE's rewrites need —
//! `WITH` clauses, index-usage hints, GROUP BY and aggregates.

use crate::expr::{ColumnRef, Expr};

/// Index-usage hint attached to a table reference, mirroring the paper's
/// `FORCE INDEX(…)` / `USE INDEX()` rewrites (Sections 5.3 and 5.5).
/// Whether the engine honors them depends on the optimizer profile
/// ([`crate::planner::DbProfile`]): the MySQL-like profile obeys them, the
/// PostgreSQL-like profile ignores them, as in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum IndexHint {
    /// No hint; planner chooses.
    #[default]
    None,
    /// `FORCE INDEX (col, …)`: use index scans over the named columns; a
    /// table scan only if no branch can use them.
    Force(Vec<String>),
    /// `USE INDEX ()`: ignore all indexes (plan a sequential scan).
    IgnoreAll,
}

/// What a FROM entry ranges over.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A named base table, temp table, or WITH-clause result.
    Named(String),
    /// A derived table `( SELECT … )`.
    Derived(Box<SelectQuery>),
}

/// One FROM entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Source relation.
    pub source: TableSource,
    /// Alias the query refers to it by.
    pub alias: String,
    /// Optional index-usage hint.
    pub hint: IndexHint,
}

impl TableRef {
    /// Reference a named table under its own name.
    pub fn named(table: impl Into<String>) -> Self {
        let t = table.into();
        TableRef {
            alias: t.clone(),
            source: TableSource::Named(t),
            hint: IndexHint::None,
        }
    }

    /// Reference a named table under an alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            source: TableSource::Named(table.into()),
            alias: alias.into(),
            hint: IndexHint::None,
        }
    }

    /// Attach a hint.
    pub fn with_hint(mut self, hint: IndexHint) -> Self {
        self.hint = hint;
        self
    }
}

/// Aggregate functions supported by GROUP BY queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(col)`.
    Count,
    /// `COUNT(DISTINCT col)`.
    CountDistinct,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl AggFunc {
    /// SQL name of the function.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count | AggFunc::CountDistinct => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns of the FROM layout.
    Star,
    /// A plain column, optionally renamed.
    Column {
        /// The referenced column.
        column: ColumnRef,
        /// Output name (`AS alias`).
        alias: Option<String>,
    },
    /// An aggregate over a column (`None` column means `COUNT(*)`).
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated column; `None` only for `COUNT(*)`.
        column: Option<ColumnRef>,
        /// Output name.
        alias: Option<String>,
    },
}

/// A `WITH name AS (query)` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct WithClause {
    /// Name the main query refers to.
    pub name: String,
    /// Defining query.
    pub query: SelectQuery,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// WITH clauses, evaluated first, visible to later clauses and the body.
    pub with: Vec<WithClause>,
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM entries (comma joins; join predicates live in `predicate`).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

impl SelectQuery {
    /// `SELECT * FROM table`.
    pub fn star_from(table: impl Into<String>) -> Self {
        SelectQuery {
            with: Vec::new(),
            select: vec![SelectItem::Star],
            from: vec![TableRef::named(table)],
            predicate: None,
            group_by: Vec::new(),
            limit: None,
        }
    }

    /// Set the WHERE predicate.
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// AND an extra predicate onto the existing WHERE.
    pub fn and_filter(mut self, predicate: Expr) -> Self {
        self.predicate = Some(match self.predicate.take() {
            Some(p) => Expr::and(p, predicate),
            None => predicate,
        });
        self
    }

    /// Prepend a WITH clause.
    pub fn with_clause(mut self, name: impl Into<String>, query: SelectQuery) -> Self {
        self.with.push(WithClause {
            name: name.into(),
            query,
        });
        self
    }

    /// Replace the FROM list.
    pub fn from_tables(mut self, tables: Vec<TableRef>) -> Self {
        self.from = tables;
        self
    }

    /// True iff any select item is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.select
            .iter()
            .any(|s| matches!(s, SelectItem::Aggregate { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn builder_composes() {
        let q = SelectQuery::star_from("wifi_dataset")
            .filter(Expr::col_eq(ColumnRef::bare("owner"), Value::Int(7)))
            .and_filter(Expr::col_eq(ColumnRef::bare("wifi_ap"), Value::Int(1200)));
        let p = q.predicate.as_ref().unwrap();
        assert_eq!(p.conjuncts().len(), 2);
        assert_eq!(q.from[0].alias, "wifi_dataset");
        assert!(!q.has_aggregates());
    }

    #[test]
    fn with_clause_registration() {
        let inner = SelectQuery::star_from("wifi_dataset");
        let q = SelectQuery::star_from("wifi_pol").with_clause("wifi_pol", inner);
        assert_eq!(q.with.len(), 1);
        assert_eq!(q.with[0].name, "wifi_pol");
    }

    #[test]
    fn hints_attach() {
        let t = TableRef::aliased("wifi_dataset", "w")
            .with_hint(IndexHint::Force(vec!["owner".into()]));
        assert_eq!(t.hint, IndexHint::Force(vec!["owner".into()]));
        assert_eq!(t.alias, "w");
    }

    #[test]
    fn aggregate_detection() {
        let q = SelectQuery {
            with: vec![],
            select: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None,
                alias: Some("n".into()),
            }],
            from: vec![TableRef::named("t")],
            predicate: None,
            group_by: vec![ColumnRef::bare("g")],
            limit: None,
        };
        assert!(q.has_aggregates());
    }
}
