//! Access-path planning.
//!
//! Two optimizer profiles reproduce the DBMS behaviours the paper's
//! experiments depend on (Sections 5.3, 7):
//!
//! * [`DbProfile::MySqlLike`] — honours `FORCE INDEX`/`USE INDEX()` hints
//!   (the connector SIEVE uses on MySQL), uses *one* index per table scan
//!   when unhinted, and falls back to a sequential scan for disjunctive
//!   predicates without hints (the behaviour that makes BaselineP degrade).
//! * [`DbProfile::PostgresLike`] — ignores hints, picks access paths by
//!   cost, and can OR many index scans together through an in-memory bitmap
//!   before a single heap fetch (the `BitmapOr` behaviour Experiment 4
//!   credits for SIEVE's larger speedups on PostgreSQL).

use crate::catalog::TableEntry;
use crate::expr::{CmpOp, ColumnRef, Expr};
use crate::index::RangeBound;
use crate::plan::IndexHint;
use crate::schema::TableSchema;
use crate::stats::StatsSink;
use crate::table::RowId;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Optimizer profile: which real-world DBMS the planner imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbProfile {
    /// MySQL/InnoDB-like: hints honoured, no index-merge without hints.
    MySqlLike,
    /// PostgreSQL-like: hints ignored, cost-based, BitmapOr available.
    PostgresLike,
}

/// Fraction of the table below which an unhinted MySQL-like planner picks a
/// single index scan over a sequential scan.
pub const MYSQL_INDEX_FRACTION: f64 = 0.25;

/// Fraction of the table below which the PostgreSQL-like planner ORs index
/// scans through a bitmap rather than scanning sequentially.
pub const PG_BITMAP_FRACTION: f64 = 0.40;

/// Rows per morsel for parallel scans. Big enough that a worker's claim
/// amortizes the atomic fetch-add and per-morsel deadline check, small
/// enough that skewed filters still load-balance across workers.
pub const MORSEL_ROWS: usize = 2048;

/// Below this row count a scan stays sequential regardless of the thread
/// knob: spawning scoped workers costs more than filtering the rows.
pub const PARALLEL_MIN_ROWS: usize = 2 * MORSEL_ROWS;

/// Execution-environment knobs that influence access-path choice (as
/// opposed to [`DbProfile`], which selects *which optimizer* to imitate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanOptions {
    /// Worker threads available for morsel-parallel scans; `0` or `1`
    /// means sequential execution.
    pub threads: usize,
}

impl ScanOptions {
    /// Effective scan parallelism for a table of `rows` rows: the number
    /// of workers a scan would actually use, or 1 when the input is too
    /// small to beat the thread-spawn cost.
    pub fn scan_ways(&self, rows: usize) -> usize {
        if self.threads >= 2 && rows >= PARALLEL_MIN_ROWS {
            self.threads.min(rows.div_ceil(MORSEL_ROWS))
        } else {
            1
        }
    }
}

/// A single index probe the executor can run.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexProbe {
    /// `col = key`.
    Point {
        /// Indexed column.
        column: String,
        /// Probe key.
        key: Value,
    },
    /// `col` within a range.
    Range {
        /// Indexed column.
        column: String,
        /// Lower bound.
        low: RangeBound,
        /// Upper bound.
        high: RangeBound,
    },
    /// `col IN (…)`.
    InList {
        /// Indexed column.
        column: String,
        /// Probe keys.
        keys: Vec<Value>,
    },
}

impl IndexProbe {
    /// The probed column.
    pub fn column(&self) -> &str {
        match self {
            IndexProbe::Point { column, .. }
            | IndexProbe::Range { column, .. }
            | IndexProbe::InList { column, .. } => column,
        }
    }

    /// Estimated matching rows, using the histogram when available and
    /// falling back to exact index counts (a real optimizer's statistics
    /// are also histogram-first).
    pub fn estimate_rows(&self, entry: &TableEntry) -> f64 {
        let hist = entry.histogram(self.column());
        match self {
            IndexProbe::Point { key, .. } => match hist {
                Some(h) => h.estimate_eq(key),
                None => entry
                    .index_on(self.column())
                    .map_or(0.0, |i| i.count_eq(key) as f64),
            },
            IndexProbe::Range { low, high, .. } => match hist {
                Some(h) => h.estimate_range(low, high),
                None => entry
                    .index_on(self.column())
                    .map_or(0.0, |i| i.count_range(low, high) as f64),
            },
            IndexProbe::InList { keys, .. } => match hist {
                Some(h) => h.estimate_in(keys),
                None => entry.index_on(self.column()).map_or(0.0, |i| {
                    keys.iter().map(|k| i.count_eq(k) as f64).sum()
                }),
            },
        }
    }

    /// True iff the rows this probe returns are *exactly* the rows
    /// satisfying the comparison it was derived from, so the executor can
    /// skip re-filtering them. NULL keys break the equivalence: the index
    /// stores NULL (it sorts below every value), but SQL comparisons
    /// against NULL are false — so a NULL probe key, or a range whose low
    /// end is unbounded (and therefore starts at the NULL keys), must keep
    /// the residual filter.
    pub fn is_exact(&self) -> bool {
        match self {
            IndexProbe::Point { key, .. } => !key.is_null(),
            IndexProbe::Range { low, high, .. } => {
                let bounded_non_null = |b: &RangeBound| match b {
                    RangeBound::Inclusive(v) | RangeBound::Exclusive(v) => !v.is_null(),
                    RangeBound::Unbounded => false,
                };
                bounded_non_null(low)
                    && (matches!(high, RangeBound::Unbounded) || bounded_non_null(high))
            }
            IndexProbe::InList { keys, .. } => keys.iter().all(|k| !k.is_null()),
        }
    }

    /// Run the probe, returning matching row ids.
    pub fn run(&self, entry: &TableEntry, stats: &StatsSink) -> Vec<RowId> {
        let idx = match entry.index_on(self.column()) {
            Some(i) => i,
            None => return Vec::new(),
        };
        match self {
            IndexProbe::Point { key, .. } => idx.lookup(key, stats),
            IndexProbe::Range { low, high, .. } => idx.range(low, high, stats),
            IndexProbe::InList { keys, .. } => idx.lookup_in(keys, stats),
        }
    }
}

/// Chosen access path for one table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPlan {
    /// Sequential scan; the full predicate is applied as a filter.
    SeqScan,
    /// Morsel-parallel sequential scan: the row slice is split into
    /// [`MORSEL_ROWS`]-sized chunks claimed by scoped worker threads, and
    /// the per-morsel selections are concatenated in morsel order (so the
    /// result is row-identical to [`AccessPlan::SeqScan`]).
    ParallelScan {
        /// Number of morsels the row slice splits into.
        morsels: usize,
    },
    /// One index probe per disjunct of the predicate. `bitmap` selects the
    /// PostgreSQL behaviour (dedup row ids before one heap fetch) versus
    /// the MySQL `UNION` behaviour (fetch per branch, dedup after).
    IndexOr {
        /// One probe per predicate branch.
        probes: Vec<IndexProbe>,
        /// Dedup before fetch (PostgreSQL) vs after (MySQL UNION).
        bitmap: bool,
        /// Whether the fetched rows still need the full predicate applied.
        /// `false` only when every disjunct is a single exact probe
        /// (see [`IndexProbe::is_exact`]), so probe ∪ ≡ predicate.
        residual: bool,
    },
}

impl AccessPlan {
    /// Human-readable access label for EXPLAIN output.
    pub fn describe(&self) -> String {
        match self {
            AccessPlan::SeqScan => "SeqScan".to_string(),
            AccessPlan::ParallelScan { morsels } => {
                format!("ParallelScan(morsels={morsels})")
            }
            AccessPlan::IndexOr {
                probes,
                bitmap,
                residual,
            } => {
                let cols: Vec<&str> = probes.iter().map(|p| p.column()).collect();
                let mut uniq = cols.clone();
                uniq.sort_unstable();
                uniq.dedup();
                let tail = if *residual { ", residual" } else { ", exact" };
                if *bitmap && probes.len() > 1 {
                    format!(
                        "BitmapOr(col={}, {} probes{tail})",
                        uniq.join(","),
                        probes.len()
                    )
                } else if probes.len() > 1 {
                    format!(
                        "IndexUnion(col={}, {} probes{tail})",
                        uniq.join(","),
                        probes.len()
                    )
                } else {
                    format!("IndexScan({}{tail})", uniq.join(","))
                }
            }
        }
    }

    /// Estimated rows this plan reads from the heap.
    pub fn estimate_rows(&self, entry: &TableEntry) -> f64 {
        match self {
            AccessPlan::SeqScan | AccessPlan::ParallelScan { .. } => entry.table.len() as f64,
            AccessPlan::IndexOr { probes, .. } => probes
                .iter()
                .map(|p| p.estimate_rows(entry))
                .sum::<f64>()
                .min(entry.table.len() as f64),
        }
    }
}

/// Try to turn one expression into an index probe on `entry`, restricted to
/// `allowed` columns when a FORCE INDEX hint names them.
fn probe_from_expr(
    e: &Expr,
    entry: &TableEntry,
    alias: &str,
    allowed: Option<&[String]>,
) -> Option<IndexProbe> {
    let col_ok = |c: &ColumnRef| -> Option<String> {
        match &c.table {
            Some(t) if t != alias => return None,
            _ => {}
        }
        entry.schema().column_index(&c.column)?;
        if !entry.has_index(&c.column) {
            return None;
        }
        if let Some(allow) = allowed {
            if !allow.iter().any(|a| a == &c.column) {
                return None;
            }
        }
        Some(c.column.clone())
    };

    match e {
        Expr::Cmp { op, lhs, rhs } => {
            let (col, lit, op) = match (&**lhs, &**rhs) {
                (Expr::Column(c), Expr::Literal(v)) => (col_ok(c)?, v.clone(), *op),
                (Expr::Literal(v), Expr::Column(c)) => (col_ok(c)?, v.clone(), op.flip()),
                _ => return None,
            };
            Some(match op {
                CmpOp::Eq => IndexProbe::Point { column: col, key: lit },
                CmpOp::Lt => IndexProbe::Range {
                    column: col,
                    low: RangeBound::Unbounded,
                    high: RangeBound::Exclusive(lit),
                },
                CmpOp::Le => IndexProbe::Range {
                    column: col,
                    low: RangeBound::Unbounded,
                    high: RangeBound::Inclusive(lit),
                },
                CmpOp::Gt => IndexProbe::Range {
                    column: col,
                    low: RangeBound::Exclusive(lit),
                    high: RangeBound::Unbounded,
                },
                CmpOp::Ge => IndexProbe::Range {
                    column: col,
                    low: RangeBound::Inclusive(lit),
                    high: RangeBound::Unbounded,
                },
                CmpOp::Ne => return None,
            })
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let col = match &**expr {
                Expr::Column(c) => col_ok(c)?,
                _ => return None,
            };
            let (lo, hi) = match (&**low, &**high) {
                (Expr::Literal(a), Expr::Literal(b)) => (a.clone(), b.clone()),
                _ => return None,
            };
            Some(IndexProbe::Range {
                column: col,
                low: RangeBound::Inclusive(lo),
                high: RangeBound::Inclusive(hi),
            })
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let col = match &**expr {
                Expr::Column(c) => col_ok(c)?,
                _ => return None,
            };
            let keys: Option<Vec<Value>> = list
                .iter()
                .map(|e| match e {
                    Expr::Literal(v) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            Some(IndexProbe::InList { column: col, keys: keys? })
        }
        _ => None,
    }
}

/// Best (lowest-cardinality) probe among the conjuncts of `disjunct`.
fn best_probe_in_conjuncts(
    disjunct: &Expr,
    entry: &TableEntry,
    alias: &str,
    allowed: Option<&[String]>,
) -> Option<IndexProbe> {
    disjunct
        .conjuncts()
        .iter()
        .filter_map(|c| probe_from_expr(c, entry, alias, allowed))
        .min_by(|a, b| {
            a.estimate_rows(entry)
                .partial_cmp(&b.estimate_rows(entry))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
}

/// One probe per disjunct of `pred`; `None` if any disjunct has no probe
/// (an unguardable branch forces a scan — every row could match it). The
/// returned flag is true when the probe union covers the predicate
/// *exactly* — every disjunct is a single conjunct whose probe
/// [`IndexProbe::is_exact`] — so the executor can skip the residual
/// filter. Guard fragments (`owner = X`, `purpose ∈ …`) are precisely this
/// shape.
fn probes_per_disjunct(
    pred: &Expr,
    entry: &TableEntry,
    alias: &str,
    allowed: Option<&[String]>,
) -> Option<(Vec<IndexProbe>, bool)> {
    let mut probes = Vec::new();
    let mut exact = true;
    for d in pred.disjuncts() {
        let p = best_probe_in_conjuncts(d, entry, alias, allowed)?;
        exact = exact && d.conjuncts().len() == 1 && p.is_exact();
        probes.push(p);
    }
    Some((probes, exact))
}

/// For an AND predicate, consider each conjunct that is itself an OR whose
/// every branch is probe-able (PostgreSQL plans these as BitmapOr under the
/// enclosing filter). Returns the cheapest such conjunct's probes.
fn probes_from_or_conjunct(
    pred: &Expr,
    entry: &TableEntry,
    alias: &str,
) -> Option<Vec<IndexProbe>> {
    let mut best: Option<(f64, Vec<IndexProbe>)> = None;
    for conj in pred.conjuncts() {
        if let Expr::Or(_) = conj {
            if let Some((probes, _)) = probes_per_disjunct(conj, entry, alias, None) {
                let est: f64 = probes.iter().map(|p| p.estimate_rows(entry)).sum();
                if best.as_ref().is_none_or(|(b, _)| est < *b) {
                    best = Some((est, probes));
                }
            }
        }
    }
    best.map(|(_, p)| p)
}

/// The scan-shaped fallback plan: morsel-parallel when the thread knob and
/// table size justify it, plain sequential otherwise.
fn scan_plan(entry: &TableEntry, scan: ScanOptions) -> AccessPlan {
    let rows = entry.table.len();
    if scan.scan_ways(rows) > 1 {
        AccessPlan::ParallelScan {
            morsels: rows.div_ceil(MORSEL_ROWS),
        }
    } else {
        AccessPlan::SeqScan
    }
}

/// Plan the access path for one table given its local predicate and hint,
/// with default [`ScanOptions`] (sequential scans).
pub fn plan_access(
    entry: &TableEntry,
    alias: &str,
    predicate: Option<&Expr>,
    hint: &IndexHint,
    profile: DbProfile,
) -> AccessPlan {
    plan_access_opts(entry, alias, predicate, hint, profile, ScanOptions::default())
}

/// Plan the access path for one table given its local predicate, hint, and
/// execution environment.
///
/// Decision rule: index-shaped candidates (per-disjunct probe unions, and
/// on PostgreSQL BitmapOr over an OR-conjunct) are gated on estimated
/// selectivity against the *scan they would replace*. With `scan.threads`
/// workers a scan is ~`scan_ways` times cheaper, so the PostgreSQL-like
/// profile shrinks its bitmap gate proportionally; the MySQL-like profile
/// models a single-threaded optimizer (classic InnoDB has no parallel
/// query) and keeps its gate fixed. When no index path survives the gate,
/// the fallback is [`scan_plan`] — parallel when worthwhile.
pub fn plan_access_opts(
    entry: &TableEntry,
    alias: &str,
    predicate: Option<&Expr>,
    hint: &IndexHint,
    profile: DbProfile,
    scan: ScanOptions,
) -> AccessPlan {
    let Some(pred) = predicate else {
        return scan_plan(entry, scan);
    };
    let table_rows = entry.table.len().max(1) as f64;

    // Hints are a MySQL-connector feature; the PostgreSQL-like profile
    // ignores them entirely (paper Section 5.3).
    if profile == DbProfile::MySqlLike {
        match hint {
            IndexHint::IgnoreAll => return scan_plan(entry, scan),
            IndexHint::Force(cols) => {
                if let Some((probes, exact)) = probes_per_disjunct(pred, entry, alias, Some(cols))
                {
                    return AccessPlan::IndexOr {
                        probes,
                        bitmap: false,
                        residual: !exact,
                    };
                }
                // FORCE INDEX that cannot be applied degenerates to a scan.
                return scan_plan(entry, scan);
            }
            IndexHint::None => {}
        }
    }

    match profile {
        DbProfile::MySqlLike => {
            // No index-merge without hints: only a single-branch predicate
            // can use an index, and only when selective enough.
            let disjuncts = pred.disjuncts();
            if disjuncts.len() == 1 {
                if let Some(p) = best_probe_in_conjuncts(disjuncts[0], entry, alias, None) {
                    if p.estimate_rows(entry) / table_rows <= MYSQL_INDEX_FRACTION {
                        let exact = disjuncts[0].conjuncts().len() == 1 && p.is_exact();
                        return AccessPlan::IndexOr {
                            probes: vec![p],
                            bitmap: false,
                            residual: !exact,
                        };
                    }
                }
            }
            scan_plan(entry, scan)
        }
        DbProfile::PostgresLike => {
            // Cost-based: try (a) one probe per top-level disjunct, and
            // (b) BitmapOr over an OR-shaped conjunct inside an AND.
            let candidates = [
                probes_per_disjunct(pred, entry, alias, None),
                probes_from_or_conjunct(pred, entry, alias).map(|p| (p, false)),
            ];
            let mut best: Option<(f64, Vec<IndexProbe>, bool)> = None;
            for (cand, exact) in candidates.into_iter().flatten() {
                let est: f64 = cand.iter().map(|p| p.estimate_rows(entry)).sum();
                if best.as_ref().is_none_or(|(b, _, _)| est < *b) {
                    best = Some((est, cand, exact));
                }
            }
            // A parallel scan is ~scan_ways× cheaper than a sequential one,
            // so an index path must be proportionally more selective to win.
            let gate = PG_BITMAP_FRACTION / scan.scan_ways(entry.table.len()) as f64;
            match best {
                Some((est, probes, exact)) if est / table_rows <= gate => AccessPlan::IndexOr {
                    probes,
                    bitmap: true,
                    residual: !exact,
                },
                _ => scan_plan(entry, scan),
            }
        }
    }
}

/// The best (most selective) sargable probe for a conjunctive predicate
/// over one table, ignoring selectivity thresholds. Middleware cost models
/// (SIEVE Section 5.5) use this to obtain the optimizer's `ρ(p)` estimate
/// for a query predicate, as `EXPLAIN` would report it.
pub fn best_sargable_probe(
    entry: &TableEntry,
    alias: &str,
    pred: &Expr,
) -> Option<IndexProbe> {
    best_probe_in_conjuncts(pred, entry, alias, None)
}

/// An equi-join condition extracted from the WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinCond {
    /// Alias on one side.
    pub left_alias: String,
    /// Column on the left side.
    pub left_column: String,
    /// Alias on the other side.
    pub right_alias: String,
    /// Column on the right side.
    pub right_column: String,
}

/// Result of classifying a WHERE clause against the FROM aliases.
#[derive(Debug, Default)]
pub struct ClassifiedPredicate {
    /// Conjuncts that reference exactly one alias, grouped by it.
    pub local: HashMap<String, Vec<Expr>>,
    /// Equi-join conditions between two aliases.
    pub joins: Vec<JoinCond>,
    /// Everything else, applied after the join.
    pub residual: Vec<Expr>,
}

impl ClassifiedPredicate {
    /// The conjunction of all local conjuncts of `alias`, if any.
    pub fn local_predicate(&self, alias: &str) -> Option<Expr> {
        self.local
            .get(alias)
            .filter(|v| !v.is_empty())
            .map(|v| Expr::all(v.clone()))
    }
}

/// Alias owning a column reference, given the FROM schemas. Unqualified
/// columns resolve to the unique schema containing them (ambiguity and
/// misses land in `residual` handling, which re-checks at bind time).
fn alias_of(
    c: &ColumnRef,
    tables: &[(String, Arc<TableSchema>)],
) -> Option<String> {
    match &c.table {
        Some(t) => tables.iter().find(|(a, _)| a == t).map(|(a, _)| a.clone()),
        None => {
            let mut found = None;
            for (a, s) in tables {
                if s.column_index(&c.column).is_some() {
                    if found.is_some() {
                        return None;
                    }
                    found = Some(a.clone());
                }
            }
            found
        }
    }
}

/// Split a WHERE clause into per-table local predicates, equi-join
/// conditions, and a residual, for left-deep join planning.
pub fn classify_predicate(
    pred: &Expr,
    tables: &[(String, Arc<TableSchema>)],
) -> ClassifiedPredicate {
    let mut out = ClassifiedPredicate::default();
    for conj in pred.conjuncts() {
        // Equi-join shape: col = col across two aliases.
        if let Expr::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        } = conj
        {
            if let (Expr::Column(a), Expr::Column(b)) = (&**lhs, &**rhs) {
                if let (Some(la), Some(lb)) = (alias_of(a, tables), alias_of(b, tables)) {
                    if la != lb {
                        out.joins.push(JoinCond {
                            left_alias: la,
                            left_column: a.column.clone(),
                            right_alias: lb,
                            right_column: b.column.clone(),
                        });
                        continue;
                    }
                }
            }
        }
        // Collect referenced aliases.
        let mut aliases: Vec<String> = Vec::new();
        let mut unresolved = false;
        conj.visit_columns(&mut |c| match alias_of(c, tables) {
            Some(a) => {
                if !aliases.contains(&a) {
                    aliases.push(a);
                }
            }
            None => unresolved = true,
        });
        if unresolved {
            out.residual.push(conj.clone());
        } else {
            match aliases.len() {
                0 | 1 => {
                    // Constant predicates attach to the first table.
                    let alias = aliases
                        .into_iter()
                        .next()
                        .unwrap_or_else(|| tables[0].0.clone());
                    out.local.entry(alias).or_default().push(conj.clone());
                }
                _ => out.residual.push(conj.clone()),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn setup(profile: DbProfile) -> Database {
        let mut db = Database::new(profile);
        db.create_table(TableSchema::of(
            "w",
            &[
                ("id", DataType::Int),
                ("owner", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("ts_time", DataType::Time),
            ],
        ))
        .unwrap();
        for i in 0..2000i64 {
            db.insert(
                "w",
                vec![
                    Value::Int(i),
                    Value::Int(i % 100),
                    Value::Int(1000 + i % 20),
                    Value::Time(((i * 37) % 86400) as u32),
                ],
            )
            .unwrap();
        }
        db.create_index("w", "owner").unwrap();
        db.create_index("w", "wifi_ap").unwrap();
        db.analyze("w").unwrap();
        db
    }

    fn owner_eq(v: i64) -> Expr {
        Expr::col_eq(ColumnRef::bare("owner"), Value::Int(v))
    }

    #[test]
    fn selective_point_uses_index_mysql() {
        let db = setup(DbProfile::MySqlLike);
        let entry = db.table("w").unwrap();
        let plan = plan_access(entry, "w", Some(&owner_eq(5)), &IndexHint::None, DbProfile::MySqlLike);
        assert!(matches!(
            plan,
            AccessPlan::IndexOr { ref probes, bitmap: false, .. } if probes.len() == 1
        ));
    }

    #[test]
    fn or_without_hint_scans_on_mysql() {
        let db = setup(DbProfile::MySqlLike);
        let entry = db.table("w").unwrap();
        let pred = Expr::or(owner_eq(1), owner_eq(2));
        let plan = plan_access(entry, "w", Some(&pred), &IndexHint::None, DbProfile::MySqlLike);
        assert_eq!(plan, AccessPlan::SeqScan);
    }

    #[test]
    fn or_with_force_hint_unions_on_mysql() {
        let db = setup(DbProfile::MySqlLike);
        let entry = db.table("w").unwrap();
        let pred = Expr::or(owner_eq(1), owner_eq(2));
        let hint = IndexHint::Force(vec!["owner".into()]);
        let plan = plan_access(entry, "w", Some(&pred), &hint, DbProfile::MySqlLike);
        match plan {
            AccessPlan::IndexOr {
                probes,
                bitmap,
                residual,
            } => {
                assert_eq!(probes.len(), 2);
                assert!(!bitmap);
                // Each disjunct is a bare `owner = k`: probes are exact,
                // the executor may skip the residual filter.
                assert!(!residual);
            }
            other => panic!("expected IndexOr, got {other:?}"),
        }
    }

    #[test]
    fn or_uses_bitmap_on_postgres_ignoring_hints() {
        let db = setup(DbProfile::PostgresLike);
        let entry = db.table("w").unwrap();
        let pred = Expr::or(owner_eq(1), owner_eq(2));
        // Even with an IgnoreAll hint PostgresLike plans by cost.
        let plan = plan_access(
            entry,
            "w",
            Some(&pred),
            &IndexHint::IgnoreAll,
            DbProfile::PostgresLike,
        );
        assert!(matches!(plan, AccessPlan::IndexOr { bitmap: true, .. }));
    }

    #[test]
    fn unselective_predicate_scans() {
        let db = setup(DbProfile::PostgresLike);
        let entry = db.table("w").unwrap();
        // owner >= 0 matches everything.
        let pred = Expr::col_cmp(ColumnRef::bare("owner"), CmpOp::Ge, Value::Int(0));
        let plan = plan_access(entry, "w", Some(&pred), &IndexHint::None, DbProfile::PostgresLike);
        assert_eq!(plan, AccessPlan::SeqScan);
    }

    #[test]
    fn ignore_hint_scans_on_mysql() {
        let db = setup(DbProfile::MySqlLike);
        let entry = db.table("w").unwrap();
        let plan = plan_access(
            entry,
            "w",
            Some(&owner_eq(5)),
            &IndexHint::IgnoreAll,
            DbProfile::MySqlLike,
        );
        assert_eq!(plan, AccessPlan::SeqScan);
    }

    #[test]
    fn or_conjunct_inside_and_bitmaps_on_postgres() {
        let db = setup(DbProfile::PostgresLike);
        let entry = db.table("w").unwrap();
        // qpred (unselective range) AND (policy OR): PG should bitmap the OR.
        let qpred = Expr::col_cmp(ColumnRef::bare("ts_time"), CmpOp::Ge, Value::Time(0));
        let policies = Expr::or(owner_eq(1), owner_eq(2));
        let pred = Expr::and(qpred, policies);
        let plan = plan_access(entry, "w", Some(&pred), &IndexHint::None, DbProfile::PostgresLike);
        assert!(
            matches!(
                plan,
                AccessPlan::IndexOr { bitmap: true, ref probes, residual: true } if probes.len() == 2
            ),
            "got {plan:?}"
        );
    }

    #[test]
    fn between_becomes_range_probe() {
        let db = setup(DbProfile::MySqlLike);
        let entry = db.table("w").unwrap();
        let pred = Expr::Between {
            expr: Box::new(Expr::Column(ColumnRef::bare("wifi_ap"))),
            low: Box::new(Expr::Literal(Value::Int(1000))),
            high: Box::new(Expr::Literal(Value::Int(1001))),
            negated: false,
        };
        let plan = plan_access(entry, "w", Some(&pred), &IndexHint::None, DbProfile::MySqlLike);
        match plan {
            AccessPlan::IndexOr { probes, .. } => {
                assert!(matches!(probes[0], IndexProbe::Range { .. }));
            }
            other => panic!("expected range probe, got {other:?}"),
        }
    }

    #[test]
    fn classify_splits_local_join_residual() {
        let db = setup(DbProfile::MySqlLike);
        let w_schema = db.table("w").unwrap().schema().clone();
        let g_schema = Arc::new(TableSchema::of(
            "g",
            &[("user_id", DataType::Int), ("grp", DataType::Int)],
        ));
        let tables = vec![("w".to_string(), w_schema), ("g".to_string(), g_schema)];
        let pred = Expr::all(vec![
            Expr::col_eq(ColumnRef::qualified("g", "grp"), Value::Int(3)),
            Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::Column(ColumnRef::qualified("g", "user_id"))),
                rhs: Box::new(Expr::Column(ColumnRef::qualified("w", "owner"))),
            },
            Expr::col_eq(ColumnRef::bare("wifi_ap"), Value::Int(1000)),
        ]);
        let cls = classify_predicate(&pred, &tables);
        assert_eq!(cls.joins.len(), 1);
        assert!(cls.local_predicate("g").is_some());
        assert!(cls.local_predicate("w").is_some());
        assert!(cls.residual.is_empty());
    }

    #[test]
    fn force_hint_on_unindexed_column_scans() {
        let db = setup(DbProfile::MySqlLike);
        let entry = db.table("w").unwrap();
        let hint = IndexHint::Force(vec!["ts_time".into()]); // not indexed
        let plan = plan_access(entry, "w", Some(&owner_eq(1)), &hint, DbProfile::MySqlLike);
        assert_eq!(plan, AccessPlan::SeqScan);
    }

    #[test]
    fn thread_knob_turns_scans_parallel() {
        let db = setup(DbProfile::MySqlLike);
        let entry = db.table("w").unwrap();
        let scan = ScanOptions { threads: 4 };
        // 2000 rows < PARALLEL_MIN_ROWS: stays sequential.
        let plan = plan_access_opts(
            entry,
            "w",
            None,
            &IndexHint::None,
            DbProfile::MySqlLike,
            scan,
        );
        assert_eq!(plan, AccessPlan::SeqScan);
        // Above the floor the scan splits into morsels.
        let mut big = Database::new(DbProfile::MySqlLike);
        big.create_table(TableSchema::of("b", &[("x", DataType::Int)]))
            .unwrap();
        for i in 0..(PARALLEL_MIN_ROWS as i64 + 10) {
            big.insert("b", vec![Value::Int(i)]).unwrap();
        }
        let entry = big.table("b").unwrap();
        let plan = plan_access_opts(
            entry,
            "b",
            None,
            &IndexHint::None,
            DbProfile::MySqlLike,
            scan,
        );
        assert_eq!(
            plan,
            AccessPlan::ParallelScan {
                morsels: (PARALLEL_MIN_ROWS + 10).div_ceil(MORSEL_ROWS)
            }
        );
        assert!(plan.describe().starts_with("ParallelScan(morsels="));
    }

    #[test]
    fn unbounded_low_range_keeps_residual_filter() {
        let db = setup(DbProfile::MySqlLike);
        let entry = db.table("w").unwrap();
        // `wifi_ap <= 1001` probes the index from the unbounded low end,
        // which includes NULL keys — the filter must stay on.
        let pred = Expr::col_cmp(ColumnRef::bare("wifi_ap"), CmpOp::Le, Value::Int(1001));
        let hint = IndexHint::Force(vec!["wifi_ap".into()]);
        let plan = plan_access(entry, "w", Some(&pred), &hint, DbProfile::MySqlLike);
        assert!(
            matches!(plan, AccessPlan::IndexOr { residual: true, .. }),
            "got {plan:?}"
        );
        // A bounded BETWEEN range is exact.
        let pred = Expr::Between {
            expr: Box::new(Expr::Column(ColumnRef::bare("wifi_ap"))),
            low: Box::new(Expr::Literal(Value::Int(1000))),
            high: Box::new(Expr::Literal(Value::Int(1001))),
            negated: false,
        };
        let plan = plan_access(entry, "w", Some(&pred), &hint, DbProfile::MySqlLike);
        assert!(
            matches!(plan, AccessPlan::IndexOr { residual: false, .. }),
            "got {plan:?}"
        );
        // A disjunct with extra conjuncts needs the filter even though the
        // probe itself is exact.
        let pred = Expr::and(
            owner_eq(1),
            Expr::col_cmp(ColumnRef::bare("ts_time"), CmpOp::Ge, Value::Time(10)),
        );
        let plan = plan_access(
            entry,
            "w",
            Some(&pred),
            &IndexHint::Force(vec!["owner".into()]),
            DbProfile::MySqlLike,
        );
        assert!(
            matches!(plan, AccessPlan::IndexOr { residual: true, .. }),
            "got {plan:?}"
        );
    }

    #[test]
    fn null_probe_key_keeps_residual_filter() {
        let db = setup(DbProfile::MySqlLike);
        let entry = db.table("w").unwrap();
        // `owner = NULL` matches nothing, but the index stores NULL keys;
        // the probe must not be treated as exact.
        let pred = Expr::col_eq(ColumnRef::bare("owner"), Value::Null);
        let hint = IndexHint::Force(vec!["owner".into()]);
        let plan = plan_access(entry, "w", Some(&pred), &hint, DbProfile::MySqlLike);
        assert!(
            matches!(plan, AccessPlan::IndexOr { residual: true, .. }),
            "got {plan:?}"
        );
    }

    #[test]
    fn parallel_scan_tightens_pg_bitmap_gate() {
        let db = setup(DbProfile::PostgresLike);
        let entry = db.table("w").unwrap();
        // owner IN (…10 keys…) ≈ 10% of the table: in-gate sequentially.
        let keys: Vec<Expr> = (0..10).map(|k| Expr::Literal(Value::Int(k))).collect();
        let pred = Expr::InList {
            expr: Box::new(Expr::Column(ColumnRef::bare("owner"))),
            list: keys,
            negated: false,
        };
        let plan = plan_access(entry, "w", Some(&pred), &IndexHint::None, DbProfile::PostgresLike);
        assert!(matches!(plan, AccessPlan::IndexOr { bitmap: true, .. }));
        // The table is far below PARALLEL_MIN_ROWS, so the thread knob
        // cannot change the gate here (scan_ways == 1).
        let scan = ScanOptions { threads: 8 };
        assert_eq!(scan.scan_ways(entry.table.len()), 1);
        // On a big enough table, 8-way scans shrink the gate 8×.
        assert_eq!(scan.scan_ways(8 * PARALLEL_MIN_ROWS), 8);
    }
}
