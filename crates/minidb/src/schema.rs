//! Table schemas and column metadata.

use crate::value::DataType;
use std::fmt;

/// A column definition within a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-sensitive; generators use lower_snake names).
    pub name: String,
    /// Declared type of the column.
    pub dtype: DataType,
}

impl Column {
    /// Create a column definition.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// The schema of a table: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Create a schema from `(name, type)` pairs.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    /// Convenience constructor from `(&str, DataType)` pairs.
    pub fn of(name: impl Into<String>, cols: &[(&str, DataType)]) -> Self {
        TableSchema {
            name: name.into(),
            columns: cols
                .iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect(),
        }
    }

    /// Index of a column by name, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definition by name, if present.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wifi_schema() -> TableSchema {
        TableSchema::of(
            "wifi_dataset",
            &[
                ("id", DataType::Int),
                ("wifi_ap", DataType::Int),
                ("owner", DataType::Int),
                ("ts_time", DataType::Time),
                ("ts_date", DataType::Date),
            ],
        )
    }

    #[test]
    fn column_lookup() {
        let s = wifi_schema();
        assert_eq!(s.column_index("owner"), Some(2));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.column("ts_time").unwrap().dtype, DataType::Time);
        assert_eq!(s.arity(), 5);
    }

    #[test]
    fn display_format() {
        let s = wifi_schema();
        let d = s.to_string();
        assert!(d.starts_with("wifi_dataset(id INT"));
        assert!(d.contains("ts_time TIME"));
    }
}
