//! SQL tokenizer.

use crate::error::{DbError, DbResult};
use crate::value::Value;

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal. Strings shaped like times or dates
    /// are promoted to typed values by [`promote_literal`].
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
    /// `?` — positional wire-protocol placeholder.
    Question,
}

/// Promote a string literal to a typed value when it is shaped like a time
/// (`HH:MM[:SS]`) or a date (`YYYY-MM-DD`); otherwise keep it a string.
pub fn promote_literal(s: &str) -> Value {
    if let Some(t) = Value::parse_time(s) {
        if s.len() >= 4 && s.contains(':') {
            return Value::Time(t);
        }
    }
    if let Some(d) = Value::parse_date(s) {
        if s.len() == 10 {
            return Value::Date(d);
        }
    }
    Value::str(s)
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '?' => {
                out.push(Token::Question);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(DbError::Parse(format!("unexpected '!' at byte {i}")));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' as the escape for a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Parse("unterminated string".into())),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' | '-' => {
                // A '-' is only a numeric sign here (the subset has no
                // arithmetic), so `-5` lexes as a negative literal.
                let start = i;
                if c == '-' {
                    if !bytes
                        .get(i + 1)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)
                    {
                        return Err(DbError::Parse(format!("unexpected '-' at byte {i}")));
                    }
                    i += 1;
                }
                let mut is_float = false;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == b'.'
                        && !is_float
                        && bytes
                            .get(i + 1)
                            .map(|n| n.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                // Exponent suffix (`1e300`, `2.5E-7`): Double's renderer
                // emits this form for large magnitudes, so the lexer must
                // take it back.
                if matches!(bytes.get(i), Some(b'e') | Some(b'E')) {
                    let mut j = i + 1;
                    if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
                        j += 1;
                    }
                    if bytes.get(j).map(|b| b.is_ascii_digit()).unwrap_or(false) {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad int literal {text}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(DbError::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_symbols_and_idents() {
        let toks = tokenize("SELECT * FROM w WHERE a >= 10 AND b != 'x''y'").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Star);
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Str("x'y".into())));
    }

    #[test]
    fn lexes_numbers() {
        let toks = tokenize("1 2.5 -3 -4.25").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Int(-3),
                Token::Float(-4.25)
            ]
        );
    }

    #[test]
    fn lexes_exponent_floats() {
        let toks = tokenize("1e3 2.5E-7 -1.5e+2 7e9x").unwrap();
        assert_eq!(toks[0], Token::Float(1e3));
        assert_eq!(toks[1], Token::Float(2.5e-7));
        assert_eq!(toks[2], Token::Float(-1.5e2));
        // A trailing identifier character ends the number cleanly.
        assert_eq!(toks[3], Token::Float(7e9));
        assert_eq!(toks[4], Token::Ident("x".into()));
        // `e` with no digits after it is an identifier, not an exponent.
        assert_eq!(
            tokenize("3e").unwrap(),
            vec![Token::Int(3), Token::Ident("e".into())]
        );
    }

    #[test]
    fn lexes_placeholders() {
        let toks = tokenize("a = ? AND b IN (?, ?)").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::Question).count(), 3);
    }

    #[test]
    fn ne_two_spellings() {
        assert_eq!(tokenize("<>").unwrap(), vec![Token::Ne]);
        assert_eq!(tokenize("!=").unwrap(), vec![Token::Ne]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("'abc"), Err(DbError::Parse(_))));
    }

    #[test]
    fn promote_time_date() {
        assert_eq!(promote_literal("09:30"), Value::Time(9 * 3600 + 1800));
        assert_eq!(
            promote_literal("2019-09-25"),
            Value::Date(Value::parse_date("2019-09-25").unwrap())
        );
        assert_eq!(promote_literal("hello"), Value::str("hello"));
        // A 4-digit-ish string that isn't a real date stays a string.
        assert_eq!(promote_literal("25:99"), Value::str("25:99"));
    }
}
