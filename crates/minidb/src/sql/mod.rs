//! A from-scratch SQL subset: lexer, recursive-descent parser, and
//! renderer.
//!
//! SIEVE is a middleware that *intercepts SQL text*, rewrites it, and hands
//! the rewritten SQL to the DBMS (paper Section 5). This module provides
//! that text surface without external parser crates. The subset covers
//! everything the paper's queries and rewrites use:
//!
//! * `WITH name AS (…)` clauses (one per protected relation, Section 5.3);
//! * `SELECT` lists with `*`, columns, `COUNT/SUM/MIN/MAX/AVG`
//!   (incl. `COUNT(DISTINCT …)`);
//! * comma joins and derived tables;
//! * `FORCE INDEX (…)` / `USE INDEX ()` hints (Section 5.5);
//! * `WHERE` with `AND`/`OR`/`NOT`, comparisons, `BETWEEN`, `IN` lists,
//!   `IS NULL`, UDF calls (the ∆ operator), and correlated scalar
//!   subqueries (nested policies, Section 3.1);
//! * `GROUP BY` and `LIMIT`.
//!
//! Quoted literals shaped like `'HH:MM[:SS]'` or `'YYYY-MM-DD'` are lexed
//! as `TIME`/`DATE` values, matching how the generators store
//! `ts_time`/`ts_date` columns.

mod lexer;
mod params;
mod parser;
mod render;

pub use lexer::{tokenize, Token};
pub use params::{bind_params, parameterize};
pub use parser::parse;
pub use render::{render_expr, render_query};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::{IndexHint, SelectItem};
    use crate::value::Value;

    #[test]
    fn parse_render_roundtrip_simple() {
        let sql = "SELECT * FROM wifi_dataset AS w WHERE w.owner = 7 AND w.wifi_ap IN (1, 2)";
        let q = parse(sql).unwrap();
        let rendered = render_query(&q);
        let q2 = parse(&rendered).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn parse_paper_query_q1() {
        // Q1 from the paper's experimental section (Section 7.1).
        let sql = "SELECT * FROM wifi_dataset AS w \
                   WHERE w.wifi_ap IN (1200, 1201) \
                   AND w.ts_time BETWEEN '09:00' AND '10:00' \
                   AND w.ts_date BETWEEN '2019-09-25' AND '2019-12-12'";
        let q = parse(sql).unwrap();
        let pred = q.predicate.unwrap();
        assert_eq!(pred.conjuncts().len(), 3);
        // Times/dates lexed as typed values.
        match pred.conjuncts()[1] {
            Expr::Between { low, .. } => {
                assert_eq!(**low, Expr::Literal(Value::Time(9 * 3600)));
            }
            other => panic!("expected BETWEEN, got {other:?}"),
        }
    }

    #[test]
    fn parse_with_force_index_and_udf() {
        let sql = "WITH wifi_pol AS (\
                     SELECT * FROM wifi_dataset FORCE INDEX (owner, wifi_ap) \
                     WHERE (owner = 3 AND delta(12, 'Prof. Smith', 'Analytics', owner) = TRUE) \
                        OR (wifi_ap = 1200)) \
                   SELECT COUNT(*) AS n FROM wifi_pol";
        let q = parse(sql).unwrap();
        assert_eq!(q.with.len(), 1);
        assert_eq!(
            q.with[0].query.from[0].hint,
            IndexHint::Force(vec!["owner".into(), "wifi_ap".into()])
        );
        assert!(matches!(
            q.select[0],
            SelectItem::Aggregate { alias: Some(ref a), .. } if a == "n"
        ));
        let roundtrip = parse(&render_query(&q)).unwrap();
        assert_eq!(q, roundtrip);
    }
}
