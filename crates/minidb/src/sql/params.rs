//! Wire-protocol parameterization: lift literal values out of a query
//! into `?` placeholders, and bind values back into a template.
//!
//! This is the guard-SQL compaction half of the prepared-statement wire
//! protocol. A rewritten guard query differs across queriers almost
//! exclusively in its policy literals; once those are lifted, the
//! rendered template text is shared, so the wire backend parses each
//! template **once** and thereafter executes by statement id with bound
//! parameters.
//!
//! Ordinals are assigned in *render order* — the exact order
//! [`super::render_query`] writes expressions (WITH bodies first, then
//! FROM derived tables, then WHERE) and the parser re-reads them, so
//! `parse(render(parameterize(q).0))` preserves every `Expr::Param`
//! index.

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::plan::{SelectQuery, TableSource, WithClause};
use crate::value::Value;

/// Replace every literal in `q` with a positional placeholder, returning
/// the template and the lifted values (index = placeholder ordinal).
pub fn parameterize(q: &SelectQuery) -> (SelectQuery, Vec<Value>) {
    let mut params = Vec::new();
    let template = param_query(q, &mut params);
    (template, params)
}

/// Substitute bound values back into a parameterized template. Errors if
/// the template references an ordinal past the end of `params`; extra
/// values are ignored (the template decides arity).
pub fn bind_params(q: &SelectQuery, params: &[Value]) -> DbResult<SelectQuery> {
    bind_query(q, params)
}

fn param_query(q: &SelectQuery, out: &mut Vec<Value>) -> SelectQuery {
    SelectQuery {
        with: q
            .with
            .iter()
            .map(|wc| WithClause {
                name: wc.name.clone(),
                query: param_query(&wc.query, out),
            })
            .collect(),
        select: q.select.clone(),
        from: q
            .from
            .iter()
            .map(|t| {
                let mut t = t.clone();
                if let TableSource::Derived(inner) = &t.source {
                    t.source = TableSource::Derived(Box::new(param_query(inner, out)));
                }
                t
            })
            .collect(),
        predicate: q.predicate.as_ref().map(|p| param_expr(p, out)),
        group_by: q.group_by.clone(),
        limit: q.limit,
    }
}

fn param_expr(e: &Expr, out: &mut Vec<Value>) -> Expr {
    match e {
        Expr::Literal(v) => {
            let ord = out.len();
            out.push(v.clone());
            Expr::Param(ord)
        }
        // Already-parameterized input keeps its placeholders only if it
        // carries no literals at all; mixing would shuffle ordinals, so
        // re-parameterizing a template is the caller's bug. In practice
        // `parameterize` only ever sees fully-literal plans.
        Expr::Param(i) => Expr::Param(*i),
        Expr::Column(_) => e.clone(),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(param_expr(lhs, out)),
            rhs: Box::new(param_expr(rhs, out)),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(param_expr(expr, out)),
            low: Box::new(param_expr(low, out)),
            high: Box::new(param_expr(high, out)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(param_expr(expr, out)),
            list: list.iter().map(|x| param_expr(x, out)).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(param_expr(expr, out)),
            negated: *negated,
        },
        Expr::And(v) => Expr::And(v.iter().map(|x| param_expr(x, out)).collect()),
        Expr::Or(v) => Expr::Or(v.iter().map(|x| param_expr(x, out)).collect()),
        Expr::Not(x) => Expr::Not(Box::new(param_expr(x, out))),
        Expr::Udf { name, args } => Expr::Udf {
            name: name.clone(),
            args: args.iter().map(|x| param_expr(x, out)).collect(),
        },
        Expr::ScalarSubquery(q) => {
            Expr::ScalarSubquery(Box::new(param_query(q, out)))
        }
    }
}

fn bind_query(q: &SelectQuery, params: &[Value]) -> DbResult<SelectQuery> {
    Ok(SelectQuery {
        with: q
            .with
            .iter()
            .map(|wc| {
                Ok(WithClause {
                    name: wc.name.clone(),
                    query: bind_query(&wc.query, params)?,
                })
            })
            .collect::<DbResult<_>>()?,
        select: q.select.clone(),
        from: q
            .from
            .iter()
            .map(|t| {
                let mut t = t.clone();
                if let TableSource::Derived(inner) = &t.source {
                    t.source =
                        TableSource::Derived(Box::new(bind_query(inner, params)?));
                }
                Ok(t)
            })
            .collect::<DbResult<_>>()?,
        predicate: match &q.predicate {
            Some(p) => Some(bind_expr(p, params)?),
            None => None,
        },
        group_by: q.group_by.clone(),
        limit: q.limit,
    })
}

fn bind_expr(e: &Expr, params: &[Value]) -> DbResult<Expr> {
    Ok(match e {
        Expr::Param(i) => Expr::Literal(
            params
                .get(*i)
                .cloned()
                .ok_or_else(|| {
                    DbError::Unsupported(format!(
                        "placeholder ?{i} out of range: {} parameters bound",
                        params.len()
                    ))
                })?,
        ),
        Expr::Literal(_) | Expr::Column(_) => e.clone(),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(bind_expr(lhs, params)?),
            rhs: Box::new(bind_expr(rhs, params)?),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(bind_expr(expr, params)?),
            low: Box::new(bind_expr(low, params)?),
            high: Box::new(bind_expr(high, params)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bind_expr(expr, params)?),
            list: list
                .iter()
                .map(|x| bind_expr(x, params))
                .collect::<DbResult<_>>()?,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_expr(expr, params)?),
            negated: *negated,
        },
        Expr::And(v) => Expr::And(
            v.iter()
                .map(|x| bind_expr(x, params))
                .collect::<DbResult<_>>()?,
        ),
        Expr::Or(v) => Expr::Or(
            v.iter()
                .map(|x| bind_expr(x, params))
                .collect::<DbResult<_>>()?,
        ),
        Expr::Not(x) => Expr::Not(Box::new(bind_expr(x, params)?)),
        Expr::Udf { name, args } => Expr::Udf {
            name: name.clone(),
            args: args
                .iter()
                .map(|x| bind_expr(x, params))
                .collect::<DbResult<_>>()?,
        },
        Expr::ScalarSubquery(q) => {
            Expr::ScalarSubquery(Box::new(bind_query(q, params)?))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColumnRef;
    use crate::sql::{parse, render_query};

    fn sample() -> SelectQuery {
        parse(
            "WITH pol AS (SELECT * FROM w WHERE owner = 3 OR wifi_ap IN (1, 2)) \
             SELECT * FROM pol WHERE ts_time BETWEEN '09:00' AND '10:00' \
             AND k < (SELECT COUNT(*) AS n FROM b WHERE label = 5)",
        )
        .unwrap()
    }

    #[test]
    fn parameterize_lifts_every_literal() {
        let q = sample();
        let (template, params) = parameterize(&q);
        assert_eq!(params.len(), 6);
        let sql = render_query(&template);
        let holes = sql.matches('?').count();
        assert_eq!(holes, 6, "template must carry one hole per literal: {sql}");
        assert!(!sql.contains("= 3"), "literals must be gone: {sql}");
        assert!(!sql.contains("09:00"), "literals must be gone: {sql}");
    }

    #[test]
    fn bind_inverts_parameterize() {
        let q = sample();
        let (template, params) = parameterize(&q);
        let back = bind_params(&template, &params).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn template_text_roundtrips_with_matching_ordinals() {
        // The wire protocol's load-bearing property: rendering the
        // template and re-parsing it yields the *same* template, hole
        // ordinals included, so binding on the far side of the wire uses
        // the same value order.
        let q = sample();
        let (template, params) = parameterize(&q);
        let sql = render_query(&template);
        let reparsed = parse(&sql).unwrap();
        assert_eq!(reparsed, template, "ordinals shifted through {sql}");
        let bound = bind_params(&reparsed, &params).unwrap();
        assert_eq!(bound, q);
    }

    #[test]
    fn bind_rejects_missing_params() {
        let e = Expr::col_eq(ColumnRef::bare("a"), Value::Int(1));
        let q = SelectQuery::star_from("t").filter(e);
        let (template, params) = parameterize(&q);
        assert_eq!(params.len(), 1);
        assert!(bind_params(&template, &[]).is_err());
    }

    #[test]
    fn templates_shared_across_literal_variants() {
        // Two queries differing only in literals produce byte-identical
        // template text — the interning key for the statement cache.
        let a = parse("SELECT * FROM t WHERE owner = 3 AND wifi_ap = 1001").unwrap();
        let b = parse("SELECT * FROM t WHERE owner = 44 AND wifi_ap = 1007").unwrap();
        let (ta, pa) = parameterize(&a);
        let (tb, pb) = parameterize(&b);
        assert_eq!(render_query(&ta), render_query(&tb));
        assert_ne!(pa, pb);
    }
}
